"""Ablation benchmarks for the design choices DESIGN.md calls out.

* implied-disjunct pruning (Example 4.5's remark): output size and
  cost with/without;
* restricted vs oblivious chase: result size and cost;
* universal solution vs its core: the price of canonical normal forms;
* exact composition membership vs the number of chase nulls (the
  exponential knob of the §3.6 decision procedure).
"""

import pytest

from repro.catalog import example_4_5, thm_4_8, thm_4_8_inverse
from repro.chase.standard import chase
from repro.core.composition import composition_membership
from repro.core.mapping import core_universal_solution, universal_solution
from repro.core.quasi_inverse import quasi_inverse
from repro.datamodel.instances import Instance
from repro.workloads import random_ground_instance


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "unpruned"])
def test_ablation_disjunct_pruning(benchmark, prune):
    mapping = example_4_5()
    reverse = benchmark(quasi_inverse, mapping, prune_implied=prune)
    disjuncts = sum(len(d.disjuncts) for d in reverse.dependencies)
    if prune:
        assert disjuncts <= 12
    else:
        assert disjuncts > 12


@pytest.mark.parametrize("oblivious", [False, True], ids=["restricted", "oblivious"])
def test_ablation_chase_flavor(benchmark, oblivious):
    mapping = example_4_5()
    source = random_ground_instance(
        mapping.source, seed=5, n_facts=32, domain_size=8
    )
    result = benchmark(
        chase, source, mapping.dependencies, oblivious=oblivious
    )
    assert result.produced


@pytest.mark.parametrize("use_core", [False, True], ids=["chase", "core"])
def test_ablation_core_solution(benchmark, use_core):
    mapping = example_4_5()
    source = random_ground_instance(
        mapping.source, seed=6, n_facts=16, domain_size=4
    )
    compute = core_universal_solution if use_core else universal_solution
    solution = benchmark.pedantic(compute, args=(mapping, source), rounds=1, iterations=1)
    assert solution


@pytest.mark.parametrize("n_facts", [1, 2, 3])
def test_ablation_membership_vs_nulls(benchmark, n_facts):
    """Each P-fact of the Thm 4.8 mapping chases to one null; the
    candidate-image space grows exponentially with them."""
    mapping = thm_4_8()
    reverse = thm_4_8_inverse()
    source = Instance.build(
        {"P": [(f"a{i}", f"b{i}") for i in range(n_facts)]}
    )

    def run():
        return composition_membership(
            mapping, reverse, source, source, max_nulls=8
        )

    assert benchmark.pedantic(run, rounds=1, iterations=1)
