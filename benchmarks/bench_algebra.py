"""Plan-directed algebra sweeps vs naive materialization.

The claim the planner gates on: for composed-mapping sweeps whose
MinGen materialization blows up (fan-in heads feeding chain joins),
running the sweep through the staged pipeline the planner picks under
``--plan auto`` must beat materializing the composition with MinGen by
>= ``ACCEPTANCE_SPEEDUP`` — with byte-identical reports, because the
plan is an execution detail, never a result.

Two legs:

* **Speedup** — the fan-in/chain scenario at a width where MinGen
  emits hundreds of rules.  Interleaved cold runs (caches reset before
  every run), median-of-``ROUNDS`` on each side, unique- and
  subset-sweep kinds both gated.

* **Identity** — every sweep scenario x every sweep kind rendered
  under plan ``materialize | auto`` x backend ``object | kernel | sql``
  x serial/parallel workers, plus every catalog inverse pair under
  ``materialize | membership | auto``: one fixed string per check.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import QUICK

from repro.algebra.scenarios import (
    fan_in_chain_expression,
    inverse_pairs,
    sweep_scenarios,
)
from repro.algebra.sweeps import check_expression
from repro.engine.cache import reset_all_caches
from repro.engine.parallel import fork_available

#: Width of the fan-in/chain blow-up scenario.  Width 3 composes to
#: ~80 MinGen rules (sub-second), width 4 to ~600 (tens of seconds on
#: the naive side) — CI's BENCH_QUICK job runs width 3.
WIDTH = 3 if QUICK else 4
ACCEPTANCE_SPEEDUP = 3.0
ROUNDS = 3
SWEEP_KINDS = ("unique", "subset")


def _timed_sweep(kind: str, plan: str) -> tuple[float, str]:
    reset_all_caches()
    expr = fan_in_chain_expression(WIDTH)
    started = time.perf_counter()
    report = check_expression(expr, kind, plan=plan)
    return time.perf_counter() - started, report.render()


def test_planned_sweep_speedup_acceptance(benchmark):
    """auto-planned sweeps >= 3x faster than materialize, same bytes."""

    def interleaved():
        naive_seconds = {kind: [] for kind in SWEEP_KINDS}
        planned_seconds = {kind: [] for kind in SWEEP_KINDS}
        renderings = {}
        for _ in range(ROUNDS):
            for kind in SWEEP_KINDS:
                seconds, naive_text = _timed_sweep(kind, "materialize")
                naive_seconds[kind].append(seconds)
                seconds, planned_text = _timed_sweep(kind, "auto")
                planned_seconds[kind].append(seconds)
                renderings[kind] = (naive_text, planned_text)
        return naive_seconds, planned_seconds, renderings

    naive_seconds, planned_seconds, renderings = benchmark.pedantic(
        interleaved, rounds=1, iterations=1
    )
    for kind in SWEEP_KINDS:
        naive_text, planned_text = renderings[kind]
        assert naive_text == planned_text, (
            f"{kind} sweep reports diverge between plans"
        )
        naive_median = statistics.median(naive_seconds[kind])
        planned_median = statistics.median(planned_seconds[kind])
        speedup = naive_median / planned_median
        assert speedup >= ACCEPTANCE_SPEEDUP, (
            f"planned {kind} sweep only {speedup:.2f}x faster than "
            f"materialize on width-{WIDTH} fan-in/chain (acceptance: "
            f">= {ACCEPTANCE_SPEEDUP}x): materialize median "
            f"{naive_median:.3f}s vs planned {planned_median:.3f}s"
        )


def test_algebra_reports_byte_identical(benchmark):
    """Every scenario x kind x plan x backend x workers: one string.

    Runs the full matrix even under BENCH_QUICK — a reduced matrix
    would gate a weaker claim.  Scenario expressions stay at width 3
    here; this leg gates identity, not speed.
    """
    worker_counts = (None, 2) if fork_available() else (None,)

    def matrix():
        divergent = []
        for name, expr in sweep_scenarios(3):
            for kind in ("unique", "subset", "invertibility"):
                renderings = set()
                for plan in ("materialize", "auto"):
                    for backend in ("object", "kernel", "sql"):
                        for workers in worker_counts:
                            reset_all_caches()
                            report = check_expression(
                                expr,
                                kind,
                                plan=plan,
                                backend=backend,
                                workers=workers,
                            )
                            renderings.add(report.render())
                if len(renderings) != 1:
                    divergent.append((name, kind))
        for name, forward, reverse in inverse_pairs():
            renderings = set()
            for plan in ("materialize", "membership", "auto"):
                reset_all_caches()
                report = check_expression(
                    forward, "inverse", reverse=reverse, plan=plan
                )
                renderings.add(report.render())
            if len(renderings) != 1:
                divergent.append((name, "inverse"))
        return divergent

    divergent = benchmark.pedantic(matrix, rounds=1, iterations=1)
    assert not divergent, (
        f"algebra reports diverge across plan/backend/workers: {divergent}"
    )
