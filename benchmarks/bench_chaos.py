"""Acceptance gate for chaos-hardened checking.

Three promises, checked end to end on the canonical service jobs
(the same :func:`repro.service.jobs.execute_job` path the daemon and
the CLI share), each under a *seeded* fault-schedule matrix so every
run is reproducible:

1. **Byte-identity under faults** — for every (job, schedule) cell the
   faulted rendering, state and exit code must equal the fault-free
   baseline byte for byte once the built-in retries settle, and the
   schedule must actually have injected at least one fault (a chaos
   run that never fires is a configuration bug, not a pass).
2. **fsck detection** — after corrupting store rows four different
   ways (bit flip, truncation, checksum scribble, foreign engine
   stamp), ``fsck_store`` must detect exactly the injected count:
   100% detection, zero false positives on the untouched rows.
3. **Repair reproduces the verdicts** — after ``fsck --repair``
   quarantines the damage, a warm re-run against the repaired store
   must render byte-identically to the pristine baseline while still
   hitting the surviving rows.

Usage (CI runs this)::

    PYTHONPATH=src python benchmarks/bench_chaos.py
"""

from __future__ import annotations

import argparse
import os
import sqlite3
import sys
import tempfile
import time

from repro.engine import (
    engine_stats,
    fault_scope,
    fsck_store,
    reset_all_caches,
    reset_engine_stats,
    use_store,
)
from repro.engine.checkpoint import CheckpointJournal
from repro.engine.store import entry_checksum
from repro.service.jobs import budget_for, execute_job
from repro.service.protocol import normalize_job

JOBS = {
    "subset-decomposition": {
        "kind": "subset",
        "mapping": "Decomposition",
        "max_facts": 2,
    },
    "unique-projection": {"kind": "unique", "mapping": "Projection"},
}

SCHEDULES = {
    "store-read-p40": "store.read:p=0.4,seed=101",
    # at=1, not every=N: even the smallest job flushes at least once,
    # so the "schedule never fired" gate stays meaningful everywhere.
    "store-write-first": "store.write:at=1",
    "read+write+journal": (
        "store.read:p=0.3,seed=7;"
        "store.write:p=0.3,seed=13;"
        "journal.flush:every=2"
    ),
}


def _run(spec, **kwargs):
    reset_all_caches()
    spec = normalize_job(dict(spec))
    kwargs.setdefault("budget", budget_for(spec))
    start = time.perf_counter()
    outcome = execute_job(spec, **kwargs)
    return outcome, time.perf_counter() - start


def _render(outcome) -> bytes:
    return (
        f"state={outcome.state}\nexit={outcome.exit_code}\n"
        f"{outcome.rendering}"
    ).encode()


def _mangle(path: str) -> int:
    """Corrupt every 3rd row, rotating through four corruption
    classes; returns the number of rows mangled."""
    connection = sqlite3.connect(path)
    rows = connection.execute(
        "SELECT cache, key, value FROM entries ORDER BY cache, key"
    ).fetchall()
    victims = rows[::3]
    with connection:
        for which, (cache_name, digest, payload) in enumerate(victims):
            if which % 4 == 0:
                update, params = "SET value = value || 'X'", ()
            elif which % 4 == 1:
                update, params = (
                    "SET value = substr(value, 1, length(value) - 1)",
                    (),
                )
            elif which % 4 == 2:
                update, params = "SET checksum = 'deadbeef'", ()
            else:
                update, params = (
                    "SET engine = 'foreign', checksum = ?",
                    (entry_checksum(cache_name, digest, payload, "foreign"),),
                )
            connection.execute(
                f"UPDATE entries {update} WHERE cache = ? AND key = ?",
                params + (cache_name, digest),
            )
    connection.close()
    return len(victims)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default=",".join(JOBS),
        help="comma-separated subset of the job matrix to run",
    )
    args = parser.parse_args(argv)
    selected = [name.strip() for name in args.jobs.split(",") if name.strip()]
    unknown = [name for name in selected if name not in JOBS]
    if unknown:
        parser.error(f"unknown jobs: {', '.join(unknown)} (have: {', '.join(JOBS)})")

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as tmp:
        for job_name in selected:
            spec = JOBS[job_name]
            baseline, baseline_s = _run(spec)
            print(
                f"{job_name}: baseline {baseline.state}"
                f" (exit {baseline.exit_code}) in {baseline_s:.3f}s"
            )

            # Gate 1: byte-identity under every seeded schedule.
            for schedule_name, schedule in SCHEDULES.items():
                store_path = os.path.join(
                    tmp, f"{job_name}-{schedule_name}.sqlite"
                )
                journal = CheckpointJournal(
                    os.path.join(tmp, f"{job_name}-{schedule_name}.json"),
                    interval=1,
                )
                reset_engine_stats()
                with use_store(store_path):
                    with fault_scope(schedule):
                        faulted, faulted_s = _run(spec, checkpoint=journal)
                injected = engine_stats().counter("faults_injected")
                print(
                    f"  {schedule_name:<20} {faulted_s:8.3f}s"
                    f"  ({injected} faults injected)"
                )
                if injected == 0:
                    failures.append(
                        f"{job_name}/{schedule_name}: schedule never fired"
                    )
                if _render(faulted) != _render(baseline):
                    failures.append(
                        f"{job_name}/{schedule_name}: faulted outcome"
                        " diverged from the fault-free baseline"
                    )

            # Gates 2 + 3: populate, corrupt, detect, repair, re-verify.
            store_path = os.path.join(tmp, f"{job_name}-fsck.sqlite")
            with use_store(store_path):
                pristine, _ = _run(spec)
            mangled = _mangle(store_path)
            report = fsck_store(store_path)
            print(
                f"  fsck: {mangled} rows corrupted,"
                f" {report.corrupt} detected ({report.scanned} scanned)"
            )
            if report.corrupt != mangled:
                failures.append(
                    f"{job_name}: fsck detected {report.corrupt}"
                    f" of {mangled} corruptions"
                )
            repaired = fsck_store(store_path, repair=True)
            if repaired.repaired != mangled or not fsck_store(store_path).clean:
                failures.append(f"{job_name}: fsck repair left damage behind")
            with use_store(store_path) as store:
                warm, _ = _run(spec)
                hits = store.hits
            print(f"  repaired store: {hits} hits on re-run")
            if hits == 0:
                failures.append(
                    f"{job_name}: repaired store never served a row"
                )
            if _render(warm) != _render(pristine):
                failures.append(
                    f"{job_name}: repaired store changed the verdict"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_chaos: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
