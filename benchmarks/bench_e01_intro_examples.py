"""Benchmark E1 — the Introduction's Projection/Union/Decomposition
examples: non-invertibility witnesses, quasi-inverse computation, and
source-augmentation robustness."""

from benchmarks.conftest import run_and_verify


def test_e01_intro_examples(benchmark):
    report = run_and_verify(benchmark, "E1")
    assert len(report.checks) >= 7
