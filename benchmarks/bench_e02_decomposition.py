"""Benchmark E2 — Example 3.10: the Decomposition mapping's witness
pair, the (=, ∼M)-subset property over a bounded universe, and both of
the paper's quasi-inverses."""

from benchmarks.conftest import run_and_verify


def test_e02_decomposition(benchmark):
    report = run_and_verify(benchmark, "E2")
    assert len(report.checks) == 7
