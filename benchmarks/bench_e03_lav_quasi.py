"""Benchmark E3 — Proposition 3.11: the subset property and faithful
quasi-inverses over a sweep of random LAV mappings."""

from benchmarks.conftest import run_and_verify


def test_e03_lav_quasi(benchmark):
    report = run_and_verify(benchmark, "E3")
    assert len(report.checks) >= 17
