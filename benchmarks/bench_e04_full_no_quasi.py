"""Benchmark E4 — Proposition 3.12: the complete profile-based search
refuting the subset property for E(x,z) ∧ E(z,y) -> F(x,y) ∧ M(z)."""

from benchmarks.conftest import run_and_verify
from repro.experiments.prop312_search import search_violation


def test_e04_full_no_quasi(benchmark):
    report = run_and_verify(benchmark, "E4")
    assert report.passed


def test_e04_search_alone(benchmark):
    """The exhaustive 512-instance profile search in isolation."""
    witness = benchmark(search_violation, 3)
    assert witness is not None
