"""Benchmark E5 — Theorem 4.1 / Example 4.5: the QuasiInverse
algorithm trace, plus the proof-based-vs-exhaustive MinGen contrast
that shows why the backward-chaining search is the default."""

import pytest

from benchmarks.conftest import run_and_verify
from repro.catalog import example_4_5
from repro.core import MinGenConfig, minimal_generators, quasi_inverse
from repro.core.generators import minimal_generators_exhaustive


def test_e05_quasiinverse_algorithm(benchmark):
    report = run_and_verify(benchmark, "E5")
    assert len(report.checks) == 10


def test_e05_quasi_inverse_of_example_4_5(benchmark):
    reverse = benchmark(quasi_inverse, example_4_5())
    assert len(reverse.dependencies) == 7


def test_e05_mingen_proofs(benchmark):
    mapping = example_4_5()
    sigma = mapping.dependencies[1]  # the three-atom U-conclusion

    def run():
        return minimal_generators(mapping, sigma.disjuncts[0], sigma.frontier())

    generators = benchmark(run)
    assert generators


def test_e05_mingen_exhaustive_two_atom_goal(benchmark):
    """The paper's verbatim Algorithm MinGen on sigma_1's goal (the
    exhaustive oracle; orders of magnitude slower than the proof-based
    search on larger goals, so only the 2-atom goal is timed)."""
    mapping = example_4_5()
    sigma = mapping.dependencies[0]

    def run():
        return minimal_generators_exhaustive(
            mapping,
            sigma.disjuncts[0],
            sigma.frontier(),
            MinGenConfig(method="exhaustive"),
        )

    generators = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(generators) == 3
