"""Benchmark E6 — Theorem 4.6: quasi-inverses of full mappings use no
Constant() conjuncts."""

from benchmarks.conftest import run_and_verify


def test_e06_full_language(benchmark):
    report = run_and_verify(benchmark, "E6")
    assert report.passed
