"""Benchmark E7 — Theorem 4.7: disjunction-free quasi-inverses of LAV
mappings (the omega-with-existentials construction)."""

from benchmarks.conftest import run_and_verify
from repro.catalog import decomposition
from repro.core import lav_quasi_inverse


def test_e07_lav_language(benchmark):
    report = run_and_verify(benchmark, "E7")
    assert report.passed


def test_e07_lav_construction_alone(benchmark):
    reverse = benchmark(lav_quasi_inverse, decomposition())
    assert len(reverse.dependencies) == 5
