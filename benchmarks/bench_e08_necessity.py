"""Benchmark E8 — Theorems 4.8-4.11: the feature-rich (quasi-)inverses
work and the feature-stripped candidates fail with explicit
counterexamples."""

from benchmarks.conftest import run_and_verify


def test_e08_necessity(benchmark):
    report = run_and_verify(benchmark, "E8")
    assert len(report.checks) == 10
