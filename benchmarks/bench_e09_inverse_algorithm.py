"""Benchmark E9 — Theorem 5.1 / Example 5.4: the Inverse algorithm,
the exact bounded inverse check, and the weakest-inverse property."""

from benchmarks.conftest import run_and_verify
from repro.catalog import example_5_4
from repro.core import inverse


def test_e09_inverse_algorithm(benchmark):
    report = run_and_verify(benchmark, "E9")
    assert len(report.checks) == 7


def test_e09_inverse_of_example_5_4(benchmark):
    computed = benchmark(inverse, example_5_4())
    assert len(computed.dependencies) == 2
