"""Benchmark E10 — Definition 5.2 / Proposition 5.3: the constant-
propagation checks across the catalog."""

from benchmarks.conftest import run_and_verify


def test_e10_constant_propagation(benchmark):
    report = run_and_verify(benchmark, "E10")
    assert report.passed
