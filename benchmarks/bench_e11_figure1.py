"""Benchmark E11 — **Figure 1** / Example 6.1: the bidirectional
exchange tables, regenerated cell by cell, plus the underlying round
trips in isolation."""

from benchmarks.conftest import run_and_verify
from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    figure_1_instance,
)
from repro.dataexchange import round_trip


def test_e11_figure1(benchmark):
    report = run_and_verify(benchmark, "E11")
    assert len(report.checks) == 9


def test_e11_round_trip_join(benchmark):
    trip = benchmark(
        round_trip,
        decomposition(),
        decomposition_quasi_inverse_join(),
        figure_1_instance(),
    )
    assert len(trip.recovered[0]) == 4  # the 2x2 product V1


def test_e11_round_trip_split(benchmark):
    trip = benchmark(
        round_trip,
        decomposition(),
        decomposition_quasi_inverse_split(),
        figure_1_instance(),
    )
    assert len(trip.recovered[0].nulls()) == 4  # V2's four nulls
