"""Benchmark E12 — Theorems 6.7/6.8: soundness and faithfulness sweeps
over catalog and random workloads."""

from benchmarks.conftest import run_and_verify


def test_e12_soundness_faithfulness(benchmark):
    report = run_and_verify(benchmark, "E12")
    assert report.passed
