"""Benchmark E13 — Proposition 3.9 / Section 5 remark: QuasiInverse vs
Inverse on invertible mappings (side-by-side language audit and exact
bounded inverse checks)."""

from benchmarks.conftest import run_and_verify


def test_e13_invertible_comparison(benchmark):
    report = run_and_verify(benchmark, "E13")
    assert len(report.checks) == 10
