"""Benchmark E14 — the Section 3 remark: a mapping with unique
solutions (the necessary condition of [3]) that still has no inverse,
via an exact (=,=)-subset violation."""

from benchmarks.conftest import run_and_verify


def test_e14_unique_solutions_gap(benchmark):
    report = run_and_verify(benchmark, "E14")
    assert len(report.checks) == 7
