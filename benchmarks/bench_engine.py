"""Engine-level benchmarks: memo-cache effectiveness and parallel
universe fan-out.

These complement the per-primitive scale benchmarks: they measure the
shared execution layer itself — cold-cache versus warm-cache bounded
checks, and the :class:`ParallelUniverseRunner`'s serial/parallel
agreement on a fixed universe."""

import pytest

from benchmarks.conftest import scale_params

from repro.catalog import decomposition
from repro.core import SolutionEquivalence, subset_property
from repro.engine import (
    ParallelUniverseRunner,
    engine_stats,
    reset_engine_stats,
    verdict_cache,
)
from repro.workloads import instance_universe


@pytest.mark.parametrize("max_facts", scale_params([1, 2], [1]))
def test_subset_property_cold_cache(benchmark, max_facts):
    """The bounded subset-property check with every memo cache empty."""
    mapping = decomposition()
    universe = instance_universe(mapping.source, [0, 1], max_facts=max_facts)
    relation = SolutionEquivalence(mapping)

    def run():
        reset_engine_stats()
        return subset_property(mapping, relation, relation, universe)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.holds
    assert verdict_cache.stats().hits > 0  # reuse happens within one check


@pytest.mark.parametrize("max_facts", scale_params([1, 2], [1]))
def test_subset_property_warm_cache(benchmark, max_facts):
    """The same check re-run against fully warmed caches."""
    mapping = decomposition()
    universe = instance_universe(mapping.source, [0, 1], max_facts=max_facts)
    relation = SolutionEquivalence(mapping)
    reset_engine_stats()
    expected = subset_property(mapping, relation, relation, universe)

    report = benchmark.pedantic(
        lambda: subset_property(mapping, relation, relation, universe),
        rounds=1,
        iterations=1,
    )
    assert report == expected


@pytest.mark.parametrize("workers", [1, 2])
def test_subset_property_worker_equivalence(benchmark, workers):
    """Verdicts are byte-identical across worker counts (and the
    parallel path's overhead is visible in the n=… comparison)."""
    mapping = decomposition()
    universe = instance_universe(mapping.source, [0, 1], max_facts=2)
    relation = SolutionEquivalence(mapping)
    reset_engine_stats()
    serial = subset_property(mapping, relation, relation, universe, workers=1)

    report = benchmark.pedantic(
        lambda: subset_property(
            mapping, relation, relation, universe, workers=workers
        ),
        rounds=1,
        iterations=1,
    )
    assert report == serial


def test_parallel_runner_fan_out(benchmark):
    """Raw fan-out cost of the runner on a trivial task."""
    runner = ParallelUniverseRunner(2, chunk_size=8)

    def run():
        return runner.map(len, [(i,) * (i % 3) for i in range(64)])

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results == [i % 3 for i in range(64)]
    assert engine_stats().instances_processed >= 64
