"""Perf trajectory across the committed ``BENCH_PR<n>.json`` snapshots.

Each perf-focused PR commits one compact median snapshot at the repo
root (see ``check_regression.py --emit-snapshot``).  This script folds
all of them into a single trajectory table — one row per benchmark,
one column per PR snapshot — so "what got faster when" stays
answerable from the repo without digging through CI artifacts.

Usage::

    python benchmarks/bench_history.py            # table to stdout
    python benchmarks/bench_history.py --json     # machine-readable

A cell shows the median seconds recorded by that PR's snapshot, or
``-`` when the PR did not run that benchmark (snapshots only cover the
bench job(s) the PR touched).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover_snapshots(root: Path = ROOT) -> List[Tuple[int, Path]]:
    """``[(pr_number, path)]`` sorted by PR number."""
    found = []
    for path in root.glob("BENCH_PR*.json"):
        match = SNAPSHOT_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def load_snapshot(path: Path) -> Dict[str, float]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read snapshot {path}: {error}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise SystemExit(f"snapshot {path} has no 'benchmarks' table")
    return {str(name): float(value) for name, value in benchmarks.items()}


def build_history(
    snapshots: List[Tuple[int, Path]],
) -> Tuple[List[int], Dict[str, Dict[int, float]]]:
    """(ordered PR numbers, {benchmark: {pr: median seconds}})."""
    numbers = [number for number, _ in snapshots]
    history: Dict[str, Dict[int, float]] = {}
    for number, path in snapshots:
        for name, median in load_snapshot(path).items():
            history.setdefault(name, {})[number] = median
    return numbers, history


def _short(name: str) -> str:
    """``bench_sql.py::test_x`` from the full node id."""
    return name.removeprefix("benchmarks/")


def render_table(numbers: List[int], history: Dict[str, Dict[int, float]]) -> str:
    header = ["benchmark"] + [f"PR{n}" for n in numbers]
    rows = [
        [_short(name)]
        + [
            f"{cells[n]:.3f}s" if n in cells else "-"
            for n in numbers
        ]
        for name, cells in sorted(history.items())
    ]
    widths = [
        max(len(line[column]) for line in [header] + rows)
        for column in range(len(header))
    ]
    lines = []
    for line in [header] + rows:
        lines.append(
            "  ".join(
                cell.ljust(width) if index == 0 else cell.rjust(width)
                for index, (cell, width) in enumerate(zip(line, widths))
            ).rstrip()
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=ROOT,
        help="repository root to scan for BENCH_PR<n>.json (default: repo root)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the trajectory as JSON instead of a table",
    )
    arguments = parser.parse_args(argv)

    snapshots = discover_snapshots(arguments.root)
    if not snapshots:
        print(f"no BENCH_PR<n>.json snapshots under {arguments.root}")
        return 1
    numbers, history = build_history(snapshots)
    if arguments.json:
        payload = {
            "snapshots": [f"PR{n}" for n in numbers],
            "medians_seconds": {
                name: {f"PR{n}": value for n, value in sorted(cells.items())}
                for name, cells in sorted(history.items())
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(numbers, history))
    return 0


if __name__ == "__main__":
    sys.exit(main())
