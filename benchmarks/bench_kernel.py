"""The compiled-kernel backend vs the object backend.

Sweeps the (∼M,∼M)-subset property over the ≤2-fact |domain|=4
universe of a binary projection mapping (137 instances, orbit-reduced)
on both execution backends.  The witness pool is prebuilt once and
passed to every sweep so both backends time exactly the same work —
the pool construction is backend-independent setup, not the workload
under test.

The acceptance gate of the kernel change: the kernel sweep must beat
the object sweep by >= 5x (median of several interleaved cold runs,
which absorbs machine noise on the object side), with byte-identical
verdicts, violations, and coverage across ``object|kernel`` x
``serial|parallel``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import QUICK

from repro.core.framework import (
    SolutionEquivalence,
    _default_witnesses,
    subset_property,
)
from repro.core.mapping import SchemaMapping
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant
from repro.engine.cache import reset_all_caches
from repro.engine.parallel import fork_available
from repro.workloads.universes import instance_universe

ACCEPTANCE_DOMAIN = 4
ACCEPTANCE_SPEEDUP = 5.0

#: Cold runs per backend for the median; quick mode keeps CI short.
ROUNDS = 3 if QUICK else 5


def _projection_mapping() -> SchemaMapping:
    return SchemaMapping.from_text(
        Schema.of({"R": 2}),
        Schema.of({"S": 1}),
        "R(x, y) -> S(x)",
        name="Projection",
    )


def _universe(mapping: SchemaMapping, domain_size: int):
    domain = [Constant(f"c{index}") for index in range(domain_size)]
    return instance_universe(mapping.source, domain, max_facts=2)


def _sweep(mapping, universe, witnesses, backend, workers=0):
    equivalence = SolutionEquivalence(mapping)
    return subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        witness_universe=witnesses,
        stop_at_first_violation=False,
        workers=workers,
        symmetry="orbits",
        backend=backend,
    )


def _verdict(report):
    """The backend-independent part of a report (cache counters and
    phase timings differ by design; verdicts and witnesses may not)."""
    return repr(
        (
            report.holds,
            report.violations,
            report.coverage,
            report.checked,
            report.instances_checked,
            report.orbits_checked,
        )
    )


@pytest.mark.parametrize("backend", ["object", "kernel"])
def test_subset_property_sweep(benchmark, backend):
    mapping = _projection_mapping()
    universe = _universe(mapping, ACCEPTANCE_DOMAIN)
    witnesses = _default_witnesses(universe)

    def run():
        reset_all_caches()
        return _sweep(mapping, universe, witnesses, backend)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.holds
    assert report.instances_checked == len(universe)
    assert 0 < report.orbits_checked < len(universe)


def test_kernel_speedup_acceptance(benchmark):
    """|domain|=4: kernel must beat object by >= 5x, reports identical."""
    mapping = _projection_mapping()
    universe = _universe(mapping, ACCEPTANCE_DOMAIN)
    witnesses = _default_witnesses(universe)

    def timed(backend):
        reset_all_caches()
        started = time.perf_counter()
        report = _sweep(mapping, universe, witnesses, backend)
        return time.perf_counter() - started, report

    def interleaved():
        object_seconds, kernel_seconds = [], []
        object_report = kernel_report = None
        for _ in range(ROUNDS):
            seconds, object_report = timed("object")
            object_seconds.append(seconds)
            seconds, kernel_report = timed("kernel")
            kernel_seconds.append(seconds)
        return object_seconds, object_report, kernel_seconds, kernel_report

    object_seconds, object_report, kernel_seconds, kernel_report = (
        benchmark.pedantic(interleaved, rounds=1, iterations=1)
    )
    assert _verdict(object_report) == _verdict(kernel_report)
    object_median = statistics.median(object_seconds)
    kernel_median = statistics.median(kernel_seconds)
    speedup = object_median / kernel_median
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"kernel sweep only {speedup:.2f}x faster than object at "
        f"|domain|={ACCEPTANCE_DOMAIN} (acceptance: >= {ACCEPTANCE_SPEEDUP}x): "
        f"object median {object_median:.3f}s vs kernel {kernel_median:.3f}s"
    )


def test_backend_parity_serial_and_parallel(benchmark):
    """Verdicts are byte-identical across backend x worker-count."""
    mapping = _projection_mapping()
    universe = _universe(mapping, 3 if QUICK else ACCEPTANCE_DOMAIN)
    witnesses = _default_witnesses(universe)
    worker_counts = [0, 2] if fork_available() else [0]

    def all_modes():
        verdicts = {}
        for backend in ("object", "kernel"):
            for workers in worker_counts:
                reset_all_caches()
                report = _sweep(
                    mapping, universe, witnesses, backend, workers=workers
                )
                verdicts[(backend, workers)] = _verdict(report)
        return verdicts

    verdicts = benchmark.pedantic(all_modes, rounds=1, iterations=1)
    baseline = verdicts[("object", 0)]
    assert all(verdict == baseline for verdict in verdicts.values()), verdicts
