"""Scaling: bounded framework checkers vs universe size — the cost of
the subset-property and exact inverse checks grows quadratically in
the universe (and the composition-membership cost exponentially in
chase nulls), which bounds how far the falsifiers can be pushed."""

import pytest

from repro.catalog import decomposition, example_5_4
from repro.core import (
    SolutionEquivalence,
    inverse,
    is_inverse,
    subset_property,
)
from repro.workloads import instance_universe


@pytest.mark.parametrize("max_facts", [1, 2])
def test_subset_property_vs_universe(benchmark, max_facts):
    mapping = decomposition()
    universe = instance_universe(mapping.source, [0, 1], max_facts=max_facts)
    relation = SolutionEquivalence(mapping)

    def run():
        return subset_property(mapping, relation, relation, universe)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.holds


@pytest.mark.parametrize("max_facts", [1, 2])
def test_is_inverse_vs_universe(benchmark, max_facts):
    mapping = example_5_4()
    computed = inverse(mapping)
    universe = instance_universe(mapping.source, ["a", "b"], max_facts=max_facts)

    def run():
        return is_inverse(mapping, computed, universe)

    verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict.holds
