"""Scaling: standard chase throughput vs source instance size.

The chase of a LAV/decomposition-style mapping is near-linear in the
number of source facts; the sweep makes the growth curve visible in
the benchmark report (compare the n=… groups)."""

import pytest

from benchmarks.conftest import scale_params

from repro.catalog import decomposition, example_4_5
from repro.chase.standard import chase
from repro.workloads import random_ground_instance


@pytest.mark.parametrize("n_facts", scale_params([8, 32, 128], [8, 32]))
def test_chase_decomposition(benchmark, n_facts):
    mapping = decomposition()
    source = random_ground_instance(
        mapping.source, seed=1, n_facts=n_facts, domain_size=max(4, n_facts // 2)
    )
    result = benchmark(chase, source, mapping.dependencies)
    assert len(result.produced) >= 1


@pytest.mark.parametrize("n_facts", scale_params([8, 32, 128], [8, 32]))
def test_chase_example_4_5(benchmark, n_facts):
    mapping = example_4_5()
    source = random_ground_instance(
        mapping.source, seed=1, n_facts=n_facts, domain_size=max(4, n_facts // 2)
    )
    result = benchmark(chase, source, mapping.dependencies)
    assert len(result.instance) >= n_facts
