"""Scaling: composition machinery.

* skolemized composition + direct evaluation vs the two-step exchange
  (the composed rules amortize the middle instance away);
* exact composition membership vs source size for a full pipeline.
"""

import pytest

from repro.catalog import decomposition, thm_4_8
from repro.core.mapping import SchemaMapping
from repro.core.skolem import compose_skolem, skolem_exchange
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.dataexchange.exchange import exchange
from repro.workloads import random_ground_instance


def _pipeline():
    first = thm_4_8()
    second = SchemaMapping.from_text(
        first.target,
        Schema.of({"W": 2}),
        "Q(u, v) & Q(v, w) -> W(u, w)",
    )
    return first, second


@pytest.mark.parametrize("n_facts", [8, 32, 128])
def test_composed_evaluation(benchmark, n_facts):
    first, second = _pipeline()
    composed = compose_skolem(first, second)
    source = random_ground_instance(
        first.source, seed=9, n_facts=n_facts, domain_size=max(4, n_facts // 2)
    )
    result = benchmark(skolem_exchange, composed, source)
    assert result


@pytest.mark.parametrize("n_facts", [8, 32, 128])
def test_two_step_evaluation(benchmark, n_facts):
    first, second = _pipeline()
    source = random_ground_instance(
        first.source, seed=9, n_facts=n_facts, domain_size=max(4, n_facts // 2)
    )

    def run():
        middle = exchange(first, source)
        return exchange(second, middle)

    result = benchmark(run)
    assert result


def test_compose_skolem_construction(benchmark):
    first, second = _pipeline()
    composed = benchmark(compose_skolem, first, second)
    assert composed.rules
