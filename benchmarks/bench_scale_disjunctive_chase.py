"""Scaling: disjunctive chase tree size vs the number of branching
facts — the tree doubles per independently-branching premise match
(Definition 6.4)."""

import pytest

from repro.chase.disjunctive import disjunctive_chase
from repro.datamodel.instances import Instance
from repro.dependencies.parser import parse_dependency


@pytest.mark.parametrize("n_facts", [2, 4, 8])
def test_disjunctive_chase_tree_growth(benchmark, n_facts):
    deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
    source = Instance.build({"S": [(f"c{i}",) for i in range(n_facts)]})
    tree = benchmark(disjunctive_chase, source, deps)
    assert len(tree.leaves()) == 2 ** n_facts
