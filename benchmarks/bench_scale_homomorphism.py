"""Scaling: homomorphism search and homomorphic-equivalence tests vs
instance size — the primitive underlying every ∼M decision.

The search runs through the engine's fact index
(:mod:`repro.engine.indexing`): candidate facts come from
``(relation, position, term)`` posting lists instead of linear
relation scans, which is what keeps the larger points on this curve
tractable."""

import pytest

from benchmarks.conftest import scale_params

from repro.catalog import decomposition
from repro.chase.homomorphism import (
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from repro.core.mapping import universal_solution
from repro.workloads import random_ground_instance


@pytest.mark.parametrize("n_facts", scale_params([8, 32, 128], [8, 32]))
def test_instance_homomorphism(benchmark, n_facts):
    mapping = decomposition()
    source = random_ground_instance(
        mapping.source, seed=2, n_facts=n_facts, domain_size=max(4, n_facts // 2)
    )
    chased = universal_solution(mapping, source)
    found = benchmark(instance_homomorphism, chased, chased)
    assert found is not None


@pytest.mark.parametrize("n_facts", scale_params([8, 32], [8]))
def test_homomorphic_equivalence_of_chases(benchmark, n_facts):
    mapping = decomposition()
    left = random_ground_instance(
        mapping.source, seed=3, n_facts=n_facts, domain_size=4
    )
    right = left.union(
        random_ground_instance(mapping.source, seed=4, n_facts=2, domain_size=4)
    )
    left_chase = universal_solution(mapping, left)
    right_chase = universal_solution(mapping, right)
    benchmark(is_homomorphically_equivalent, left_chase, right_chase)
