"""Scaling: MinGen search cost vs the number of tgds (Theorem 4.1's
exponential-time bound).

The proof-based search grows with the number of proof shapes (tgd
choices per goal atom × firing partitions), which the sweep over
random LAV mappings with increasing tgd counts exposes."""

import pytest

from repro.core import minimal_generators
from repro.workloads import random_lav_mapping


@pytest.mark.parametrize("n_tgds", [2, 4, 8])
def test_mingen_vs_tgd_count(benchmark, n_tgds):
    mapping = random_lav_mapping(
        42, n_source=2, n_target=2, max_arity=2, n_tgds=n_tgds
    )
    sigma = mapping.dependencies[0]

    def run():
        return minimal_generators(mapping, sigma.disjuncts[0], sigma.frontier())

    generators = benchmark(run)
    assert generators
