"""Scaling: whole-algorithm QuasiInverse cost vs mapping size.

Sigma* grows with the Bell number of each tgd's frontier and MinGen
runs once per member, so the overall algorithm is exponential in the
mapping size (the open question in the paper's Section 7 is whether
that is unavoidable)."""

import pytest

from repro.core import quasi_inverse
from repro.workloads import random_lav_mapping


@pytest.mark.parametrize("n_tgds", [2, 4, 6])
def test_quasi_inverse_vs_tgd_count(benchmark, n_tgds):
    mapping = random_lav_mapping(
        7, n_source=2, n_target=2, max_arity=2, n_tgds=n_tgds
    )
    reverse = benchmark(quasi_inverse, mapping)
    assert reverse.dependencies


@pytest.mark.parametrize("max_arity", [2, 3])
def test_quasi_inverse_vs_arity(benchmark, max_arity):
    mapping = random_lav_mapping(
        11, n_source=2, n_target=2, max_arity=max_arity, n_tgds=3
    )
    reverse = benchmark(quasi_inverse, mapping)
    assert reverse.dependencies
