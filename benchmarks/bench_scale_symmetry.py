"""Scaling: symmetry-reduced sweeps vs full universe enumeration.

Sweeps the (∼M,∼M)-subset property over all ≤2-fact universes of a
binary projection mapping for |domain| ∈ {2..5}, in both ``full`` and
``orbits`` mode.  The orbit count grows like ``universe / |domain|!``,
so the gap widens with the domain; the acceptance gate asserts the
|domain|=4 sweep is at least 3x faster orbit-reduced, with verdicts
byte-identical to the full sweep.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import scale_params

from repro.core.framework import SolutionEquivalence, subset_property
from repro.core.mapping import SchemaMapping
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant
from repro.engine.cache import reset_all_caches
from repro.workloads.universes import instance_universe

#: |domain| values swept; CI's quick mode stops at the acceptance size.
DOMAIN_SIZES = scale_params([2, 3, 4, 5], [2, 3, 4])

#: The gate of the symmetry-reduction change: minimum full/orbits
#: wall-clock ratio on the |domain|=4 subset-property sweep.
ACCEPTANCE_DOMAIN = 4
ACCEPTANCE_SPEEDUP = 3.0


def _projection_mapping() -> SchemaMapping:
    return SchemaMapping.from_text(
        Schema.of({"R": 2}),
        Schema.of({"S": 1}),
        "R(x, y) -> S(x)",
        name="Projection",
    )


def _universe(mapping: SchemaMapping, domain_size: int):
    domain = [Constant(f"c{index}") for index in range(domain_size)]
    return instance_universe(mapping.source, domain, max_facts=2)


def _sweep(mapping, universe, symmetry):
    equivalence = SolutionEquivalence(mapping)
    return subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        stop_at_first_violation=False,
        workers=0,
        symmetry=symmetry,
    )


def _verdict(report):
    """The mode-independent part of a report (counters differ by design)."""
    return repr((report.holds, report.violations, report.coverage))


@pytest.mark.parametrize("symmetry", ["full", "orbits"])
@pytest.mark.parametrize("domain_size", DOMAIN_SIZES)
def test_subset_property_sweep(benchmark, domain_size, symmetry):
    mapping = _projection_mapping()
    universe = _universe(mapping, domain_size)

    def run():
        reset_all_caches()
        return _sweep(mapping, universe, symmetry)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.holds
    assert report.instances_checked == len(universe)
    if symmetry == "orbits":
        assert 0 < report.orbits_checked < len(universe)
    else:
        assert report.orbits_checked == 0


def test_symmetry_speedup_acceptance(benchmark):
    """|domain|=4: orbits must beat full by >= 3x, verdicts identical."""
    mapping = _projection_mapping()
    universe = _universe(mapping, ACCEPTANCE_DOMAIN)

    def both_modes():
        reset_all_caches()
        started = time.perf_counter()
        full = _sweep(mapping, universe, "full")
        full_seconds = time.perf_counter() - started
        reset_all_caches()
        started = time.perf_counter()
        orbits = _sweep(mapping, universe, "orbits")
        orbit_seconds = time.perf_counter() - started
        return full, full_seconds, orbits, orbit_seconds

    full, full_seconds, orbits, orbit_seconds = benchmark.pedantic(
        both_modes, rounds=1, iterations=1
    )
    assert _verdict(full) == _verdict(orbits)
    assert full.instances_checked == orbits.instances_checked == len(universe)
    speedup = full_seconds / orbit_seconds
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"orbit sweep only {speedup:.2f}x faster than full at "
        f"|domain|={ACCEPTANCE_DOMAIN} (acceptance: >= {ACCEPTANCE_SPEEDUP}x): "
        f"full {full_seconds:.3f}s vs orbits {orbit_seconds:.3f}s"
    )
