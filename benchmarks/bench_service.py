"""Acceptance gate for the checking service's warm-state promise.

Two promises, checked against a real daemon subprocess:

1. **Warm-over-cold latency** — the daemon's reason to exist is that
   N checks cost N× the engine work but only 1× the process state
   (interpreter boot, imports, intern table, compiled join plans,
   chase/verdict memo caches).  The gate: answering the whole job
   catalog below from a *warm* daemon (server-side ``seconds``, every
   job a fresh execution — the priming pass's checkpoint journals are
   gone) must be at least ``--min-speedup`` (default 5×) faster than
   answering it the cold way, one fresh ``python -m repro.cli check``
   process per question.  The headline workload is an orbit-reduced
   subset-property sweep of Example 5.4 over the |domain| = 4
   universe; small catalog checks ride along because amortizing fixed
   state over many requests is exactly the service use case.
2. **Byte-identity** — for every catalog job, the rendering embedded
   in the service response must equal, byte for byte, what
   ``python -m repro.cli check`` prints for the same question in a
   fresh process — and the HTTP-carried exit code must equal the
   CLI's.  The experiment kind is additionally checked against the
   ``python -m repro.cli run`` report body it embeds.

Usage (CI runs this)::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    for knob in ("REPRO_FAULT_KILL_TASK", "REPRO_FAULT_DELAY_TASK",
                 "REPRO_ON_FAULT", "REPRO_STORE", "REPRO_CHECKPOINT"):
        env.pop(knob, None)
    return env


def _spawn_daemon(state_dir: str):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", "0", "--state-dir", state_dir, "--max-jobs", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=_env(), text=True,
    )
    endpoint_file = os.path.join(state_dir, "service.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"daemon died:\n{process.stdout.read()}")
        try:
            with open(endpoint_file, "r", encoding="utf-8") as handle:
                endpoint = json.load(handle)
            if endpoint.get("pid") == process.pid:
                break
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    else:
        process.kill()
        raise RuntimeError("daemon did not write its endpoint file")
    return process, ServiceClient(f"http://{endpoint['host']}:{endpoint['port']}")


def _submit_and_wait(client: ServiceClient, payload: dict):
    job = client.submit(dict(payload))
    _status, body = client.result(job["id"], wait=600)
    if body.get("outcome") is None:
        raise RuntimeError(f"job did not settle: {body}")
    return body


def _cli_argv(payload: dict):
    argv = [sys.executable, "-m", "repro.cli", "check", payload["kind"]]
    argv.append(payload.get("experiment") or payload["mapping"])
    if "domain" in payload:
        argv += ["--domain", ",".join(payload["domain"])]
    for flag in ("max_facts", "symmetry", "backend"):
        if flag in payload:
            argv += [f"--{flag.replace('_', '-')}", str(payload[flag])]
    return argv


def _cli_check(payload: dict):
    """(stdout, exit code, wall seconds) of one cold CLI process."""
    started = time.perf_counter()
    completed = subprocess.run(
        _cli_argv(payload), capture_output=True, text=True,
        env=_env(), timeout=600,
    )
    return completed.stdout, completed.returncode, time.perf_counter() - started


def _label(payload: dict) -> str:
    return f"{payload['kind']}:{payload.get('experiment') or payload['mapping']}"


#: The job catalog: the orbit-reduced Example 5.4 subset sweep is the
#: headline; the rest are the terminal-state spread (pass / violated)
#: every CI run should exercise.
CATALOG = [
    {"kind": "subset", "mapping": "Example5.4",
     "domain": ["a", "b", "c", "d"], "max_facts": 2,
     "symmetry": "orbits", "backend": "kernel"},
    {"kind": "invertibility", "mapping": "Example5.4"},
    {"kind": "invertibility", "mapping": "Projection"},
    {"kind": "unique", "mapping": "Projection"},
    {"kind": "subset", "mapping": "Decomposition", "max_facts": 2},
    {"kind": "experiment", "experiment": "E4"},
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required warm-over-cold latency factor over the catalog",
    )
    args = parser.parse_args(argv)

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        process, client = _spawn_daemon(os.path.join(tmp, "state"))
        try:
            # -- pass 1: prime the daemon; gate byte-identity --------
            cold_wall = 0.0
            renderings = {}
            print(f"{'job':<30} {'cli(cold)':>10} {'daemon(prime)':>14}")
            for payload in CATALOG:
                body = _submit_and_wait(client, payload)
                rendering = body["outcome"]["rendering"]
                renderings[_label(payload)] = rendering
                stdout, code, wall = _cli_check(payload)
                cold_wall += wall
                print(f"{_label(payload):<30} {wall:9.3f}s "
                      f"{body['outcome']['seconds']:13.3f}s")
                if stdout != rendering + "\n":
                    failures.append(
                        f"{_label(payload)}: rendering differs from "
                        f"`repro.cli check`"
                    )
                if code != body["exit_code"]:
                    failures.append(
                        f"{_label(payload)}: exit codes differ "
                        f"(service {body['exit_code']}, cli {code})"
                    )
                if payload["kind"] == "experiment":
                    run = subprocess.run(
                        [sys.executable, "-m", "repro.cli", "run",
                         payload["experiment"]],
                        capture_output=True, text=True, env=_env(),
                        timeout=600,
                    )
                    if not run.stdout.startswith(rendering + "\n"):
                        failures.append(
                            f"{_label(payload)}: `repro.cli run` body "
                            f"differs from the service rendering"
                        )

            # -- pass 2: the warm catalog ----------------------------
            warm_seconds = 0.0
            primed_ids = set()
            for payload in CATALOG:
                body = _submit_and_wait(client, payload)
                if body["id"] in primed_ids:
                    failures.append(f"{_label(payload)}: warm run was not "
                                    f"a fresh execution")
                primed_ids.add(body["id"])
                warm_seconds += body["outcome"]["seconds"]
                if body["outcome"]["rendering"] != renderings[_label(payload)]:
                    failures.append(
                        f"{_label(payload)}: warm rendering differs "
                        f"from the priming run"
                    )

            stats = client.stats()
            if stats["jobs_executed"] < 2 * len(CATALOG):
                failures.append(
                    "warm pass reused terminal results instead of "
                    f"re-executing (jobs_executed={stats['jobs_executed']})"
                )

            speedup = cold_wall / warm_seconds if warm_seconds else float("inf")
            print(f"\ncold: one fresh CLI process per question "
                  f"-> {cold_wall:8.3f}s")
            print(f"warm: the same catalog, warm daemon       "
                  f"-> {warm_seconds:8.3f}s")
            print(f"warm-over-cold speedup: {speedup:.2f}x")
            if speedup < args.min_speedup:
                failures.append(
                    f"speedup {speedup:.2f}x below the "
                    f"{args.min_speedup}x gate"
                )
        finally:
            try:
                client.shutdown()
                process.wait(timeout=15)
            except Exception:
                process.kill()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_service: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
