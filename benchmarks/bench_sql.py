"""The SQL (SQLite-hosted) backend vs the in-process backends.

Two workloads, two claims:

* **Scale** — a 100,000-fact chain instance chased to its 299,000-fact
  fixpoint.  The set-based SQL rounds finish this in seconds; the
  interpreted backends re-enumerate every premise match per round and
  do not finish within any CI-shaped budget (the kernel needs minutes
  for 1% of this size), so the run is SQL-only and gated by a
  wall-clock :class:`~repro.engine.budget.Budget`.

* **Parity** — at a kernel-feasible scale the two backends must chase
  to the *same* fixpoint, and the SQL backend must win by
  >= ``ACCEPTANCE_SPEEDUP`` (median of interleaved cold runs).  On top
  of that, the whole experiment catalog is rendered under every
  backend x worker-count combination and the reports must be
  byte-identical — the backend is an execution detail, never a result.

The chain workload is deliberately join-heavy: the transitive
one-step/two-step dependencies make every round a self-join of ``E``
against the growing ``F``, which is exactly the shape set-based SQL
evaluation is good at and per-match interpretation is not.
"""

from __future__ import annotations

import os
import statistics
import time

from benchmarks.conftest import QUICK

from repro.chase.standard import chase
from repro.datamodel.instances import Instance
from repro.dependencies.parser import parse_dependency
from repro.engine import use_backend
from repro.engine.budget import Budget, use_budget
from repro.engine.cache import reset_all_caches
from repro.engine.parallel import fork_available
from repro.experiments.registry import run_all

#: The scale leg: 1000 chains x 100 edges = 100,000 source facts.
#: Kept full-size even under BENCH_QUICK — the whole point is that
#: the SQL backend makes this size routine.
LARGE_CHAINS, LARGE_LENGTH = 1_000, 100
LARGE_DEADLINE_SECONDS = 240.0

#: The comparison leg runs on both backends, so it must stay inside
#: what the kernel can chase in a few seconds per round.
SPEEDUP_CHAINS, SPEEDUP_LENGTH = (10, 30) if QUICK else (20, 50)
ACCEPTANCE_SPEEDUP = 3.0
ROUNDS = 3

DEPS = (
    parse_dependency("E(x, y) -> F(x, y)"),
    parse_dependency("E(x, y) & E(y, z) -> F(x, z)"),
)


def chains(n_chains: int, length: int) -> Instance:
    """``n_chains`` disjoint paths of ``length`` edges over ``E``."""
    rows = []
    for c in range(n_chains):
        for i in range(length):
            rows.append((f"v{c}_{i}", f"v{c}_{i + 1}"))
    return Instance.build({"E": rows})


def fixpoint_size(n_chains: int, length: int) -> int:
    """|E| + |F|: edges, their copies, and one two-step path per
    interior vertex — ``3nL - n`` facts in total."""
    return 3 * n_chains * length - n_chains


def _chase_to_fixpoint(backend: str, source: Instance):
    reset_all_caches()
    with use_backend(backend):
        # the default max_steps guard (10k firings) is sized for sweep
        # instances; the scale leg alone fires ~200k full tgds
        return chase(source, DEPS, trace=False, max_steps=1_000_000)


def test_large_chase_sql_within_budget(benchmark):
    """100k-fact instance to fixpoint, SQL-only, under a deadline."""
    source = chains(LARGE_CHAINS, LARGE_LENGTH)
    assert len(source.facts) == LARGE_CHAINS * LARGE_LENGTH

    def run():
        reset_all_caches()
        with use_budget(Budget(deadline=LARGE_DEADLINE_SECONDS)):
            return _chase_to_fixpoint("sql", source)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.instance.facts) == fixpoint_size(
        LARGE_CHAINS, LARGE_LENGTH
    )


def test_sql_speedup_acceptance(benchmark):
    """Same fixpoint as the kernel, >= 3x faster (interleaved medians)."""
    source = chains(SPEEDUP_CHAINS, SPEEDUP_LENGTH)

    def timed(backend):
        started = time.perf_counter()
        result = _chase_to_fixpoint(backend, source)
        return time.perf_counter() - started, result

    def interleaved():
        kernel_seconds, sql_seconds = [], []
        kernel_result = sql_result = None
        for _ in range(ROUNDS):
            seconds, kernel_result = timed("kernel")
            kernel_seconds.append(seconds)
            seconds, sql_result = timed("sql")
            sql_seconds.append(seconds)
        return kernel_seconds, kernel_result, sql_seconds, sql_result

    kernel_seconds, kernel_result, sql_seconds, sql_result = (
        benchmark.pedantic(interleaved, rounds=1, iterations=1)
    )
    expected = fixpoint_size(SPEEDUP_CHAINS, SPEEDUP_LENGTH)
    assert len(kernel_result.instance.facts) == expected
    assert sql_result.instance.facts == kernel_result.instance.facts
    kernel_median = statistics.median(kernel_seconds)
    sql_median = statistics.median(sql_seconds)
    speedup = kernel_median / sql_median
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"sql chase only {speedup:.2f}x faster than kernel on "
        f"{SPEEDUP_CHAINS}x{SPEEDUP_LENGTH} chains (acceptance: "
        f">= {ACCEPTANCE_SPEEDUP}x): kernel median {kernel_median:.3f}s "
        f"vs sql {sql_median:.3f}s"
    )


def _catalog_text(backend: str, workers: int) -> str:
    os.environ["REPRO_BACKEND"] = backend
    if workers:
        os.environ["REPRO_WORKERS"] = str(workers)
    else:
        os.environ.pop("REPRO_WORKERS", None)
    reset_all_caches()
    return "\n\n".join(report.render() for report in run_all())


def test_catalog_reports_byte_identical(benchmark):
    """Every experiment report, byte for byte, across backend x workers.

    This is the acceptance gate for the backend as a whole: E1-E14
    rendered under ``object | kernel | sql`` x ``serial | parallel``
    must be a single fixed string.  Runs the full catalog even under
    BENCH_QUICK — a reduced catalog would gate a weaker claim.
    """
    worker_counts = (0, 2) if fork_available() else (0,)
    saved = {
        knob: os.environ.get(knob)
        for knob in ("REPRO_BACKEND", "REPRO_WORKERS")
    }

    def all_modes():
        try:
            return {
                (backend, workers): _catalog_text(backend, workers)
                for backend in ("object", "kernel", "sql")
                for workers in worker_counts
            }
        finally:
            for knob, value in saved.items():
                if value is None:
                    os.environ.pop(knob, None)
                else:
                    os.environ[knob] = value
            reset_all_caches()

    texts = benchmark.pedantic(all_modes, rounds=1, iterations=1)
    baseline = texts[("object", 0)]
    assert baseline  # the catalog rendered something
    divergent = [key for key, text in texts.items() if text != baseline]
    assert not divergent, (
        f"catalog reports diverge from (object, serial) under: {divergent}"
    )
