"""Acceptance gate for the disk-persistent verdict store + sharding.

Three promises, checked end to end on an orbit-reduced subset-property
sweep of Example 5.4 over the |domain| = 4 universe (object backend,
no early stop; the mapping's existential heads make every equivalence
verdict a genuine homomorphism search, which is exactly the work a
warm store must skip):

1. **Warm-over-cold speedup** — re-running the sweep against a
   populated store (memory caches reset, so every verdict really
   round-trips through SQLite) must be at least ``--min-speedup``
   (default 3×) faster than the cold populating run.
2. **Byte-identity** — the storeless report, the cold-store report,
   the warm-store report, and the merged sharded reports (1, 2 and 4
   shards, store enabled) must all render byte-identically.
3. **Shard throughput** — verdict throughput must not collapse when
   the same work is claimed shard by shard through the checkpoint
   journal's lease protocol (per-shard timings are printed; the gate
   is the byte-identity plus a sanity floor, not a strict linearity
   assertion, because CI machines share cores).

Usage (CI runs this)::

    PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.catalog import example_5_4
from repro.core.framework import SolutionEquivalence, subset_property
from repro.engine.cache import reset_all_caches
from repro.engine.checkpoint import CheckpointJournal
from repro.engine.store import VerdictStore, use_store
from repro.workloads import power_instances


def _render(report) -> bytes:
    """A canonical byte rendering of a SubsetPropertyReport."""
    lines = [
        f"holds={report.holds}",
        f"checked={report.checked}",
        f"coverage={report.coverage}",
        f"instances_checked={report.instances_checked}",
        f"orbits_checked={report.orbits_checked}",
    ]
    for left, right in report.violations:
        lines.append(f"violation={left.sorted_facts()}|{right.sorted_facts()}")
    return "\n".join(lines).encode()


def _sweep(mapping, equivalence, universe, **kwargs):
    reset_all_caches()
    start = time.perf_counter()
    report = subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        stop_at_first_violation=False,
        symmetry="orbits",
        backend="object",
        **kwargs,
    )
    return report, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--domain-size", type=int, default=4, help="constants in the universe"
    )
    parser.add_argument(
        "--max-facts", type=int, default=2, help="facts per instance"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required warm-over-cold speedup factor",
    )
    args = parser.parse_args(argv)

    # No REPRO_STORE handling needed: the stores this gate installs
    # explicitly (including the storeless use_store(None) run) always
    # win over the environment knob.

    mapping = example_5_4()
    equivalence = SolutionEquivalence(mapping)
    domain = tuple("abcdefgh"[: args.domain_size])
    universe = list(
        power_instances(mapping.source, domain, max_facts=args.max_facts)
    )
    print(
        f"universe: |domain|={args.domain_size}, max_facts={args.max_facts}"
        f" -> {len(universe)} instances"
    )

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store_path = os.path.join(tmp, "verdicts.sqlite")

        with use_store(None):
            storeless, storeless_s = _sweep(mapping, equivalence, universe)
        print(f"storeless:            {storeless_s:8.3f}s")

        with use_store(store_path) as store:
            cold, cold_s = _sweep(mapping, equivalence, universe)
            store.flush()
            print(
                f"cold (populating):    {cold_s:8.3f}s"
                f"  ({store.writes} writes, {store.entry_count()} entries)"
            )

        with use_store(VerdictStore(store_path)) as store:
            warm, warm_s = _sweep(mapping, equivalence, universe)
            print(
                f"warm (store-backed):  {warm_s:8.3f}s"
                f"  ({store.hits} hits, {store.misses} misses)"
            )
            if store.hits == 0:
                failures.append("warm run never hit the store")

        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"warm-over-cold speedup: {speedup:.2f}x")
        if speedup < args.min_speedup:
            failures.append(
                f"speedup {speedup:.2f}x below the {args.min_speedup}x gate"
            )

        renderings = {
            "storeless": _render(storeless),
            "cold": _render(cold),
            "warm": _render(warm),
        }

        # Sharded runs, store enabled: each shard count coordinates
        # through its own journal (lease files + per-shard entries).
        for shards in (1, 2, 4):
            journal = CheckpointJournal(
                os.path.join(tmp, f"journal-{shards}.json")
            )
            with use_store(VerdictStore(store_path)):
                merged, merged_s = _sweep(
                    mapping,
                    equivalence,
                    universe,
                    shards=shards,
                    checkpoint=journal,
                )
            throughput = merged.checked / merged_s if merged_s > 0 else 0.0
            print(
                f"sharded x{shards} (merged): {merged_s:8.3f}s"
                f"  ({merged.checked} verdicts, {throughput:,.0f}/s)"
            )
            renderings[f"shards{shards}"] = _render(merged)

        reference = renderings["storeless"]
        for label, rendering in renderings.items():
            if rendering != reference:
                failures.append(
                    f"report '{label}' differs from the storeless run"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_store: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
