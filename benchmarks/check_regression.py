"""CI perf-regression gate for the bench-smoke job.

Compares a pytest-benchmark JSON report against the committed
baseline (``benchmarks/baseline_smoke.json``) and fails when any
shared benchmark's mean time regressed by more than the threshold
(default 2x — generous on purpose: CI runners are noisy and the gate
is meant to catch algorithmic regressions, not jitter).  Benchmarks
faster than ``--min-seconds`` in the baseline are compared against
that floor instead, so sub-millisecond noise cannot trip the gate.

Usage::

    python benchmarks/check_regression.py results.json
    python benchmarks/check_regression.py results.json --threshold 3.0
    python benchmarks/check_regression.py results.json --emit-snapshot BENCH_PR4.json

Refreshing the baseline (after an intentional perf change)::

    BENCH_QUICK=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_scale_homomorphism.py benchmarks/bench_scale_chase.py \
        benchmarks/bench_scale_symmetry.py \
        --benchmark-only --benchmark-json=benchmarks/baseline_smoke.json
    git add benchmarks/baseline_smoke.json

and commit with a note on what changed.  The baseline should always
be regenerated with ``BENCH_QUICK=1`` so its benchmark set matches
what CI runs.

The bench-kernel job gates against its own baseline
(``benchmarks/baseline_kernel.json``); refresh it the same way::

    BENCH_QUICK=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_kernel.py \
        --benchmark-only --benchmark-json=benchmarks/baseline_kernel.json
    git add benchmarks/baseline_kernel.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict

DEFAULT_BASELINE = Path(__file__).parent / "baseline_smoke.json"


def load_means(path: Path) -> Dict[str, float]:
    """``{fullname: mean seconds}`` from a pytest-benchmark JSON file."""
    return _load_stat(path, "mean")


def load_medians(path: Path) -> Dict[str, float]:
    """``{fullname: median seconds}`` from a pytest-benchmark JSON file."""
    return _load_stat(path, "median")


def _load_stat(path: Path, stat: str) -> Dict[str, float]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark JSON {path}: {error}")
    return {
        entry["fullname"]: entry["stats"][stat]
        for entry in payload.get("benchmarks", [])
    }


def emit_snapshot(current: Path, destination: Path) -> None:
    """Write a compact per-bench median snapshot (committed at the repo
    root as ``BENCH_PR<n>.json``, one file per perf-focused PR, so the
    history of intentional perf changes stays greppable)."""
    medians = load_medians(current)
    snapshot = {
        "source": current.name,
        "stat": "median_seconds",
        "benchmarks": {name: medians[name] for name in sorted(medians)},
    }
    destination.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot: {len(medians)} benchmark median(s) -> {destination}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh benchmark JSON to gate")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean > threshold * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.001,
        help="baseline means below this floor are compared against the floor",
    )
    parser.add_argument(
        "--emit-snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write a per-bench median snapshot (e.g. BENCH_PR4.json) "
        "from the current run",
    )
    arguments = parser.parse_args(argv)

    if arguments.emit_snapshot is not None:
        emit_snapshot(arguments.current, arguments.emit_snapshot)

    baseline = load_means(arguments.baseline)
    current = load_means(arguments.current)
    if not baseline:
        print(f"warning: baseline {arguments.baseline} has no benchmarks")
    regressions = []
    for fullname in sorted(baseline):
        if fullname not in current:
            print(f"warning: benchmark missing from current run: {fullname}")
            continue
        reference = max(baseline[fullname], arguments.min_seconds)
        ratio = current[fullname] / reference
        status = "FAIL" if ratio > arguments.threshold else "ok"
        print(
            f"{status:>4}  {ratio:>6.2f}x  "
            f"{baseline[fullname] * 1e3:>9.3f}ms -> {current[fullname] * 1e3:>9.3f}ms  "
            f"{fullname}"
        )
        if ratio > arguments.threshold:
            regressions.append((fullname, ratio))
    for fullname in sorted(set(current) - set(baseline)):
        print(f" new  {'':>7}  {current[fullname] * 1e3:>9.3f}ms  {fullname} (no baseline)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{arguments.threshold}x; see docstring to refresh the baseline "
            "if this slowdown is intentional."
        )
        return 1
    print(f"\nall {len(baseline)} baselined benchmarks within {arguments.threshold}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
