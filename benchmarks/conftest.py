"""Shared benchmark helpers.

Every per-experiment benchmark runs the experiment end-to-end through
``benchmark.pedantic`` (one round — the experiments are deterministic
and some take tens of seconds) and asserts that every check against
the paper passes, so the benchmark suite doubles as the reproduction
gate.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")


def scale_params(full, quick):
    """Parameter sweep for scale benchmarks.

    CI's bench-smoke job sets ``BENCH_QUICK=1`` to run the reduced
    sweep (the regression gate compares only those); local runs get
    the full curve.
    """
    return quick if QUICK else full


def run_and_verify(benchmark, experiment_id: str, rounds: int = 1):
    report = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=rounds, iterations=1
    )
    assert report.passed, report.render()
    return report
