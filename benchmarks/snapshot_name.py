"""Compute the perf-snapshot filename for the current PR.

CI's bench jobs emit a compact median snapshot (see
``check_regression.py --emit-snapshot``) committed at the repo root as
``BENCH_PR<n>.json``.  The ``<n>`` used to be hand-edited into the
workflow env on every perf PR; this script derives it instead:

* ``BENCH_SNAPSHOT`` in the environment wins verbatim (explicit
  override, e.g. to regenerate an old snapshot), otherwise
* scan the repo root for existing ``BENCH_PR<n>.json`` files and print
  ``BENCH_PR<max+1>.json`` — the next free slot — so a fresh perf PR
  never clobbers a committed snapshot.

CI usage (one line per bench job, replacing the workflow-level env)::

    echo "BENCH_SNAPSHOT=$(python benchmarks/snapshot_name.py)" >> "$GITHUB_ENV"

A PR that commits its snapshot mid-review keeps getting the same name
on re-runs: ``--current`` prints the *occupied* top slot instead of
the next free one, and CI prefers it when the file already exists.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from pathlib import Path

# Kept in sync with benchmarks/bench_history.py (self-contained on
# purpose: CI invokes this as a plain script, no PYTHONPATH set up).
SNAPSHOT_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")

ROOT = Path(__file__).resolve().parent.parent


def highest_snapshot(root: Path = ROOT) -> int:
    """The largest ``<n>`` among committed ``BENCH_PR<n>.json``, or 0."""
    numbers = [
        int(match.group(1))
        for path in root.glob("BENCH_PR*.json")
        if (match := SNAPSHOT_PATTERN.match(path.name))
    ]
    return max(numbers, default=0)


def snapshot_name(root: Path = ROOT, *, current: bool = False) -> str:
    override = os.environ.get("BENCH_SNAPSHOT", "")
    if override:
        return override
    top = highest_snapshot(root)
    if current and top:
        return f"BENCH_PR{top}.json"
    return f"BENCH_PR{top + 1}.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=ROOT,
        help="repository root to scan (default: repo root)",
    )
    parser.add_argument(
        "--current",
        action="store_true",
        help="print the highest committed slot instead of the next free one",
    )
    arguments = parser.parse_args(argv)
    print(snapshot_name(arguments.root, current=arguments.current))
    return 0


if __name__ == "__main__":
    sys.exit(main())
