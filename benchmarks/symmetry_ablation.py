"""CI smoke ablation: full vs orbit sweeps must reach equal verdicts.

Runs the bounded checkers over a tiny universe in both symmetry modes
— serially, parallel, and parallel under deterministic fault injection
(``REPRO_FAULT_KILL_TASK``) — and fails loudly when any pair of runs
disagrees.  This is the cheap end-to-end guard for the soundness of
the orbit reduction: whatever else changes in the engine, ``full`` and
``orbits`` must remain observationally identical.

Usage (CI runs both)::

    PYTHONPATH=src python benchmarks/symmetry_ablation.py
    REPRO_FAULT_KILL_TASK=1 PYTHONPATH=src python benchmarks/symmetry_ablation.py --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.catalog import decomposition
from repro.core.framework import (
    SolutionEquivalence,
    subset_property,
    unique_solutions_property,
)
from repro.core.quasi_inverse import quasi_inverse
from repro.core.framework import is_quasi_inverse
from repro.engine.cache import reset_all_caches
from repro.workloads.universes import instance_universe


def _verdicts(mapping, universe, symmetry: str, workers: int) -> dict:
    reset_all_caches()
    equivalence = SolutionEquivalence(mapping)
    subset = subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        stop_at_first_violation=False,
        workers=workers,
        symmetry=symmetry,
    )
    unique_ok, _pairs = unique_solutions_property(
        mapping, universe, workers=workers, symmetry=symmetry
    )
    inverse = is_quasi_inverse(
        mapping,
        quasi_inverse(mapping),
        universe,
        stop_at_first_mismatch=False,
        workers=workers,
        symmetry=symmetry,
    )
    return {
        "subset.holds": subset.holds,
        "subset.coverage": subset.coverage,
        "subset.instances_checked": subset.instances_checked,
        "subset.violations": len(subset.violations),
        "unique.ok": unique_ok,
        "inverse.holds": inverse.holds,
        "inverse.coverage": inverse.coverage,
        "inverse.instances_checked": inverse.instances_checked,
        "inverse.mismatches": len(inverse.mismatches),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes per sweep (0 = serial)",
    )
    parser.add_argument(
        "--domain-size", type=int, default=2, help="constants in the universe"
    )
    arguments = parser.parse_args(argv)

    mapping = decomposition()
    domain = [f"c{index}" for index in range(arguments.domain_size)]
    universe = instance_universe(mapping.source, domain, max_facts=2)
    fault_knobs = {
        knob: value
        for knob, value in os.environ.items()
        if knob.startswith("REPRO_FAULT_")
    }
    print(
        f"symmetry ablation: |universe|={len(universe)} "
        f"workers={arguments.workers} faults={fault_knobs or 'none'}"
    )

    full = _verdicts(mapping, universe, "full", arguments.workers)
    orbits = _verdicts(mapping, universe, "orbits", arguments.workers)

    disagreements = []
    for key, full_value in full.items():
        if key.endswith(".violations") or key.endswith(".mismatches"):
            continue  # orbit sweeps report representatives, not members
        if full_value != orbits[key]:
            disagreements.append(f"{key}: full={full_value} orbits={orbits[key]}")
    for key in sorted(full):
        marker = " " if orbits[key] == full[key] else "!"
        print(f" {marker} {key:<28} full={full[key]!r:<14} orbits={orbits[key]!r}")
    if disagreements:
        print(f"\nFAIL: {len(disagreements)} verdict disagreement(s)")
        return 1
    print("\nOK: full and orbit sweeps agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
