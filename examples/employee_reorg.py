"""Scenario: recovering an HR database after a warehouse migration.

An HR system exports its single wide table

    Emp(name, dept, site)

into a normalized warehouse schema

    Works(name, dept),  Located(dept, site),  Person(name)

via the schema mapping

    Emp(n, d, s) -> Works(n, d) ∧ Located(d, s)
    Emp(n, d, s) -> Person(n)

Later the HR side is lost and must be rebuilt from the warehouse.
The mapping is not invertible (it is a decomposition + projection),
but it is LAV, so by Proposition 3.11 a quasi-inverse exists.  The
script computes one, rebuilds an HR instance, and shows that every
certain answer an analyst could ask of the original is preserved.

Run:  python examples/employee_reorg.py
"""

from repro import Schema, SchemaMapping, quasi_inverse
from repro.datamodel import Instance
from repro.dataexchange import analyze_round_trip, certain_answers, parse_query

hr = Schema.of({"Emp": 3})
warehouse = Schema.of({"Works": 2, "Located": 2, "Person": 1})
migration = SchemaMapping.from_text(
    hr,
    warehouse,
    """
    Emp(n, d, s) -> Works(n, d) & Located(d, s)
    Emp(n, d, s) -> Person(n)
    """,
    name="HR-to-Warehouse",
)

hr_data = Instance.build(
    {
        "Emp": [
            ("alice", "db", "sj"),
            ("bob", "db", "sj"),
            ("carol", "ml", "ny"),
            ("dave", "ml", "zrh"),
        ]
    }
)

print("Original HR instance:")
print(hr_data.pretty(indent="  "))
print()

reverse = quasi_inverse(migration)
print(f"Quasi-inverse ({len(reverse.dependencies)} dependencies), e.g.:")
for dependency in reverse.dependencies[:3]:
    print(f"  {dependency}")
print()

report = analyze_round_trip(migration, reverse, hr_data)
print(f"round trip sound:    {report.sound}")
print(f"round trip faithful: {report.faithful}")
recovered = report.recovered_instance
print()
print("Recovered HR instance (data-exchange equivalent to the original):")
print(recovered.pretty(indent="  "))
print()

# Certain answers agree before and after recovery: any conjunctive
# query an analyst runs through the migration sees the same facts.
queries = [
    parse_query("colleagues(a, b) :- Works(a, d), Works(b, d)"),
    parse_query("site_of(n, s) :- Works(n, d), Located(d, s)"),
    parse_query("people(n) :- Person(n)"),
]
recovered_source = recovered.restrict_to(hr)
for query in queries:
    before = certain_answers(query, migration, hr_data)
    after = certain_answers(query, migration, recovered_source)
    status = "preserved" if before == after else "CHANGED"
    rendered = sorted(tuple(str(v) for v in row) for row in before)
    print(f"{query}:")
    print(f"  {len(before)} certain answers, {status}")
    for row in rendered[:4]:
        print(f"    {row}")
    if len(rendered) > 4:
        print(f"    … {len(rendered) - 4} more")
