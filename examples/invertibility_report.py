"""Batch invertibility analysis of a portfolio of schema mappings.

For every mapping in the paper's catalog, runs all of the library's
invertibility criteria — syntactic classification, the
constant-propagation property (Definition 5.2), the unique-solutions
property and the (∼M,∼M)-subset property over bounded universes —
and prints a verdict table together with the witnesses that certify
the negative verdicts.

Run:  python examples/invertibility_report.py
"""

from repro.analysis import classify_mapping, invertibility_report
from repro.catalog import all_catalog_mappings
from repro.workloads import instance_universe


def main() -> None:
    rows = []
    for mapping in all_catalog_mappings():
        classification = classify_mapping(mapping)
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        report = invertibility_report(mapping, universe)
        rows.append((mapping, classification, report))

    header = (
        f"{'mapping':<14} {'class':<22} {'c-prop':<7} "
        f"{'unique-sol':<11} {'subset(∼,∼)':<12} verdict"
    )
    print(header)
    print("-" * len(header))
    for mapping, classification, report in rows:
        print(
            f"{mapping.name:<14} {classification.describe():<22} "
            f"{str(report.constant_propagation):<7} "
            f"{str(report.unique_solutions):<11} "
            f"{str(report.quasi_subset_property.holds):<12} "
            f"{report.verdict()}"
        )
    print()
    print("Witnesses for the negative verdicts:")
    for mapping, _, report in rows:
        if report.unique_solutions_witness is not None:
            left, right = report.unique_solutions_witness
            print(
                f"  {mapping.name}: distinct instances with equal solution "
                f"spaces: {left} vs {right}"
            )
        for left, right in report.quasi_subset_property.violations:
            print(
                f"  {mapping.name}: subset-property violation (no quasi-"
                f"inverse within the bounded pool): {left} vs {right}"
            )


if __name__ == "__main__":
    main()
