"""Quickstart: compute a quasi-inverse and recover exchanged data.

Builds the paper's Decomposition mapping, computes a quasi-inverse
with the QuasiInverse algorithm, runs the Figure 1 round trip, and
shows the recovered source instance is data-exchange equivalent to
the original.

Run:  python examples/quickstart.py
"""

from repro import Schema, SchemaMapping, quasi_inverse
from repro.core import data_exchange_equivalent
from repro.datamodel import Instance
from repro.dataexchange import analyze_round_trip, recover

# A schema mapping M = (S, T, Sigma): decompose P into Q ⋈ R.
mapping = SchemaMapping.from_text(
    Schema.of({"P": 3}),
    Schema.of({"Q": 2, "R": 2}),
    "P(x, y, z) -> Q(x, y) & R(y, z)",
    name="Decomposition",
)
print(f"M: {mapping}")
print()

# M is not invertible (the paper's Introduction), but QuasiInverse
# computes a quasi-inverse in the disjunctive-tgd language.
reverse = quasi_inverse(mapping)
print("QuasiInverse(M):")
for dependency in reverse.dependencies:
    print(f"  {dependency}")
print()

# Figure 1's ground instance.
source = Instance.build({"P": [("a", "b", "c"), ("a'", "b", "c'")]})
report = analyze_round_trip(mapping, reverse, source)
print(report.trip.pretty())
print()
print(f"sound:    {report.sound}")
print(f"faithful: {report.faithful}")

# Recover a source instance equivalent to the original for data
# exchange: same solution space, hence the same certain answers.
recovered = recover(mapping, reverse, source)
print(f"recovered: {recovered}")
print(
    "data-exchange equivalent to the original:",
    data_exchange_equivalent(mapping, source, recovered.restrict_to(mapping.source))
    if recovered is not None and recovered.is_ground()
    else "(recovered instance has nulls; equivalence is at the chase level)",
)
