"""Scenario: shipping a schema mapping to a SQL warehouse.

A full (GAV-style) schema mapping is exactly an ETL job: this script
renders the Theorem 4.9 mapping as DDL + INSERT…SELECT statements,
executes them against an in-memory SQLite database, and checks the
warehouse tables coincide with the library's own chase.  It then
computes the mapping's inverse with the Inverse algorithm and shows
the inverse's inequality guard as SQL too.

Run:  python examples/sql_export.py
"""

import sqlite3

from repro.catalog import thm_4_9
from repro.core import inverse, universal_solution
from repro.datamodel import Instance
from repro.export import (
    instance_to_inserts,
    mapping_to_sql,
    schema_to_ddl,
    tgd_to_insert_select,
)

mapping = thm_4_9()
source = Instance.build(
    {"P": [("a", "b"), ("c", "c")], "T": [("d",)]}
)

print("-- the mapping as an ETL job ----------------------------------")
print(mapping_to_sql(mapping))
print()

# Execute in ETL order: schemas, source data, then the mapping.
connection = sqlite3.connect(":memory:")
connection.executescript(
    schema_to_ddl(mapping.source)
    + "\n"
    + schema_to_ddl(mapping.target)
    + "\n"
    + instance_to_inserts(source)
    + "\n"
    + "\n".join(tgd_to_insert_select(dep) for dep in mapping.dependencies)
)

chased = universal_solution(mapping, source)
for relation in ("P2", "Q", "T2"):
    rows = sorted(connection.execute(f"SELECT * FROM {relation.lower()}"))
    expected = sorted(
        tuple(str(arg.value) for arg in fact.args)
        for fact in chased.facts_for(relation)
    )
    status = "==" if [tuple(map(str, r)) for r in rows] == expected else "!="
    print(f"{relation}: sqlite {rows} {status} chase {expected}")
print()

print("-- the computed inverse (full tgds with inequalities) ---------")
reverse = inverse(mapping)
for dependency in reverse.dependencies:
    print(f"  {dependency}")
print()
print("as SQL (the inequality becomes <>):")
for dependency in reverse.dependencies:
    print(tgd_to_insert_select(dependency))
