"""Scenario: disjunctive recovery in a data-integration pipeline.

Two upstream feeds — an internal CRM and a purchased contact list —
are unioned into one target relation:

    Crm(email)    -> Contact(email)
    Bought(email) -> Contact(email)

Downstream only `Contact` survives.  The Union mapping has no inverse
(the paper's Introduction), and any quasi-inverse must either commit
(``Contact -> Crm``) or branch: the QuasiInverse algorithm emits the
disjunctive  ``Contact(e) -> Crm(e) ∨ Bought(e)``, and the
*disjunctive chase* then enumerates every consistent way of splitting
the contacts back into feeds — each leaf of the chase tree is one
possible world.

Run:  python examples/union_integration.py
"""

from repro import Schema, SchemaMapping, quasi_inverse
from repro.chase import disjunctive_chase
from repro.datamodel import Instance
from repro.dataexchange import exchange, is_faithful, reverse_exchange

feeds = Schema.of({"Crm": 1, "Bought": 1})
integrated = Schema.of({"Contact": 1})
union = SchemaMapping.from_text(
    feeds,
    integrated,
    "Crm(e) -> Contact(e)\nBought(e) -> Contact(e)",
    name="FeedUnion",
)

source = Instance.build({"Crm": [("ann@x",), ("bo@y",)], "Bought": [("cy@z",)]})
target = exchange(union, source)
print(f"integrated target: {target}")
print()

reverse = quasi_inverse(union)
print("QuasiInverse(FeedUnion):")
for dependency in reverse.dependencies:
    print(f"  {dependency}")
print()

# The disjunctive chase branches once per contact: 2^3 leaves, each a
# possible split of the contacts into the two feeds.
tree = disjunctive_chase(target, reverse.dependencies)
worlds = reverse_exchange(reverse, target)
print(f"chase tree: {tree.node_count} nodes, depth {tree.depth()}, "
      f"{len(worlds)} possible worlds")
for index, world in enumerate(worlds, start=1):
    print(f"  world {index}: {world}")
print()

# Every world is union-equivalent to the original: re-exchanging it
# gives back exactly the integrated target, so the quasi-inverse is
# faithful no matter which branch one picks.
print("faithful:", is_faithful(union, reverse, source))
re_exchanged = {exchange(union, world) for world in worlds}
print(
    "every possible world re-integrates to the same target:",
    re_exchanged == {target},
)
print()

# Queries across the possible worlds: membership in the union is
# certain, but the original feed of each address is only possible.
from repro.dataexchange import parse_query
from repro.dataexchange.worlds import (
    certain_answers_over_worlds,
    possible_answers_over_worlds,
)

crm_query = parse_query("q(e) :- Crm(e)")
print("certain CRM members across worlds:",
      sorted(str(a[0]) for a in certain_answers_over_worlds(crm_query, worlds)))
print("possible CRM members across worlds:",
      sorted(str(a[0]) for a in possible_answers_over_worlds(crm_query, worlds)))
