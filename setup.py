"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 660 editable installs fail; `pip install -e . --no-use-pep517`
uses this file instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Quasi-inverses of Schema Mappings' (PODS 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
