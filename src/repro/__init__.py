"""repro — a full reproduction of "Quasi-inverses of Schema Mappings"
(Fagin, Kolaitis, Popa, Tan — PODS 2007).

The library implements, from scratch:

* the relational data model (constants / labeled nulls / variables,
  instances, schemas) — :mod:`repro.datamodel`;
* the dependency language of Definition 2.1 (s-t tgds through
  disjunctive tgds with constants and inequalities), with a text
  parser — :mod:`repro.dependencies`;
* the chase: homomorphisms, the restricted standard chase, and the
  disjunctive chase of Definitions 6.3/6.4 — :mod:`repro.chase`;
* the paper's contribution: solution-space reasoning, minimal
  generators, the QuasiInverse and Inverse algorithms, the unifying
  (∼1,∼2)-inverse framework, and composition — :mod:`repro.core`;
* data exchange with quasi-inverses: round trips, soundness,
  faithfulness, recovery, and certain answers —
  :mod:`repro.dataexchange`;
* analysis, the catalog of every mapping named in the paper, seeded
  synthetic workloads, and the experiment suite E1–E14 —
  :mod:`repro.analysis`, :mod:`repro.catalog`, :mod:`repro.workloads`,
  :mod:`repro.experiments`.

Quickstart::

    from repro import SchemaMapping, Schema, quasi_inverse
    from repro.dataexchange import recover
    from repro.datamodel import Instance

    decomposition = SchemaMapping.from_text(
        Schema.of({"P": 3}), Schema.of({"Q": 2, "R": 2}),
        "P(x, y, z) -> Q(x, y) & R(y, z)",
    )
    reverse = quasi_inverse(decomposition)
    source = Instance.build({"P": [("a", "b", "c")]})
    recovered = recover(decomposition, reverse, source)
"""

from repro.datamodel import Atom, Constant, Instance, Null, Schema, Variable, atom
from repro.dependencies import (
    Dependency,
    Premise,
    parse_dependencies,
    parse_dependency,
    tgd,
)
from repro.core import (
    SchemaMapping,
    identity_mapping,
    inverse,
    lav_quasi_inverse,
    quasi_inverse,
    universal_solution,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Dependency",
    "Instance",
    "Null",
    "Premise",
    "Schema",
    "SchemaMapping",
    "Variable",
    "atom",
    "identity_mapping",
    "inverse",
    "lav_quasi_inverse",
    "parse_dependencies",
    "parse_dependency",
    "quasi_inverse",
    "tgd",
    "universal_solution",
]
