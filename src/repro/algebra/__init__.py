"""Mapping algebra: expression trees over schema mappings.

The algebra lets sweeps describe *composed* mappings symbolically —
``compose(Union, Decomposition)`` — instead of materializing them
eagerly with MinGen.  A rewrite library normalizes expressions, a
cost model fed by engine counters picks an evaluation strategy per
sweep (materialize, staged chase, or membership checks), and the
resulting reports are byte-identical to the naive materialize-first
path.
"""

from repro.algebra.expr import (
    Compose,
    MappingAtom,
    MappingExpr,
    ParseError,
    Rename,
    Restrict,
    UnionOf,
    parse_expression,
    producible_relations,
    rename_mapping,
    restrict_mapping,
)
from repro.algebra.rewrite import RewriteStep, normalize
from repro.algebra.evaluate import (
    ExpressionPairTest,
    MaterializedPairTest,
    expression_membership,
    materialize,
    pipeline_stages,
    staged_mapping,
)
from repro.algebra.cost import CostEstimate, CostModel
from repro.algebra.plan import (
    PLAN_MODES,
    ExpressionPlan,
    default_plan_mode,
    plan_expression,
    resolve_plan_mode,
)
from repro.algebra.sweeps import AlgebraReport, check_expression

__all__ = [
    "AlgebraReport",
    "Compose",
    "CostEstimate",
    "CostModel",
    "ExpressionPairTest",
    "ExpressionPlan",
    "MappingAtom",
    "MappingExpr",
    "MaterializedPairTest",
    "PLAN_MODES",
    "ParseError",
    "Rename",
    "Restrict",
    "RewriteStep",
    "UnionOf",
    "check_expression",
    "default_plan_mode",
    "expression_membership",
    "materialize",
    "normalize",
    "parse_expression",
    "pipeline_stages",
    "plan_expression",
    "producible_relations",
    "rename_mapping",
    "restrict_mapping",
    "resolve_plan_mode",
    "staged_mapping",
]
