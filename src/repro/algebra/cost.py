"""A cost model for expression evaluation strategies.

Estimates are seconds, assembled from per-operation unit costs times
structural operation counts.  Unit costs are *calibrated*: when the
process's :class:`~repro.engine.instrumentation.EngineStats` already
timed chases, homomorphism checks, MinGen runs, or membership
candidate loops, the observed seconds-per-operation replace the
static defaults — so the planner adapts to the machine and backend
it actually runs on.  Estimates need only rank strategies correctly;
``--explain-plan`` prints them next to measured actuals so drift is
visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.mapping import SchemaMapping
from repro.engine.instrumentation import EngineStats, engine_stats
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    MappingExpr,
    producible_relations,
)

# Static fallback unit costs (seconds per operation), used until the
# engine has observed enough of the corresponding phase to calibrate.
FALLBACK_CHASE_SECONDS = 0.002
FALLBACK_HOM_SECONDS = 0.001
FALLBACK_MINGEN_SECONDS_PER_RULE = 0.05
FALLBACK_MEMBERSHIP_SECONDS_PER_CANDIDATE = 0.0005


@dataclass(frozen=True)
class CostEstimate:
    """One strategy's predicted cost for one sweep."""

    strategy: str
    total: float
    terms: Tuple[Tuple[str, float], ...] = ()
    feasible: bool = True
    note: str = ""

    def render(self) -> str:
        if not self.feasible:
            reason = f" ({self.note})" if self.note else ""
            return f"{self.strategy}: infeasible{reason}"
        detail = ", ".join(
            # "pairs" is a count, every other term is seconds
            f"{name}={value:.3g}" + ("" if name == "pairs" else "s")
            for name, value in self.terms
        )
        suffix = f" [{detail}]" if detail else ""
        note = f" ({self.note})" if self.note else ""
        return f"{self.strategy}: ~{self.total:.3g}s{suffix}{note}"


def _calibrated_rate(
    stats: EngineStats,
    phase: str,
    counter: Optional[str],
    fallback: float,
    minimum_samples: int = 5,
) -> float:
    """Seconds per operation for *phase*, from observed timings.

    When *counter* is given, operations are its named-counter value
    (e.g. rules emitted during ``compose.full``); otherwise the
    phase's call count.  Falls back to the static default until
    enough samples exist.
    """
    phase_stats = stats.phases.get(phase)
    if phase_stats is None or phase_stats.seconds <= 0:
        return fallback
    if counter is not None:
        operations = stats.counter(counter)
    else:
        operations = phase_stats.calls
    if operations < minimum_samples:
        return fallback
    return phase_stats.seconds / operations


@dataclass
class CostModel:
    """Unit costs plus structural estimators.

    Build with :meth:`calibrated` to read the live engine stats, or
    construct directly with explicit rates (tests do).
    """

    chase_seconds: float = FALLBACK_CHASE_SECONDS
    hom_seconds: float = FALLBACK_HOM_SECONDS
    mingen_seconds_per_rule: float = FALLBACK_MINGEN_SECONDS_PER_RULE
    membership_seconds_per_candidate: float = (
        FALLBACK_MEMBERSHIP_SECONDS_PER_CANDIDATE
    )
    calibrations: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def calibrated(cls, stats: Optional[EngineStats] = None) -> "CostModel":
        stats = stats if stats is not None else engine_stats()
        model = cls(
            chase_seconds=_calibrated_rate(
                stats, "chase", None, FALLBACK_CHASE_SECONDS
            ),
            hom_seconds=_calibrated_rate(
                stats, "homomorphism", None, FALLBACK_HOM_SECONDS
            ),
            mingen_seconds_per_rule=_calibrated_rate(
                stats,
                "compose.full",
                "compose_rules_emitted",
                FALLBACK_MINGEN_SECONDS_PER_RULE,
            ),
            membership_seconds_per_candidate=_calibrated_rate(
                stats,
                "compose.membership",
                "membership_candidates_tried",
                FALLBACK_MEMBERSHIP_SECONDS_PER_CANDIDATE,
            ),
        )
        for name, fallback, value in (
            ("chase", FALLBACK_CHASE_SECONDS, model.chase_seconds),
            ("homomorphism", FALLBACK_HOM_SECONDS, model.hom_seconds),
            (
                "mingen",
                FALLBACK_MINGEN_SECONDS_PER_RULE,
                model.mingen_seconds_per_rule,
            ),
            (
                "membership",
                FALLBACK_MEMBERSHIP_SECONDS_PER_CANDIDATE,
                model.membership_seconds_per_candidate,
            ),
        ):
            model.calibrations[name] = (
                "static" if value == fallback else "observed"
            )
        return model

    # -- structural measures -------------------------------------------

    def _mingen_rules_proxy(self, expr: MappingExpr) -> float:
        """Predicted MinGen output size for materializing *expr*.

        For ``compose(a, m)``: MinGen enumerates, per dependency of
        the right operand, minimal generators of its premise — the
        blow-up is roughly the product over premise atoms of how many
        left-side rules can produce that atom, with a ``2^vars``
        factor for variable identification patterns.  Crude, but it
        separates polynomial pipelines from the exponential chain-join
        cases by orders of magnitude, which is all ranking needs.
        """
        if isinstance(expr, MappingAtom):
            return float(len(expr.mapping.dependencies))
        if isinstance(expr, Compose):
            left_rules = self._mingen_rules_proxy(expr.first)
            second = expr.second
            if isinstance(second, MappingAtom):
                total = 0.0
                producible = producible_relations(expr.first)
                for dep in second.mapping.dependencies:
                    if not frozenset(dep.premise_relations()) <= producible:
                        continue
                    generators = 1.0
                    premise_vars = set()
                    for atom in dep.premise.atoms:
                        generators *= max(left_rules, 1.0)
                        premise_vars.update(atom.variables())
                    total += generators * (2.0 ** len(premise_vars))
                return max(total, 1.0)
            return left_rules * self._mingen_rules_proxy(second)
        children = expr.children()
        if not children:
            return 1.0
        return sum(self._mingen_rules_proxy(child) for child in children)

    @staticmethod
    def _stage_count(expr: MappingExpr) -> int:
        count = 1
        current = expr
        while isinstance(current, Compose):
            count += 1
            current = current.second
        return count

    # -- per-strategy estimates ----------------------------------------

    def estimate_materialize(
        self, expr: MappingExpr, universe_size: int, pair_checks: int
    ) -> CostEstimate:
        rules = self._mingen_rules_proxy(expr)
        mingen = rules * self.mingen_seconds_per_rule
        # the materialized mapping has ~rules dependencies; chases and
        # model checks over it scale with that width
        sweep = universe_size * max(rules, 1.0) * self.chase_seconds
        sweep += pair_checks * max(rules, 1.0) * self.hom_seconds
        return CostEstimate(
            strategy="materialize",
            total=mingen + sweep,
            terms=(("mingen", mingen), ("sweep", sweep)),
        )

    def estimate_staged(
        self,
        expr: MappingExpr,
        universe_size: int,
        pair_checks: int,
        staged: Optional[SchemaMapping],
    ) -> CostEstimate:
        if staged is None:
            return CostEstimate(
                strategy="staged",
                total=float("inf"),
                feasible=False,
                note="stages not tgd/full or segment not materializable",
            )
        stages = self._stage_count(expr)
        sweep = universe_size * stages * self.chase_seconds
        sweep += pair_checks * stages * self.hom_seconds
        return CostEstimate(
            strategy="staged",
            total=sweep,
            terms=(("sweep", sweep),),
        )

    def estimate_membership(
        self,
        expr: MappingExpr,
        pair_checks: int,
        candidates_per_pair: float = 8.0,
    ) -> CostEstimate:
        if pair_checks <= 0:
            return CostEstimate(
                strategy="membership",
                total=float("inf"),
                feasible=False,
                note="no pairwise membership checks in this sweep kind",
            )
        if not isinstance(expr, Compose):
            return CostEstimate(
                strategy="membership",
                total=float("inf"),
                feasible=False,
                note="membership evaluation needs a compose at the root",
            )
        per_pair = (
            candidates_per_pair * self.membership_seconds_per_candidate
            + self.chase_seconds
        )
        total = pair_checks * per_pair
        return CostEstimate(
            strategy="membership",
            total=total,
            terms=(("pairs", float(pair_checks)), ("per_pair", per_pair)),
        )
