"""Evaluation strategies for mapping expressions.

Three ways to run an expression, all verdict-equivalent:

* :func:`materialize` — collapse the tree to one concrete
  :class:`~repro.core.mapping.SchemaMapping`, paying MinGen for each
  ``compose`` node.  Exact but exponential in composition width.
* :func:`staged_mapping` — keep the compose spine as a
  :class:`~repro.core.mapping.StagedMapping` pipeline whose universal
  solution chases stage by stage.  Exact for tgd stages with every
  stage but the last full (intermediates are ground, so the staged
  chase is a universal solution of the composition — homomorphically
  equivalent to the materialized chase, hence verdict-identical).
  No MinGen anywhere.
* :func:`expression_membership` — decide one (left, right) pair
  without constructing any composed mapping, via
  [FKPT05]-style candidate intermediates.  What inverse-kind checks
  use in membership mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datamodel.instances import Instance
from repro.core.composition import _candidate_intermediates, compose_full
from repro.core.generators import MinGenConfig
from repro.core.mapping import (
    MappingError,
    SchemaMapping,
    StagedMapping,
    is_solution,
)
from repro.engine.cache import register_reset_hook
from repro.engine.instrumentation import engine_stats
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    MappingExpr,
    Rename,
    Restrict,
    UnionOf,
    rename_mapping,
    restrict_mapping,
)

_MATERIALIZE_MEMO: Dict[Tuple, SchemaMapping] = {}


def _clear_materialize_memo() -> None:
    _MATERIALIZE_MEMO.clear()


register_reset_hook(_clear_materialize_memo)


def materialize(
    expr: MappingExpr, *, mingen_config: Optional[MinGenConfig] = None
) -> SchemaMapping:
    """Collapse *expr* into one concrete mapping.

    ``compose`` nodes run MinGen (:func:`compose_full`); ``union``
    nodes concatenate constraint sets; ``restrict``/``rename`` apply
    relation surgery.  Results are memoized by content key, so
    repeated sweeps over the same expression pay MinGen once.
    """
    key = expr.key()
    cached = _MATERIALIZE_MEMO.get(key)
    if cached is not None:
        return cached
    stats = engine_stats()
    with stats.phase("algebra.materialize"):
        result = _materialize(expr, mingen_config)
    _MATERIALIZE_MEMO[key] = result
    return result


def _materialize(
    expr: MappingExpr, mingen_config: Optional[MinGenConfig]
) -> SchemaMapping:
    if isinstance(expr, MappingAtom):
        return expr.mapping
    if isinstance(expr, Compose):
        first = materialize(expr.first, mingen_config=mingen_config)
        second = materialize(expr.second, mingen_config=mingen_config)
        return compose_full(first, second, mingen_config=mingen_config)
    if isinstance(expr, UnionOf):
        left = materialize(expr.left, mingen_config=mingen_config)
        right = materialize(expr.right, mingen_config=mingen_config)
        name = ""
        if left.name and right.name:
            name = f"{left.name}∪{right.name}"
        return SchemaMapping(
            source=left.source,
            target=left.target,
            dependencies=tuple(left.dependencies) + tuple(right.dependencies),
            name=name,
        )
    if isinstance(expr, Restrict):
        child = materialize(expr.child, mingen_config=mingen_config)
        return restrict_mapping(child, expr.relations)
    if isinstance(expr, Rename):
        child = materialize(expr.child, mingen_config=mingen_config)
        return rename_mapping(child, dict(expr.renaming))
    raise MappingError(f"cannot materialize {type(expr).__name__}")


# -- staged evaluation --------------------------------------------------


def pipeline_stages(expr: MappingExpr) -> Optional[List[SchemaMapping]]:
    """Flatten *expr*'s compose spine into materialized segments.

    Walks the right-nested spine ``compose(a, compose(b, c))`` into
    ``[a, b, c]``, materializing each segment (segments themselves
    contain no ``compose``, so no MinGen runs unless a rewrite left
    one inside — then that segment still materializes).  Returns
    ``None`` when some segment cannot be materialized.
    """
    segments: List[SchemaMapping] = []
    current = expr
    while isinstance(current, Compose):
        try:
            segments.append(materialize(current.first))
        except MappingError:
            return None
        current = current.second
    try:
        segments.append(materialize(current))
    except MappingError:
        return None
    return segments


def staged_mapping(expr: MappingExpr) -> Optional[SchemaMapping]:
    """Build the staged evaluation pipeline for *expr*.

    A single-segment spine is returned as the plain materialized
    mapping.  Longer spines become a :class:`StagedMapping`, whose
    constructor enforces the exactness conditions (tgd stages,
    all-but-last full); when they fail — or a segment refuses to
    materialize — the strategy is infeasible and ``None`` is
    returned.
    """
    segments = pipeline_stages(expr)
    if segments is None:
        return None
    if len(segments) == 1:
        return segments[0]
    names = [stage.name or "?" for stage in segments]
    try:
        return StagedMapping(
            source=segments[0].source,
            target=segments[-1].target,
            dependencies=(),
            stages=tuple(segments),
            name="∘".join(names),
        )
    except MappingError:
        return None


# -- membership evaluation ----------------------------------------------


def _tgd_evaluable(expr: MappingExpr) -> SchemaMapping:
    """A tgd mapping denoting *expr*, for chase-based candidate
    enumeration — staged when possible, else materialized."""
    staged = staged_mapping(expr)
    if staged is not None and staged.is_tgd_mapping():
        return staged
    concrete = materialize(expr)
    if not concrete.is_tgd_mapping():
        raise MappingError(
            "membership evaluation needs a tgd prefix to chase"
        )
    return concrete


def expression_membership(
    expr: MappingExpr,
    left: Instance,
    right: Instance,
    *,
    max_nulls: int = 7,
) -> bool:
    """Decide (left, right) ∈ Inst(expr) without materializing the
    whole expression.

    ``compose`` nodes enumerate candidate intermediates of the first
    leg and recurse on the second; ``union`` nodes are conjunctions
    of their operands' memberships (Inst of a union of constraint
    sets is the intersection); everything else falls back to a model
    check against the materialized mapping.
    """
    if isinstance(expr, Compose):
        first = _tgd_evaluable(expr.first)
        stats = engine_stats()
        with stats.phase("compose.membership"):
            for candidate in _candidate_intermediates(
                first, left, right, max_nulls
            ):
                stats.bump("membership_candidates_tried")
                if expression_membership(
                    expr.second, candidate, right, max_nulls=max_nulls
                ):
                    return True
        return False
    if isinstance(expr, UnionOf):
        return expression_membership(
            expr.left, left, right, max_nulls=max_nulls
        ) and expression_membership(
            expr.right, left, right, max_nulls=max_nulls
        )
    if isinstance(expr, MappingAtom):
        return is_solution(expr.mapping, left, right)
    return is_solution(materialize(expr), left, right)


# -- composition tests for inverse-kind sweeps --------------------------


@dataclass(frozen=True)
class MaterializedPairTest:
    """Composition test using one materialized composed mapping.

    Checks (left, right) against ``Inst(mapping ∘ candidate)`` the
    paper's way: membership through the concrete composition the
    caller materialized up front.  Picklable, so parallel inverse
    sweeps ship it to workers.
    """

    composed: SchemaMapping

    def __call__(
        self,
        mapping: SchemaMapping,
        candidate: SchemaMapping,
        left: Instance,
        right: Instance,
        max_nulls: int,
    ) -> bool:
        return is_solution(self.composed, left, right)


@dataclass(frozen=True)
class ExpressionPairTest:
    """Composition test that runs :func:`expression_membership`.

    No composed mapping is ever constructed; each pair pays candidate
    enumeration instead of the sweep paying MinGen once.  Picklable
    for parallel sweeps.
    """

    expr: MappingExpr

    def __call__(
        self,
        mapping: SchemaMapping,
        candidate: SchemaMapping,
        left: Instance,
        right: Instance,
        max_nulls: int,
    ) -> bool:
        return expression_membership(
            self.expr, left, right, max_nulls=max_nulls
        )
