"""Expression trees of mapping operators.

An expression denotes a schema mapping built from named atoms with
``compose`` (sequential composition, [FKPT05]-style), ``union``
(union of constraint sets over shared schemas), ``restrict``
(projection of the target schema onto a subset of its relations) and
``rename`` (isomorphic renaming of target relations).  Expressions
are *symbolic*: nothing is chased or composed at construction time.
The evaluator (:mod:`repro.algebra.evaluate`) decides how to run one,
and the rewrite library (:mod:`repro.algebra.rewrite`) normalizes it
first.

Expression labels round-trip through :func:`parse_expression`, which
is also the grammar the CLI and service accept::

    expr    := NAME
             | "compose" "(" expr "," expr {"," expr} ")"
             | "union" "(" expr "," expr ")"
             | "restrict" "(" expr "," NAME {"," NAME} ")"
             | "rename" "(" expr "," NAME "=" NAME {"," NAME "=" NAME} ")"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.schemas import Schema
from repro.dependencies.dependency import Dependency
from repro.core.mapping import MappingError, SchemaMapping
from repro.engine.cache import mapping_key
from repro.errors import ParseError

_OPERATORS = ("compose", "union", "restrict", "rename")


@dataclass(frozen=True)
class MappingExpr:
    """Base class for algebra expression nodes.

    Every node derives ``source`` and ``target`` schemas at
    construction time (schema errors surface before any evaluation)
    and exposes a re-parsable :meth:`label`, a content-addressed
    :meth:`key` for caching, and its :meth:`children`.
    """

    source: Schema = field(init=False, compare=False)
    target: Schema = field(init=False, compare=False)

    def label(self) -> str:
        raise NotImplementedError

    def key(self) -> Tuple:
        raise NotImplementedError

    def children(self) -> Tuple["MappingExpr", ...]:
        return ()

    def __str__(self) -> str:
        return self.label()


@dataclass(frozen=True)
class MappingAtom(MappingExpr):
    """A leaf: one concrete schema mapping."""

    mapping: SchemaMapping = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mapping is None:
            raise MappingError("a mapping atom needs a mapping")
        object.__setattr__(self, "source", self.mapping.source)
        object.__setattr__(self, "target", self.mapping.target)

    def label(self) -> str:
        return self.mapping.name or "<inline>"

    def key(self) -> Tuple:
        return ("atom", mapping_key(self.mapping))

    def children(self) -> Tuple[MappingExpr, ...]:
        return ()


@dataclass(frozen=True)
class Compose(MappingExpr):
    """Sequential composition: first, then second."""

    first: MappingExpr = None  # type: ignore[assignment]
    second: MappingExpr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.first is None or self.second is None:
            raise MappingError("compose needs two subexpressions")
        if self.first.target.relations != self.second.source.relations:
            raise MappingError(
                f"compose middle schemas differ: {self.first.target} "
                f"vs {self.second.source}"
            )
        object.__setattr__(self, "source", self.first.source)
        object.__setattr__(self, "target", self.second.target)

    def label(self) -> str:
        return f"compose({self.first.label()}, {self.second.label()})"

    def key(self) -> Tuple:
        return ("compose", self.first.key(), self.second.key())

    def children(self) -> Tuple[MappingExpr, ...]:
        return (self.first, self.second)


@dataclass(frozen=True)
class UnionOf(MappingExpr):
    """Union of constraint sets over identical source/target schemas.

    Solutions of the union are exactly the common solutions of both
    operands (an instance pair satisfies Sigma_1 ∪ Sigma_2 iff it
    satisfies each), so membership checks distribute over it.
    """

    left: MappingExpr = None  # type: ignore[assignment]
    right: MappingExpr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise MappingError("union needs two subexpressions")
        if self.left.source != self.right.source:
            raise MappingError(
                f"union source schemas differ: {self.left.source} "
                f"vs {self.right.source}"
            )
        if self.left.target != self.right.target:
            raise MappingError(
                f"union target schemas differ: {self.left.target} "
                f"vs {self.right.target}"
            )
        object.__setattr__(self, "source", self.left.source)
        object.__setattr__(self, "target", self.left.target)

    def label(self) -> str:
        return f"union({self.left.label()}, {self.right.label()})"

    def key(self) -> Tuple:
        return ("union", self.left.key(), self.right.key())

    def children(self) -> Tuple[MappingExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Restrict(MappingExpr):
    """Restrict the target schema to a subset of its relations."""

    child: MappingExpr = None  # type: ignore[assignment]
    relations: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.child is None:
            raise MappingError("restrict needs a subexpression")
        keep = tuple(sorted(set(self.relations)))
        object.__setattr__(self, "relations", keep)
        if not keep:
            raise MappingError("restrict needs at least one relation to keep")
        names = set(self.child.target.names())
        missing = [name for name in keep if name not in names]
        if missing:
            raise MappingError(
                f"restrict keeps {missing} not in target {self.child.target}"
            )
        target = Schema.of(
            [
                (name, arity)
                for name, arity in self.child.target.relations
                if name in keep
            ]
        )
        object.__setattr__(self, "source", self.child.source)
        object.__setattr__(self, "target", target)

    def label(self) -> str:
        keeps = ", ".join(self.relations)
        return f"restrict({self.child.label()}, {keeps})"

    def key(self) -> Tuple:
        return ("restrict", self.child.key(), self.relations)

    def children(self) -> Tuple[MappingExpr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Rename(MappingExpr):
    """Isomorphic renaming of target relations (old -> new)."""

    child: MappingExpr = None  # type: ignore[assignment]
    renaming: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.child is None:
            raise MappingError("rename needs a subexpression")
        pairs = tuple(sorted(set(self.renaming)))
        object.__setattr__(self, "renaming", pairs)
        if not pairs:
            raise MappingError("rename needs at least one old=new pair")
        olds = [old for old, _ in pairs]
        if len(set(olds)) != len(olds):
            raise MappingError("rename maps a relation twice")
        names = set(self.child.target.names())
        missing = [old for old in olds if old not in names]
        if missing:
            raise MappingError(
                f"rename of {missing} not in target {self.child.target}"
            )
        mapped = dict(pairs)
        renamed = [mapped.get(name, name) for name in self.child.target.names()]
        if len(set(renamed)) != len(renamed):
            raise MappingError("rename collides target relation names")
        target = Schema.of(
            [
                (mapped.get(name, name), arity)
                for name, arity in self.child.target.relations
            ]
        )
        object.__setattr__(self, "source", self.child.source)
        object.__setattr__(self, "target", target)

    def label(self) -> str:
        pairs = ", ".join(f"{old}={new}" for old, new in self.renaming)
        return f"rename({self.child.label()}, {pairs})"

    def key(self) -> Tuple:
        return ("rename", self.child.key(), self.renaming)

    def children(self) -> Tuple[MappingExpr, ...]:
        return (self.child,)


# -- mapping surgery ----------------------------------------------------


def rename_mapping(
    mapping: SchemaMapping, renaming: Mapping[str, str]
) -> SchemaMapping:
    """Rename target relations of a concrete mapping.

    Renaming is an isomorphism of the target schema, so solutions of
    the renamed mapping are exactly the renamed solutions of the
    original — every verdict transfers verbatim.
    """
    mapped = dict(renaming)
    target = Schema.of(
        [
            (mapped.get(name, name), arity)
            for name, arity in mapping.target.relations
        ]
    )

    def rename_disjunct(disjunct: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
        return tuple(
            Atom(mapped.get(current.relation, current.relation), current.args)
            for current in disjunct
        )

    dependencies = tuple(
        Dependency(
            dep.premise,
            tuple(rename_disjunct(disjunct) for disjunct in dep.disjuncts),
        )
        for dep in mapping.dependencies
    )
    pairs = ",".join(f"{old}->{new}" for old, new in sorted(mapped.items()))
    return SchemaMapping(
        source=mapping.source,
        target=target,
        dependencies=dependencies,
        name=f"ρ[{pairs}]({mapping.name})" if mapping.name else "",
    )


def restrict_mapping(
    mapping: SchemaMapping, keep: Iterable[str]
) -> SchemaMapping:
    """Restrict a concrete mapping's target schema to *keep*.

    Semantics are solution projection: (I, J) satisfies the
    restriction iff J extends to a solution of *mapping* over the
    full target.  For a tgd, pruning the conclusion atoms in dropped
    relations is exact — any assignment satisfying the kept atoms
    extends by adding the dropped facts it needs, since dropped
    relations are unconstrained.  A disjunct that prunes to nothing
    makes its dependency vacuous, so the dependency is dropped whole.
    The one inexact case is a dropped relation that is also a source
    relation (its facts could feed other premises through a chase
    cascade); :class:`MappingError` signals the rule does not apply
    there.
    """
    kept = frozenset(keep)
    source_names = frozenset(mapping.source.names())
    dependencies = []
    for dep in mapping.dependencies:
        conclusions = frozenset(dep.conclusion_relations())
        dropped = conclusions - kept
        if not dropped:
            dependencies.append(dep)
            continue
        if dropped & source_names:
            raise MappingError(
                f"restrict drops source-named relations "
                f"{sorted(dropped & source_names)}; a chase cascade could "
                f"feed the kept relations, so restrict is not exact here"
            )
        pruned_disjuncts = []
        vacuous = False
        for disjunct in dep.disjuncts:
            pruned = tuple(
                current for current in disjunct if current.relation in kept
            )
            if not pruned:
                vacuous = True
                break
            pruned_disjuncts.append(pruned)
        if vacuous:
            continue
        dependencies.append(Dependency(dep.premise, tuple(pruned_disjuncts)))
    target = Schema.of(
        [
            (name, arity)
            for name, arity in mapping.target.relations
            if name in kept
        ]
    )
    keeps = ",".join(sorted(kept))
    return SchemaMapping(
        source=mapping.source,
        target=target,
        dependencies=tuple(dependencies),
        name=f"π[{keeps}]({mapping.name})" if mapping.name else "",
    )


# -- classification -----------------------------------------------------


def expr_is_tgd(expr: MappingExpr) -> bool:
    """Conservatively: every leaf mapping is specified by tgds."""
    if isinstance(expr, MappingAtom):
        return expr.mapping.is_tgd_mapping()
    return all(expr_is_tgd(child) for child in expr.children())


def expr_is_full(expr: MappingExpr) -> bool:
    """Conservatively: every leaf mapping is full."""
    if isinstance(expr, MappingAtom):
        return expr.mapping.is_full()
    return all(expr_is_full(child) for child in expr.children())


def materializable(expr: MappingExpr) -> bool:
    """Whether MinGen composition can materialize the expression.

    Composition requires a full-tgd left operand and a tgd right
    operand at every ``compose`` node ([FKPT05]'s exactness regime).
    Structural only — restrict surgery can still refuse at
    materialization time.
    """
    if isinstance(expr, MappingAtom):
        return True
    if isinstance(expr, Compose):
        return (
            materializable(expr.first)
            and materializable(expr.second)
            and expr_is_tgd(expr.first)
            and expr_is_full(expr.first)
            and expr_is_tgd(expr.second)
        )
    return all(materializable(child) for child in expr.children())


def producible_relations(expr: MappingExpr) -> FrozenSet[str]:
    """Over-approximate the target relations an expression can populate.

    Used by dead-branch pruning: a dependency whose premise mentions
    a relation outside this set can never fire on any chase result of
    the upstream expression.  Over-approximation keeps pruning sound.
    """
    if isinstance(expr, MappingAtom):
        mapping = expr.mapping
        shared = frozenset(mapping.source.names()) & frozenset(
            mapping.target.names()
        )
        relations = set(shared)
        for dep in mapping.dependencies:
            relations |= set(dep.conclusion_relations())
        return frozenset(relations)
    if isinstance(expr, Compose):
        available = producible_relations(expr.first)
        second = expr.second
        if isinstance(second, MappingAtom):
            mapping = second.mapping
            relations = set(available & frozenset(mapping.target.names()))
            for dep in mapping.dependencies:
                if frozenset(dep.premise_relations()) <= available:
                    relations |= set(dep.conclusion_relations())
            return frozenset(relations)
        return producible_relations(second)
    if isinstance(expr, UnionOf):
        return producible_relations(expr.left) | producible_relations(
            expr.right
        )
    if isinstance(expr, Restrict):
        return producible_relations(expr.child) & frozenset(expr.relations)
    if isinstance(expr, Rename):
        mapped = dict(expr.renaming)
        return frozenset(
            mapped.get(name, name)
            for name in producible_relations(expr.child)
        )
    raise MappingError(f"unknown expression node {type(expr).__name__}")


# -- parsing ------------------------------------------------------------

_PUNCT = "(),="


def _tokenize(text: str):
    tokens = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCT:
            tokens.append(char)
            index += 1
            continue
        start = index
        while (
            index < len(text)
            and not text[index].isspace()
            and text[index] not in _PUNCT
        ):
            index += 1
        tokens.append(text[start:index])
    return tokens


def default_resolver() -> Dict[str, SchemaMapping]:
    """Catalog mappings plus the paper's named (quasi-)inverses."""
    from repro.catalog.mappings import (
        all_catalog_mappings,
        decomposition_quasi_inverse_join,
        decomposition_quasi_inverse_split,
        projection_quasi_inverse,
        thm_4_8_inverse,
        union_quasi_inverse,
    )

    table = {mapping.name: mapping for mapping in all_catalog_mappings()}
    for extra in (
        projection_quasi_inverse(),
        union_quasi_inverse(),
        decomposition_quasi_inverse_join(),
        decomposition_quasi_inverse_split(),
        thm_4_8_inverse(),
    ):
        table[extra.name] = extra
    return table


class _Parser:
    def __init__(self, tokens, resolve: Callable[[str], SchemaMapping]):
        self.tokens = tokens
        self.position = 0
        self.resolve = resolve

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, wanted: str) -> None:
        token = self.take()
        if token != wanted:
            raise ParseError(f"expected {wanted!r}, found {token!r}")

    def name(self) -> str:
        token = self.take()
        if token in _PUNCT:
            raise ParseError(f"expected a name, found {token!r}")
        return token

    def expression(self) -> MappingExpr:
        token = self.name()
        if token in _OPERATORS and self.peek() == "(":
            return self.operator(token)
        return MappingAtom(mapping=self.resolve(token))

    def operator(self, which: str) -> MappingExpr:
        self.expect("(")
        if which == "compose":
            operands = [self.expression()]
            while self.peek() == ",":
                self.take()
                operands.append(self.expression())
            self.expect(")")
            if len(operands) < 2:
                raise ParseError("compose needs at least two operands")
            result = operands[-1]
            for operand in reversed(operands[:-1]):
                result = Compose(first=operand, second=result)
            return result
        if which == "union":
            left = self.expression()
            self.expect(",")
            right = self.expression()
            self.expect(")")
            return UnionOf(left=left, right=right)
        if which == "restrict":
            child = self.expression()
            keeps = []
            while self.peek() == ",":
                self.take()
                keeps.append(self.name())
            self.expect(")")
            return Restrict(child=child, relations=tuple(keeps))
        if which == "rename":
            child = self.expression()
            pairs = []
            while self.peek() == ",":
                self.take()
                old = self.name()
                self.expect("=")
                new = self.name()
                pairs.append((old, new))
            self.expect(")")
            return Rename(child=child, renaming=tuple(pairs))
        raise ParseError(f"unknown operator {which!r}")


def parse_expression(
    text: str,
    resolver: Optional[Mapping[str, SchemaMapping]] = None,
) -> MappingExpr:
    """Parse expression *text* against a name -> mapping table.

    The default table holds every catalog mapping plus the paper's
    named (quasi-)inverses (``Projection'``, ``Union'``, ...).
    :class:`ParseError` flags bad syntax; :class:`MappingError` flags
    unknown names and schema mismatches.
    """
    table = dict(resolver) if resolver is not None else default_resolver()

    def resolve(name: str) -> SchemaMapping:
        try:
            return table[name]
        except KeyError:
            known = ", ".join(sorted(table))
            raise MappingError(
                f"unknown mapping {name!r}; known names: {known}"
            ) from None

    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    parser = _Parser(tokens, resolve)
    expr = parser.expression()
    if parser.peek() is not None:
        raise ParseError(f"trailing input at {parser.peek()!r}")
    return expr
