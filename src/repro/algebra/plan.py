"""Plan selection: which evaluation strategy runs a sweep.

A plan mode is a *preference*:

* ``materialize`` — always collapse the expression with MinGen first
  (the naive baseline the benchmarks gate against);
* ``membership`` — avoid materializing: staged pipelines for sweep
  kinds, per-pair membership checks for inverse kinds;
* ``auto`` — let the calibrated cost model pick the cheapest
  feasible strategy.

An infeasible preferred strategy falls back to a feasible one with a
note in the plan (verdicts must never depend on the plan mode, so
falling back is always safe).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.mapping import MappingError
from repro.engine.instrumentation import engine_stats
from repro.algebra.cost import CostEstimate, CostModel
from repro.algebra.evaluate import staged_mapping
from repro.algebra.expr import Compose, MappingExpr, materializable
from repro.algebra.rewrite import RewriteStep

PLAN_MODES = ("auto", "materialize", "membership")

# sweep kinds check whole universes against one mapping; the inverse
# kind checks (left, right) pairs for composition membership
SWEEP_KINDS = ("unique", "subset", "invertibility")
PAIR_KINDS = ("inverse",)


def default_plan_mode() -> str:
    """The ambient plan mode (``REPRO_PLAN``, default ``auto``)."""
    return os.environ.get("REPRO_PLAN", "auto")


def resolve_plan_mode(mode: Optional[str]) -> str:
    resolved = mode if mode is not None else default_plan_mode()
    if resolved not in PLAN_MODES:
        raise MappingError(
            f"unknown plan mode {resolved!r}; expected one of {PLAN_MODES}"
        )
    return resolved


@dataclass(frozen=True)
class ExpressionPlan:
    """The chosen evaluation strategy for one sweep, with its evidence."""

    mode: str
    strategy: str
    kind: str
    expression: str
    normalized: str
    rewrite_trace: Tuple[RewriteStep, ...] = ()
    estimates: Tuple[CostEstimate, ...] = ()
    notes: Tuple[str, ...] = ()

    @property
    def chosen(self) -> Optional[CostEstimate]:
        for estimate in self.estimates:
            if estimate.strategy == self.strategy:
                return estimate
        return None

    def explain(self, actuals: Optional[Dict[str, float]] = None) -> str:
        lines = [
            f"plan: mode={self.mode} strategy={self.strategy} kind={self.kind}",
            f"  expression: {self.expression}",
        ]
        if self.normalized != self.expression:
            lines.append(f"  normalized: {self.normalized}")
        if self.rewrite_trace:
            lines.append("  rewrites:")
            for step in self.rewrite_trace:
                lines.append(f"    {step}")
        else:
            lines.append("  rewrites: (none applied)")
        lines.append("  estimates:")
        for estimate in self.estimates:
            marker = "*" if estimate.strategy == self.strategy else " "
            lines.append(f"  {marker} {estimate.render()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if actuals:
            rendered = ", ".join(
                f"{name}={value:.3g}" for name, value in sorted(actuals.items())
            )
            lines.append(f"  actuals: {rendered}")
        return "\n".join(lines)


def plan_expression(
    expr: MappingExpr,
    kind: str,
    *,
    mode: Optional[str] = None,
    universe_size: int = 0,
    pair_checks: int = 0,
    normalized_label: Optional[str] = None,
    rewrite_trace: Tuple[RewriteStep, ...] = (),
    model: Optional[CostModel] = None,
) -> ExpressionPlan:
    """Pick the evaluation strategy for *expr* under *kind*.

    *universe_size* and *pair_checks* size the cost estimates (pair
    checks are membership tests the sweep will run — zero for sweep
    kinds).  The chosen strategy bumps an ``algebra_plan_<strategy>``
    engine counter so ``--engine-stats`` shows what the planner did.
    """
    resolved = resolve_plan_mode(mode)
    if kind not in SWEEP_KINDS + PAIR_KINDS:
        raise MappingError(
            f"unknown check kind {kind!r}; expected one of "
            f"{SWEEP_KINDS + PAIR_KINDS}"
        )
    model = model if model is not None else CostModel.calibrated()
    staged = staged_mapping(expr)
    notes = []

    if materializable(expr):
        estimate_materialize = model.estimate_materialize(
            expr, universe_size, pair_checks
        )
    else:
        estimate_materialize = CostEstimate(
            strategy="materialize",
            total=float("inf"),
            feasible=False,
            note="not materializable (a compose operand is not a tgd"
            " mapping, or the first leg is not full)",
        )
    if kind in SWEEP_KINDS:
        estimates = (
            estimate_materialize,
            model.estimate_staged(expr, universe_size, pair_checks, staged),
        )
        preferred_by_mode = {"materialize": "materialize", "membership": "staged"}
    else:
        estimates = (
            estimate_materialize,
            model.estimate_membership(expr, pair_checks),
        )
        preferred_by_mode = {
            "materialize": "materialize",
            "membership": "membership",
        }

    feasible = [e for e in estimates if e.feasible]
    if not feasible:
        raise MappingError(
            f"no feasible evaluation strategy for {expr.label()!r}"
        )

    if resolved == "auto":
        strategy = min(feasible, key=lambda e: e.total).strategy
        if not isinstance(expr, Compose) and strategy != "materialize":
            # nothing to avoid materializing without a composition
            strategy = "materialize"
            notes.append("no compose node; materialize is free")
    else:
        preferred = preferred_by_mode[resolved]
        available = {e.strategy for e in feasible}
        if preferred in available:
            strategy = preferred
        else:
            strategy = min(feasible, key=lambda e: e.total).strategy
            reason = next(
                (e.note for e in estimates if e.strategy == preferred), ""
            )
            notes.append(
                f"preferred strategy {preferred!r} infeasible"
                + (f" ({reason})" if reason else "")
                + f"; falling back to {strategy!r}"
            )

    engine_stats().bump(f"algebra_plan_{strategy}")
    return ExpressionPlan(
        mode=resolved,
        strategy=strategy,
        kind=kind,
        expression=expr.label(),
        normalized=normalized_label
        if normalized_label is not None
        else expr.label(),
        rewrite_trace=tuple(rewrite_trace),
        estimates=estimates,
        notes=tuple(notes),
    )


# re-exported for tests that construct plans directly
__all__ = [
    "ExpressionPlan",
    "PLAN_MODES",
    "PAIR_KINDS",
    "SWEEP_KINDS",
    "default_plan_mode",
    "plan_expression",
    "resolve_plan_mode",
]
