"""Equivalence-preserving rewrites over mapping expressions.

Every rule preserves the bounded-sweep verdicts of the expression it
rewrites: the denoted mapping before and after has the same solution
relation over every ground source instance, so unique-solutions,
subset-property, and inverse checks are unchanged (the property suite
in ``tests/properties/test_algebra_equivalence.py`` enforces this
pair by pair).

:func:`normalize` drives the rules to a fixpoint post-order and
returns the rewrite trace; ``--explain-plan`` surfaces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mapping import MappingError
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    MappingExpr,
    Rename,
    Restrict,
    UnionOf,
    expr_is_full,
    expr_is_tgd,
    producible_relations,
    rename_mapping,
    restrict_mapping,
)


@dataclass(frozen=True)
class RewriteStep:
    """One applied rule, with before/after labels for the trace."""

    rule: str
    before: str
    after: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.before} => {self.after}"


# -- individual rules ---------------------------------------------------
#
# Each rule takes an expression and returns the rewritten expression,
# or None when it does not apply.  Rules only fire when they are
# exact; conditional rules (full-tgd gates, restrict surgery) refuse
# rather than approximate.


def _assoc_right(expr: MappingExpr) -> Optional[MappingExpr]:
    """compose(compose(a, b), c) -> compose(a, compose(b, c)).

    Composition of binary relations is associative, so the denoted
    mapping is unchanged; right-nesting exposes the pipeline spine
    the staged evaluator consumes.
    """
    if isinstance(expr, Compose) and isinstance(expr.first, Compose):
        inner = expr.first
        return Compose(
            first=inner.first,
            second=Compose(first=inner.second, second=expr.second),
        )
    return None


def _factor_compose_over_union(expr: MappingExpr) -> Optional[MappingExpr]:
    """union(compose(a, b), compose(a, c)) -> compose(a, union(b, c)).

    Exact when ``a`` is a full tgd mapping: its chase result is the
    unique minimal solution, and composing with the union of two
    constraint sets then constrains that one intermediate by both —
    the same pairs as intersecting the two compositions.  The shared
    head is recognized by content key, so equal-content atoms factor
    even when they are distinct objects.
    """
    if not isinstance(expr, UnionOf):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, Compose) and isinstance(right, Compose)):
        return None
    if left.first.key() != right.first.key():
        return None
    if not (expr_is_tgd(left.first) and expr_is_full(left.first)):
        return None
    try:
        return Compose(
            first=left.first,
            second=UnionOf(left=left.second, right=right.second),
        )
    except MappingError:
        return None


def distribute_compose_over_union(expr: MappingExpr) -> Optional[MappingExpr]:
    """compose(a, union(b, c)) -> union(compose(a, b), compose(a, c)).

    The inverse of factoring, under the same full-tgd gate on ``a``.
    Not part of :func:`normalize` (it would fight the factoring rule);
    exposed for callers that want membership checks to distribute.
    """
    if not isinstance(expr, Compose):
        return None
    if not isinstance(expr.second, UnionOf):
        return None
    if not (expr_is_tgd(expr.first) and expr_is_full(expr.first)):
        return None
    return UnionOf(
        left=Compose(first=expr.first, second=expr.second.left),
        right=Compose(first=expr.first, second=expr.second.right),
    )


def _rename_fuse(expr: MappingExpr) -> Optional[MappingExpr]:
    """Collapse nested renames; drop identity renames."""
    if not isinstance(expr, Rename):
        return None
    if isinstance(expr.child, Rename):
        inner = dict(expr.child.renaming)
        outer = dict(expr.renaming)
        fused = {}
        for old, new in inner.items():
            fused[old] = outer.pop(new, new)
        fused.update(outer)
        effective = tuple(
            (old, new) for old, new in sorted(fused.items()) if old != new
        )
        if not effective:
            return expr.child.child
        return Rename(child=expr.child.child, renaming=effective)
    if all(old == new for old, new in expr.renaming):
        return expr.child
    return None


def _rename_pushdown(expr: MappingExpr) -> Optional[MappingExpr]:
    """Push a rename through union / into the second leg of a compose,
    and absorb it into a leaf by relation surgery.

    Renaming only touches target relations, so it commutes with any
    operator whose target is assembled from its operands' targets.
    """
    if not isinstance(expr, Rename):
        return None
    child = expr.child
    if isinstance(child, UnionOf):
        return UnionOf(
            left=Rename(child=child.left, renaming=expr.renaming),
            right=Rename(child=child.right, renaming=expr.renaming),
        )
    if isinstance(child, Compose):
        return Compose(
            first=child.first,
            second=Rename(child=child.second, renaming=expr.renaming),
        )
    if isinstance(child, MappingAtom):
        return MappingAtom(
            mapping=rename_mapping(child.mapping, dict(expr.renaming))
        )
    return None


def _restrict_pushdown(expr: MappingExpr) -> Optional[MappingExpr]:
    """Collapse nested restricts, drop full-schema restricts, push
    through union / into the second leg of a compose, and absorb into
    a leaf when the surgery is exact."""
    if not isinstance(expr, Restrict):
        return None
    child = expr.child
    if isinstance(child, Restrict):
        return Restrict(child=child.child, relations=expr.relations)
    if set(expr.relations) == set(child.target.names()):
        return child
    if isinstance(child, UnionOf):
        return UnionOf(
            left=Restrict(child=child.left, relations=expr.relations),
            right=Restrict(child=child.right, relations=expr.relations),
        )
    if isinstance(child, Compose):
        return Compose(
            first=child.first,
            second=Restrict(child=child.second, relations=expr.relations),
        )
    if isinstance(child, MappingAtom):
        try:
            return MappingAtom(
                mapping=restrict_mapping(child.mapping, expr.relations)
            )
        except MappingError:
            return None
    return None


def _dead_branch_prune(expr: MappingExpr) -> Optional[MappingExpr]:
    """Drop constraints that can never fire.

    In ``compose(a, m)`` with a leaf ``m``, a dependency of ``m``
    whose premise mentions a relation outside ``a``'s producible set
    is vacuously satisfied by every chase result of ``a`` — dropping
    it changes no composition pair.  A union with a constraint-free
    operand is the other operand.
    """
    if isinstance(expr, Compose) and isinstance(expr.second, MappingAtom):
        mapping = expr.second.mapping
        available = producible_relations(expr.first)
        alive = tuple(
            dep
            for dep in mapping.dependencies
            if frozenset(dep.premise_relations()) <= available
        )
        if len(alive) < len(mapping.dependencies):
            from repro.core.mapping import SchemaMapping

            pruned = SchemaMapping(
                source=mapping.source,
                target=mapping.target,
                dependencies=alive,
                name=f"{mapping.name}†" if mapping.name else "",
            )
            return Compose(first=expr.first, second=MappingAtom(mapping=pruned))
    if isinstance(expr, UnionOf):
        for side, other in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            if (
                isinstance(side, MappingAtom)
                and not side.mapping.dependencies
            ):
                return other
    return None


RULES: Tuple[Tuple[str, object], ...] = (
    ("assoc-right", _assoc_right),
    ("factor-compose-over-union", _factor_compose_over_union),
    ("rename-fuse", _rename_fuse),
    ("rename-pushdown", _rename_pushdown),
    ("restrict-pushdown", _restrict_pushdown),
    ("dead-branch-prune", _dead_branch_prune),
)


def _rebuild(expr: MappingExpr, children: Tuple[MappingExpr, ...]) -> MappingExpr:
    if isinstance(expr, Compose):
        return Compose(first=children[0], second=children[1])
    if isinstance(expr, UnionOf):
        return UnionOf(left=children[0], right=children[1])
    if isinstance(expr, Restrict):
        return Restrict(child=children[0], relations=expr.relations)
    if isinstance(expr, Rename):
        return Rename(child=children[0], renaming=expr.renaming)
    return expr


def _rewrite_once(
    expr: MappingExpr, trace: List[RewriteStep]
) -> Tuple[MappingExpr, bool]:
    children = expr.children()
    if children:
        rebuilt = []
        changed = False
        for child in children:
            new_child, child_changed = _rewrite_once(child, trace)
            rebuilt.append(new_child)
            changed = changed or child_changed
        if changed:
            return _rebuild(expr, tuple(rebuilt)), True
    for rule_name, rule in RULES:
        result = rule(expr)  # type: ignore[operator]
        if result is not None:
            trace.append(
                RewriteStep(
                    rule=rule_name, before=expr.label(), after=result.label()
                )
            )
            return result, True
    return expr, False


def normalize(
    expr: MappingExpr, max_steps: int = 200
) -> Tuple[MappingExpr, Tuple[RewriteStep, ...]]:
    """Drive the rule library to a fixpoint, post-order.

    Returns the normalized expression and the applied-rule trace.
    ``max_steps`` bounds pathological rule interactions; the library
    is terminating on its own (each rule strictly reduces a
    lexicographic measure), so the bound is a safety net.
    """
    trace: List[RewriteStep] = []
    current = expr
    for _ in range(max_steps):
        current, changed = _rewrite_once(current, trace)
        if not changed:
            break
    return current, tuple(trace)
