"""Composed-mapping scenarios for the algebra's tests and benchmarks.

The headline family is *fan-in × chain-join*: a full first mapping
with two producers per middle relation composed with a chain join
whose premise spans every middle relation.  MinGen's output for the
composition multiplies the producer choices along the chain and
explodes exponentially in the width (measured: width 3 → 80 rules /
~0.2s, width 4 → 592 rules / ~13s, width 5 → minutes), while staged
evaluation chases each half in milliseconds.  Universes stay tiny
(domain ``{a, b}``, ``max_facts=1``), so materialization is the only
meaningful cost — exactly the regime the planner must win in.

Final target relation names are disjoint from every source name, so
no chase cascade blurs the staged/materialized equivalence.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.datamodel.schemas import Schema
from repro.core.mapping import SchemaMapping
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    MappingExpr,
    Rename,
    Restrict,
    UnionOf,
)


def fan_in_mapping(width: int) -> SchemaMapping:
    """``P_i(x,y) -> S_i(x,y)`` and ``Q_i(x,y) -> S_i(x,y)`` for each i."""
    source = Schema.of(
        {f"P{i}": 2 for i in range(1, width + 1)}
        | {f"Q{i}": 2 for i in range(1, width + 1)}
    )
    target = Schema.of({f"S{i}": 2 for i in range(1, width + 1)})
    rules = []
    for i in range(1, width + 1):
        rules.append(f"P{i}(x, y) -> S{i}(x, y)")
        rules.append(f"Q{i}(x, y) -> S{i}(x, y)")
    return SchemaMapping.from_text(
        source, target, "\n".join(rules), name=f"FanIn{width}"
    )


def chain_join_mapping(width: int) -> SchemaMapping:
    """``S1(x0,x1) & ... & Sw(x_{w-1},x_w) -> W(x0,xw)``."""
    source = Schema.of({f"S{i}": 2 for i in range(1, width + 1)})
    target = Schema.of({"W": 2})
    premise = " & ".join(
        f"S{i}(x{i - 1}, x{i})" for i in range(1, width + 1)
    )
    return SchemaMapping.from_text(
        source, target, f"{premise} -> W(x0, x{width})", name=f"ChainJoin{width}"
    )


def chain_join_with_dead_branch(width: int) -> SchemaMapping:
    """The chain join plus a constraint that can never fire.

    The extra rule's premise mentions ``S{width}``, which
    :func:`starved_fan_in_mapping` never populates — dead-branch
    pruning removes it before any MinGen runs.
    """
    source = Schema.of({f"S{i}": 2 for i in range(1, width + 1)})
    target = Schema.of({"W": 2, "W2": 2})
    premise = " & ".join(
        f"S{i}(x{i - 1}, x{i})" for i in range(1, width)
    )
    rules = [
        f"{premise} -> W(x0, x{width - 1})",
        f"S{width}(x, y) & S1(y, z) -> W2(x, z)",
    ]
    return SchemaMapping.from_text(
        source, target, "\n".join(rules), name=f"ChainJoinDead{width}"
    )


def starved_fan_in_mapping(width: int) -> SchemaMapping:
    """Fan-in over ``S1..S{width-1}`` only; ``S{width}`` stays empty.

    The target schema still declares ``S{width}`` (so the middle
    schemas line up), but no rule produces it.
    """
    source = Schema.of(
        {f"P{i}": 2 for i in range(1, width)}
        | {f"Q{i}": 2 for i in range(1, width)}
    )
    target = Schema.of({f"S{i}": 2 for i in range(1, width + 1)})
    rules = []
    for i in range(1, width):
        rules.append(f"P{i}(x, y) -> S{i}(x, y)")
        rules.append(f"Q{i}(x, y) -> S{i}(x, y)")
    return SchemaMapping.from_text(
        source, target, "\n".join(rules), name=f"StarvedFanIn{width}"
    )


def fan_in_chain_expression(width: int) -> MappingExpr:
    """The headline blow-up: ``compose(FanIn{w}, ChainJoin{w})``."""
    return Compose(
        first=MappingAtom(mapping=fan_in_mapping(width)),
        second=MappingAtom(mapping=chain_join_mapping(width)),
    )


def dead_branch_expression(width: int) -> MappingExpr:
    """A composition whose expensive constraint is unreachable."""
    return Compose(
        first=MappingAtom(mapping=starved_fan_in_mapping(width)),
        second=MappingAtom(mapping=chain_join_with_dead_branch(width)),
    )


def union_of_chains_expression(width: int) -> MappingExpr:
    """``union(compose(A, B), compose(A, B'))`` — factoring fodder.

    Both operands share the fan-in head, so the factoring rule turns
    two MinGen blow-ups into one staged pipeline with a unioned
    second stage.
    """
    fan_in = MappingAtom(mapping=fan_in_mapping(width))
    chain = chain_join_mapping(width)
    reversed_premise = " & ".join(
        f"S{i}(x{i - 1}, x{i})" for i in range(width, 0, -1)
    )
    other = SchemaMapping.from_text(
        chain.source,
        chain.target,
        f"{reversed_premise} -> W(x{width}, x0)",
        name=f"ChainJoinRev{width}",
    )
    return UnionOf(
        left=Compose(first=fan_in, second=MappingAtom(mapping=chain)),
        right=Compose(first=fan_in, second=MappingAtom(mapping=other)),
    )


def renamed_chain_expression(width: int) -> MappingExpr:
    """A rename wrapped around the blow-up composition."""
    return Rename(
        child=fan_in_chain_expression(width), renaming=(("W", "Result"),)
    )


def restricted_decomposition_expression() -> MappingExpr:
    """``restrict(Decomposition, Q)`` — exact target projection."""
    from repro.catalog.mappings import decomposition

    return Restrict(
        child=MappingAtom(mapping=decomposition()), relations=("Q",)
    )


def inverse_pairs() -> Tuple[Tuple[str, str, str], ...]:
    """(name, forward, reverse) expression texts for inverse checks."""
    return (
        ("projection-quasi", "Projection", "Projection'"),
        ("union-quasi", "Union", "Union'"),
        ("decomposition-join", "Decomposition", "Decomposition'"),
        ("thm48-inverse", "Thm4.8", "Thm4.8'"),
    )


def scenario_resolver(width: int = 3) -> Dict[str, SchemaMapping]:
    """The default parse table extended with this module's mappings."""
    from repro.algebra.expr import default_resolver

    table = default_resolver()
    for mapping in (
        fan_in_mapping(width),
        chain_join_mapping(width),
        starved_fan_in_mapping(width),
        chain_join_with_dead_branch(width),
    ):
        table[mapping.name] = mapping
    return table


def sweep_scenarios(width: int = 3) -> Tuple[Tuple[str, MappingExpr], ...]:
    """Named sweep-kind scenarios, cheapest first."""
    return (
        ("fanin-chain", fan_in_chain_expression(width)),
        ("dead-branch", dead_branch_expression(width)),
        ("union-of-chains", union_of_chains_expression(width)),
        ("renamed-chain", renamed_chain_expression(width)),
        ("restricted-decomposition", restricted_decomposition_expression()),
    )
