"""Plan-directed sweeps over mapping expressions.

:func:`check_expression` is the algebra's entry point: parse (or
accept) an expression, normalize it through the rewrite library, let
the planner pick an evaluation strategy, run the requested bounded
check, and render a report that is byte-identical for every plan
mode, backend, and worker count.

Rendering duplicates the service layer's tiny formatters (header,
coverage, violation lines) instead of importing
:mod:`repro.service.jobs` — jobs imports this module, and the
formats must stay in lockstep byte for byte (the service test suite
pins both).  Report text derives only from the *title* (the original
expression label) and sweep verdicts, never from the names or
structure of whatever mapping the plan chose to evaluate — that is
what makes byte-identity across plans hold by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.datamodel.instances import Instance
from repro.core.mapping import MappingError, SchemaMapping
from repro.engine.budget import Budget
from repro.engine.checkpoint import CheckpointJournal
from repro.engine.instrumentation import engine_stats
from repro.errors import governed_kinds_scope
from repro.algebra.evaluate import (
    ExpressionPairTest,
    MaterializedPairTest,
    materialize,
    staged_mapping,
)
from repro.algebra.expr import (
    Compose,
    MappingExpr,
    parse_expression,
)
from repro.algebra.plan import ExpressionPlan, plan_expression
from repro.algebra.rewrite import normalize

_ACTUAL_COUNTERS = ("compose_rules_emitted", "membership_candidates_tried")
_ACTUAL_PHASES = ("algebra.materialize", "compose.full", "compose.membership")


@dataclass(frozen=True)
class AlgebraReport:
    """One plan-directed expression check, rendered and explained."""

    kind: str
    title: str
    holds: bool
    lines: Tuple[str, ...]
    plan: ExpressionPlan
    coverage: str
    instances_checked: int = 0
    orbits_checked: int = 0
    actuals: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        return "\n".join(self.lines)

    def explain(self) -> str:
        return self.plan.explain(self.actuals)


# -- rendering helpers (format-locked to repro.service.jobs) ------------


def _facts(instance: Instance) -> str:
    return "{" + ", ".join(str(fact) for fact in instance.sorted_facts()) + "}"


def _header(name: str, what: str, domain: Sequence[str], max_facts: int) -> str:
    rendered = ",".join(domain)
    return (
        f"== check {name}: {what} over domain {{{rendered}}}, "
        f"max_facts={max_facts} =="
    )


def _coverage_line(coverage: str, instances: int, orbits: int) -> str:
    return (
        f"coverage: {coverage} "
        f"(instances_checked={instances}, orbits_checked={orbits})"
    )


def _violation_lines(pairs, joiner: str, limit: int = 5) -> List[str]:
    lines = [
        f"  violation: {_facts(left)} {joiner} {_facts(right)}"
        for left, right in pairs[:limit]
    ]
    if len(pairs) > limit:
        lines.append(f"  ... and {len(pairs) - limit} more")
    return lines


# -- plan-directed evaluation -------------------------------------------


def _as_expression(
    expression: Union[str, MappingExpr],
    resolver: Optional[Mapping[str, SchemaMapping]],
) -> MappingExpr:
    if isinstance(expression, MappingExpr):
        return expression
    return parse_expression(expression, resolver)


def _evaluated_mapping(
    normalized: MappingExpr, strategy: str
) -> SchemaMapping:
    """The concrete mapping a sweep-kind strategy runs against."""
    if strategy == "staged":
        staged = staged_mapping(normalized)
        if staged is not None:
            return staged
        # the planner only picks staged when feasible; direct callers
        # of a forced strategy can still land here
        return materialize(normalized)
    return materialize(normalized)


def _actuals_begin() -> Dict[str, float]:
    stats = engine_stats()
    state: Dict[str, float] = {"wall": time.perf_counter()}
    for name in _ACTUAL_COUNTERS:
        state[name] = stats.counter(name)
    for name in _ACTUAL_PHASES:
        phase = stats.phases.get(name)
        state[f"{name}_seconds"] = phase.seconds if phase else 0.0
    return state


def _actuals_end(state: Dict[str, float]) -> Dict[str, float]:
    stats = engine_stats()
    actuals: Dict[str, float] = {
        "measured_seconds": time.perf_counter() - state["wall"]
    }
    for name in _ACTUAL_COUNTERS:
        delta = stats.counter(name) - state[name]
        if delta:
            actuals[name] = delta
    for name in _ACTUAL_PHASES:
        phase = stats.phases.get(name)
        seconds = (phase.seconds if phase else 0.0) - state[f"{name}_seconds"]
        if seconds > 0:
            actuals[f"{name}_seconds"] = seconds
    return actuals


def check_expression(
    expression: Union[str, MappingExpr],
    kind: str,
    *,
    reverse: Optional[Union[str, MappingExpr]] = None,
    domain: Sequence[str] = ("a", "b"),
    max_facts: int = 1,
    plan: Optional[str] = None,
    title: Optional[str] = None,
    resolver: Optional[Mapping[str, SchemaMapping]] = None,
    max_nulls: int = 7,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    checkpoint: Optional[CheckpointJournal] = None,
) -> AlgebraReport:
    """Run one bounded check of a mapping expression.

    *kind* is one of ``unique``, ``subset``, ``invertibility`` (sweep
    kinds over the expression's source universe) or ``inverse``
    (pairwise check that *reverse* composes with *expression* to the
    identity).  *plan* is the plan-mode preference (default: ambient
    ``REPRO_PLAN``); the report is byte-identical for every mode.
    """
    from repro.workloads import power_instances

    expr = _as_expression(expression, resolver)
    shown = title if title is not None else expr.label()
    normalized, trace = normalize(expr)
    universe = list(
        power_instances(expr.source, tuple(domain), max_facts=max_facts)
    )
    pair_checks = len(universe) ** 2 if kind == "inverse" else 0
    reverse_shown = None
    reverse_normalized = None
    planned_expr = normalized
    if kind == "inverse":
        if reverse is None:
            raise MappingError("the inverse kind needs a reverse expression")
        reverse_expr = _as_expression(reverse, resolver)
        reverse_shown = reverse_expr.label()
        reverse_normalized, reverse_trace = normalize(reverse_expr)
        trace = trace + reverse_trace
        # the expensive object is the composition forward ∘ reverse;
        # that is what the planner must choose a strategy for
        planned_expr = Compose(first=normalized, second=reverse_normalized)
    chosen = plan_expression(
        planned_expr,
        kind,
        mode=plan,
        universe_size=len(universe),
        pair_checks=pair_checks,
        normalized_label=planned_expr.label(),
        rewrite_trace=trace,
    )
    options = {
        "workers": workers,
        "symmetry": symmetry,
        "backend": backend,
        "shards": shards,
        "shard_id": shard_id,
    }
    state = _actuals_begin()
    with engine_stats().phase("algebra.sweep"):
        if kind == "unique":
            lines, holds, coverage, instances, orbits = _run_unique(
                shown, normalized, chosen, universe, domain, max_facts,
                budget, options,
            )
        elif kind == "subset":
            lines, holds, coverage, instances, orbits = _run_subset(
                shown, normalized, chosen, universe, domain, max_facts,
                budget, checkpoint, options,
            )
        elif kind == "invertibility":
            lines, holds, coverage, instances, orbits = _run_invertibility(
                shown, normalized, chosen, universe, domain, max_facts,
                budget, checkpoint, options,
            )
        elif kind == "inverse":
            lines, holds, coverage, instances, orbits = _run_inverse(
                shown, normalized, reverse_shown, reverse_normalized,
                planned_expr, chosen, universe, domain, max_facts,
                max_nulls, budget, options,
            )
        else:
            raise MappingError(f"unknown check kind {kind!r}")
    actuals = _actuals_end(state)
    return AlgebraReport(
        kind=kind,
        title=shown,
        holds=holds,
        lines=tuple(lines),
        plan=chosen,
        coverage=coverage,
        instances_checked=instances,
        orbits_checked=orbits,
        actuals=actuals,
    )


def _run_unique(
    shown, normalized, chosen, universe, domain, max_facts, budget, options
):
    from repro.core.framework import unique_solutions_property

    evaluated = _evaluated_mapping(normalized, chosen.strategy)
    verdict = unique_solutions_property(
        evaluated, universe, budget=budget, **options
    )
    ok, violations = verdict
    lines = [
        _header(shown, "unique solutions", domain, max_facts),
        f"universe: {len(universe)} instances",
        f"holds: {'yes' if ok else 'VIOLATED'}",
    ]
    lines.extend(_violation_lines(violations, "~"))
    lines.append(
        _coverage_line(
            verdict.coverage, verdict.instances_checked, verdict.orbits_checked
        )
    )
    return (
        lines,
        ok,
        verdict.coverage,
        verdict.instances_checked,
        verdict.orbits_checked,
    )


def _run_subset(
    shown, normalized, chosen, universe, domain, max_facts, budget,
    checkpoint, options,
):
    from repro.core.framework import SolutionEquivalence, subset_property

    evaluated = _evaluated_mapping(normalized, chosen.strategy)
    equivalence = SolutionEquivalence(evaluated)
    report = subset_property(
        evaluated,
        equivalence,
        equivalence,
        universe,
        stop_at_first_violation=False,
        budget=budget,
        checkpoint=checkpoint,
        **options,
    )
    lines = [
        _header(shown, "subset property (~M,~M)", domain, max_facts),
        f"universe: {len(universe)} instances",
        f"holds: {'yes' if report.holds else 'VIOLATED'} "
        f"(pairs checked: {report.checked})",
    ]
    lines.extend(_violation_lines(report.violations, "|"))
    lines.append(
        _coverage_line(
            report.coverage, report.instances_checked, report.orbits_checked
        )
    )
    return (
        lines,
        report.holds,
        report.coverage,
        report.instances_checked,
        report.orbits_checked,
    )


def _run_invertibility(
    shown, normalized, chosen, universe, domain, max_facts, budget,
    checkpoint, options,
):
    from repro.analysis.classify import classify_mapping
    from repro.analysis.invertibility import invertibility_report

    evaluated = _evaluated_mapping(normalized, chosen.strategy)
    # the report's syntactic fields (LAV/full classification, constant
    # propagation, dependency count) describe the *composed* mapping,
    # so they always read from the materialization — memoized, paid
    # once — while the sweeps run whatever the plan chose
    syntax = materialize(normalized)
    classification = classify_mapping(syntax)
    report = invertibility_report(
        evaluated,
        universe,
        budget=budget,
        checkpoint=checkpoint,
        syntax_mapping=syntax,
        **options,
    )
    subset = report.quasi_subset_property
    lines = [
        _header(shown, "invertibility", domain, max_facts),
        f"class: {classification.describe()} "
        f"({classification.n_dependencies} dependencies)",
        f"universe: {len(universe)} instances",
        f"constant propagation: {'yes' if report.constant_propagation else 'no'}",
        f"unique solutions: {'yes' if report.unique_solutions else 'VIOLATED'}",
    ]
    if report.unique_solutions_witness is not None:
        left, right = report.unique_solutions_witness
        lines.append(f"  witness: {_facts(left)} ~ {_facts(right)}")
    lines.append(
        f"subset property (~M,~M): {'holds' if subset.holds else 'VIOLATED'} "
        f"(pairs checked: {subset.checked})"
    )
    lines.extend(_violation_lines(subset.violations, "|"))
    lines.append(f"verdict: {report.verdict()}")
    lines.append(
        _coverage_line(
            report.coverage, report.instances_checked, report.orbits_checked
        )
    )
    holds = report.unique_solutions and subset.holds
    return (
        lines,
        holds,
        report.coverage,
        report.instances_checked,
        report.orbits_checked,
    )


def _leg_mapping(expr: MappingExpr) -> SchemaMapping:
    """A concrete mapping for one leg of an inverse check —
    materialized when possible, staged otherwise."""
    try:
        return materialize(expr)
    except MappingError:
        staged = staged_mapping(expr)
        if staged is None:
            raise
        return staged


def _run_inverse(
    shown, normalized, reverse_shown, reverse_normalized, composed_expr,
    chosen, universe, domain, max_facts, max_nulls, budget, options,
):
    from repro.core.framework import is_inverse

    # forward/reverse legs are materialized in every strategy (they
    # are cheap — the expensive object is their composition); the
    # strategy only selects how each pair's membership in
    # Inst(forward ∘ reverse) is decided, so orbit planning and the
    # report are identical across strategies
    forward = _leg_mapping(normalized)
    reverse_mapping = _leg_mapping(reverse_normalized)
    if chosen.strategy == "membership":
        test = ExpressionPairTest(expr=composed_expr)
    else:
        test = MaterializedPairTest(composed=materialize(composed_expr))
    with governed_kinds_scope("composition_nulls"):
        report = is_inverse(
            forward,
            reverse_mapping,
            universe,
            max_nulls=max_nulls,
            stop_at_first_mismatch=False,
            budget=budget,
            composition_test=test,
            **options,
        )
    lines = [
        _header(
            shown,
            f"inverse via {reverse_shown}",
            domain,
            max_facts,
        ),
        f"universe: {len(universe)} instances",
        f"inverse: {'yes' if report.holds else 'VIOLATED'} "
        f"(pairs checked: {report.checked})",
    ]
    for left, right, direction in report.mismatches[:5]:
        lines.append(
            f"  mismatch: {_facts(left)} vs {_facts(right)} ({direction})"
        )
    if len(report.mismatches) > 5:
        lines.append(f"  ... and {len(report.mismatches) - 5} more")
    lines.append(
        _coverage_line(
            report.coverage, report.instances_checked, report.orbits_checked
        )
    )
    return (
        lines,
        report.holds,
        report.coverage,
        report.instances_checked,
        report.orbits_checked,
    )
