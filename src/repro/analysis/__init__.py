"""Mapping analysis: classification, language audits, and
invertibility reports."""

from repro.analysis.classify import classify_mapping, MappingClassification
from repro.analysis.invertibility import (
    InvertibilityReport,
    invertibility_report,
)
from repro.analysis.provenance import (
    FactProvenance,
    derivation_depths,
    explain_chase,
    fact_provenance,
)

__all__ = [
    "FactProvenance",
    "InvertibilityReport",
    "MappingClassification",
    "classify_mapping",
    "derivation_depths",
    "explain_chase",
    "fact_provenance",
    "invertibility_report",
]
