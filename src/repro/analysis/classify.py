"""Syntactic classification of schema mappings."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependencies.dependency import LanguageFeatures, language_audit
from repro.core.mapping import SchemaMapping


@dataclass(frozen=True)
class MappingClassification:
    """A syntactic profile of a dependency set."""

    is_tgd: bool
    is_full: bool
    is_lav: bool
    is_gav: bool
    features: LanguageFeatures
    n_dependencies: int

    def describe(self) -> str:
        tags = []
        if self.is_lav:
            tags.append("LAV")
        if self.is_gav:
            tags.append("GAV")
        if self.is_full:
            tags.append("full")
        if self.is_tgd and not tags:
            tags.append("s-t tgds")
        if not self.is_tgd:
            tags.append(self.features.describe())
        return ", ".join(tags) if tags else "plain"


def classify_mapping(mapping: SchemaMapping) -> MappingClassification:
    """Classify *mapping* syntactically.

    GAV (global-as-view) means every conclusion is a single atom with
    no existential quantifiers; LAV means every premise is a single
    atom.  Both imply plain tgds.
    """
    is_tgd = mapping.is_tgd_mapping()
    is_gav = is_tgd and all(
        len(dep.disjuncts[0]) == 1 and dep.is_full()
        for dep in mapping.dependencies
    )
    return MappingClassification(
        is_tgd=is_tgd,
        is_full=mapping.is_full(),
        is_lav=mapping.is_lav(),
        is_gav=is_gav,
        features=language_audit(mapping.dependencies),
        n_dependencies=len(mapping.dependencies),
    )
