"""Invertibility analysis combining the paper's criteria.

For a mapping specified by s-t tgds, the report aggregates:

* the constant-propagation property (Definition 5.2) — necessary for
  invertibility (Proposition 5.3), decidable exactly;
* the unique-solutions property over a bounded universe — necessary
  for invertibility ([3]); a violation certifies non-invertibility;
* the (∼M,∼M)-subset property over a bounded universe — necessary
  and sufficient for quasi-invertibility (Theorem 3.5); a violation
  certifies that no quasi-inverse exists;
* guaranteed positives: LAV mappings are always quasi-invertible
  (Proposition 3.11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.datamodel.instances import Instance
from repro.core.framework import (
    SolutionEquivalence,
    SubsetPropertyReport,
    subset_property,
    unique_solutions_property,
)
from repro.core.inverse import has_constant_propagation
from repro.core.mapping import SchemaMapping
from repro.engine.budget import COVERAGE_EXHAUSTIVE, Budget, worst_coverage
from repro.engine.checkpoint import CheckpointJournal


@dataclass(frozen=True)
class InvertibilityReport:
    """Aggregated invertibility evidence for one mapping.

    ``coverage`` is the worst coverage among the bounded sweeps the
    report aggregates: ``"exhaustive"`` when every check examined its
    full universe, otherwise the most degraded status
    (``"budget"`` < ``"deadline"`` < ``"faulted"``).  Violation-based
    verdicts (:attr:`certainly_not_invertible`,
    :attr:`certainly_not_quasi_invertible`) remain definite even under
    partial coverage; passes only speak for the instances checked.
    """

    mapping_name: str
    is_lav: bool
    is_full: bool
    constant_propagation: bool
    unique_solutions: bool
    unique_solutions_witness: Optional[Tuple[Instance, Instance]]
    quasi_subset_property: SubsetPropertyReport
    coverage: str = COVERAGE_EXHAUSTIVE
    instances_checked: int = 0
    orbits_checked: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE

    @property
    def certainly_not_invertible(self) -> bool:
        """A necessary condition for invertibility failed."""
        return not self.constant_propagation or not self.unique_solutions

    @property
    def certainly_not_quasi_invertible(self) -> bool:
        """The (∼M,∼M)-subset property failed on a bounded universe."""
        return not self.quasi_subset_property.holds

    @property
    def certainly_quasi_invertible(self) -> bool:
        """A sufficient condition for quasi-invertibility holds."""
        return self.is_lav

    def verdict(self) -> str:
        if self.certainly_not_quasi_invertible:
            return "no quasi-inverse (subset-property violation)"
        if self.certainly_not_invertible and self.certainly_quasi_invertible:
            return "quasi-invertible (LAV) but not invertible"
        if self.certainly_not_invertible:
            return "not invertible; quasi-invertibility open (bounded pass)"
        if self.certainly_quasi_invertible:
            return "quasi-invertible (LAV); invertibility open (bounded pass)"
        return "all bounded checks pass"


def invertibility_report(
    mapping: SchemaMapping,
    universe: Sequence[Instance],
    *,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    syntax_mapping: Optional[SchemaMapping] = None,
) -> InvertibilityReport:
    """Run every invertibility criterion over *universe*.

    *syntax_mapping* (default: *mapping*) supplies the syntactic
    fields of the report — name, LAV/full classification, constant
    propagation — while *mapping* drives the bounded sweeps.  The
    algebra planner passes a staged evaluation pipeline as *mapping*
    (cheap sweeps, no MinGen in the hot loop) with the materialized
    composition as *syntax_mapping*, so the report is byte-identical
    to running the materialized mapping everywhere.

    *workers* fans the bounded checkers out through the engine's
    :class:`~repro.engine.parallel.ParallelUniverseRunner`; the report
    is identical for every worker count.  *budget* (default: ambient,
    else environment) is shared by the bounded sweeps; a trip degrades
    the report's ``coverage`` instead of raising.  *symmetry*
    (default: ``REPRO_SYMMETRY``) selects full or orbit-reduced sweeps
    for both bounded checks; ``orbits_checked`` aggregates their orbit
    counters.  *backend* (default: ``REPRO_BACKEND``) selects the
    object, compiled-kernel, or SQL (SQLite-hosted) execution backend
    for both sweeps; the report is identical in each case.  *shards* / *shard_id* (default:
    ``REPRO_SHARDS`` / ``REPRO_SHARD_ID``) partition both bounded
    sweeps by content digest; with a fixed *shard_id* the report
    covers that shard alone, merged shard reports reproduce the
    unsharded run.  *checkpoint* journals the subset-property sweep —
    the expensive, resumable phase — so an interrupted report picks up
    where it stopped (the unique-solutions pass is re-run; it is the
    cheap phase and carries no journal support).
    """
    equivalence = SolutionEquivalence(mapping)
    unique_verdict = unique_solutions_property(
        mapping,
        universe,
        workers=workers,
        budget=budget,
        symmetry=symmetry,
        backend=backend,
        shards=shards,
        shard_id=shard_id,
    )
    unique, violations = unique_verdict
    subset = subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        workers=workers,
        budget=budget,
        symmetry=symmetry,
        backend=backend,
        shards=shards,
        shard_id=shard_id,
        checkpoint=checkpoint,
    )
    syntax = syntax_mapping if syntax_mapping is not None else mapping
    return InvertibilityReport(
        mapping_name=syntax.name or str(syntax),
        is_lav=syntax.is_lav(),
        is_full=syntax.is_full(),
        constant_propagation=has_constant_propagation(syntax),
        unique_solutions=unique,
        unique_solutions_witness=violations[0] if violations else None,
        quasi_subset_property=subset,
        coverage=worst_coverage(unique_verdict.coverage, subset.coverage),
        instances_checked=unique_verdict.instances_checked
        + subset.instances_checked,
        orbits_checked=unique_verdict.orbits_checked + subset.orbits_checked,
    )
