"""Provenance: explaining where chased facts came from.

The chase records each firing (dependency, premise match, added
facts); this module turns those records into per-fact provenance and
human-readable derivation listings — useful when debugging a mapping
or auditing what a recovered instance is based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chase.standard import ChaseResult, ChaseStep
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Term


@dataclass(frozen=True)
class FactProvenance:
    """Why one fact is in the chase result."""

    fact: Atom
    step: Optional[ChaseStep]  # None for facts present in the input

    def is_input_fact(self) -> bool:
        return self.step is None

    def premise_facts(self) -> Tuple[Atom, ...]:
        """The (instantiated) premise facts of the firing."""
        if self.step is None:
            return ()
        assignment: Dict[Term, Term] = dict(self.step.homomorphism)
        return tuple(
            atom.substitute(assignment)
            for atom in self.step.dependency.premise.atoms
        )

    def describe(self) -> str:
        if self.step is None:
            return f"{self.fact}  (input fact)"
        premises = " ∧ ".join(str(f) for f in self.premise_facts())
        return f"{self.fact}  from  {premises}  via  {self.step.dependency}"


def fact_provenance(result: ChaseResult, fact: Atom) -> FactProvenance:
    """The provenance of *fact* within *result*.

    Returns the first step that added the fact, or an input-fact
    provenance when no step did.  Raises :class:`KeyError` when the
    fact is not in the result at all.
    """
    if fact not in result.instance:
        raise KeyError(f"{fact} is not in the chase result")
    for step in result.steps:
        if fact in step.added:
            return FactProvenance(fact, step)
    return FactProvenance(fact, None)


def explain_chase(result: ChaseResult, *, produced_only: bool = True) -> str:
    """A human-readable derivation listing for a chase result.

    One line per fact, in sorted order; with ``produced_only`` (the
    default) input facts are omitted.
    """
    lines: List[str] = []
    for fact in result.instance.sorted_facts():
        provenance = fact_provenance(result, fact)
        if produced_only and provenance.is_input_fact():
            continue
        lines.append(provenance.describe())
    return "\n".join(lines)


def derivation_depths(result: ChaseResult) -> Dict[Atom, int]:
    """How many firings deep each fact is (input facts at depth 0).

    For stratified (s-t) chases every produced fact has depth 1; for
    recursive chases (e.g. transitive closure) the depth reflects the
    derivation chain length under the recorded firing order.
    """
    depths: Dict[Atom, int] = {}
    for fact in result.instance.facts - result.produced.facts:
        depths[fact] = 0
    for step in result.steps:
        assignment: Dict[Term, Term] = dict(step.homomorphism)
        premise_depth = 0
        for atom in step.dependency.premise.atoms:
            instantiated = atom.substitute(assignment)
            premise_depth = max(premise_depth, depths.get(instantiated, 0))
        for fact in step.added:
            if fact not in depths:
                depths[fact] = premise_depth + 1
    return depths
