"""The paper's named schema mappings, examples, and expected outputs.

Every schema mapping that the paper names or constructs is available
here as a ready-made object, together with the formulas the paper
states as expected algorithm outputs (used by the experiments to
compare conjunct-for-conjunct) and the worked-example instances
(Example 3.10's witnesses, Figure 1's instance I).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.dependencies.dependency import Dependency
from repro.dependencies.parser import parse_dependencies, parse_dependency
from repro.core.mapping import SchemaMapping


# ----------------------------------------------------------------------
# Section 1: the three motivating non-invertible mappings.
# ----------------------------------------------------------------------

def projection() -> SchemaMapping:
    """Projection: P(x, y) -> Q(x)."""
    return SchemaMapping.from_text(
        Schema.of({"P": 2}),
        Schema.of({"Q": 1}),
        "P(x, y) -> Q(x)",
        name="Projection",
    )


def projection_quasi_inverse() -> SchemaMapping:
    """The paper's quasi-inverse of Projection: Q(x) -> exists y P(x, y)."""
    return SchemaMapping.from_text(
        Schema.of({"Q": 1}),
        Schema.of({"P": 2}),
        "Q(x) -> P(x, y)",
        name="Projection'",
    )


def union_mapping() -> SchemaMapping:
    """Union: P(x) -> S(x) and Q(x) -> S(x)."""
    return SchemaMapping.from_text(
        Schema.of({"P": 1, "Q": 1}),
        Schema.of({"S": 1}),
        "P(x) -> S(x)\nQ(x) -> S(x)",
        name="Union",
    )


def union_quasi_inverse() -> SchemaMapping:
    """The paper's quasi-inverse of Union: S(x) -> P(x) ∨ Q(x)."""
    return SchemaMapping.from_text(
        Schema.of({"S": 1}),
        Schema.of({"P": 1, "Q": 1}),
        "S(x) -> P(x) | Q(x)",
        name="Union'",
    )


def decomposition() -> SchemaMapping:
    """Decomposition: P(x, y, z) -> Q(x, y) ∧ R(y, z)."""
    return SchemaMapping.from_text(
        Schema.of({"P": 3}),
        Schema.of({"Q": 2, "R": 2}),
        "P(x, y, z) -> Q(x, y) & R(y, z)",
        name="Decomposition",
    )


def decomposition_quasi_inverse_join() -> SchemaMapping:
    """Example 3.10's M': Q(x, y) ∧ R(y, z) -> P(x, y, z)."""
    return SchemaMapping.from_text(
        Schema.of({"Q": 2, "R": 2}),
        Schema.of({"P": 3}),
        "Q(x, y) & R(y, z) -> P(x, y, z)",
        name="Decomposition'",
    )


def decomposition_quasi_inverse_split() -> SchemaMapping:
    """Example 3.10's M'': Q(x,y) -> ∃z P(x,y,z); R(y,z) -> ∃x P(x,y,z)."""
    return SchemaMapping.from_text(
        Schema.of({"Q": 2, "R": 2}),
        Schema.of({"P": 3}),
        "Q(x, y) -> P(x, y, z)\nR(y, z) -> P(x, y, z)",
        name="Decomposition''",
    )


def example_3_10_witnesses() -> Tuple[Instance, Instance]:
    """Example 3.10's unique-solutions violation for Decomposition.

    P^{I1} = {(0,0,0), (0,0,1), (1,0,0)} and P^{I2} additionally has
    (1,0,1); the two instances have exactly the same solutions.
    """
    left = Instance.build({"P": [(0, 0, 0), (0, 0, 1), (1, 0, 0)]})
    right = Instance.build({"P": [(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)]})
    return left, right


# ----------------------------------------------------------------------
# Proposition 3.12: a full s-t tgd with no quasi-inverse.
# ----------------------------------------------------------------------

def prop_3_12() -> SchemaMapping:
    """E(x, z) ∧ E(z, y) -> F(x, y) ∧ M(z): no quasi-inverse exists."""
    return SchemaMapping.from_text(
        Schema.of({"E": 2}),
        Schema.of({"F": 2, "M": 1}),
        "E(x, z) & E(z, y) -> F(x, y) & M(z)",
        name="Prop3.12",
    )


# ----------------------------------------------------------------------
# Example 4.5: the QuasiInverse algorithm walk-through.
# ----------------------------------------------------------------------

def example_4_5() -> SchemaMapping:
    """The four-tgd mapping of Example 4.5."""
    text = """
    P(x1, x2, x3) -> S(x1, x2, y) & Q(y, y)
    U(x1) -> S(x1, x1, y) & Q(y, y) & Q(x1, y)
    T(x3, x4) -> S(x4, x4, x3)
    R(x1, x2, x4) -> Q(x1, x2)
    """
    return SchemaMapping.from_text(
        Schema.of({"P": 3, "U": 1, "T": 2, "R": 3}),
        Schema.of({"S": 3, "Q": 2}),
        text,
        name="Example4.5",
    )


def example_4_5_expected_sigma1_prime() -> Dependency:
    """The paper's sigma'_1."""
    return parse_dependency(
        "S(x1, x2, y) & Q(y, y) & Constant(x1) & Constant(x2) & x1 != x2 "
        "-> P(x1, x2, x3)"
    )


def example_4_5_expected_sigma2_prime(pruned: bool = True) -> Dependency:
    """The paper's sigma'_2 (with or without the implied third disjunct).

    Unpruned, the conclusion has four disjuncts; the paper remarks the
    third (∃x4 T(x1,x1) ∧ R(x1,x1,x4)) is implied by the fourth and
    can be removed.
    """
    disjuncts = [
        "P(x1, x1, x3)",
        "U(x1)",
        "T(x1, x1) & R(x1, x1, x4)",
        "T(x3, x1) & R(x3, x3, x4)",
    ]
    if pruned:
        disjuncts.pop(2)
    return parse_dependency(
        "S(x1, x1, y) & Q(y, y) & Constant(x1) -> " + " | ".join(disjuncts)
    )


# ----------------------------------------------------------------------
# Section 4.1: the four language-necessity mappings.
# ----------------------------------------------------------------------

def thm_4_8() -> SchemaMapping:
    """Necessity of constants: P(x, y) -> ∃z (Q(x, z) ∧ Q(z, y))."""
    return SchemaMapping.from_text(
        Schema.of({"P": 2}),
        Schema.of({"Q": 2}),
        "P(x, y) -> Q(x, z) & Q(z, y)",
        name="Thm4.8",
    )


def thm_4_8_inverse() -> SchemaMapping:
    """The paper's inverse of the Theorem 4.8 mapping."""
    return SchemaMapping.from_text(
        Schema.of({"Q": 2}),
        Schema.of({"P": 2}),
        "Q(x, z) & Q(z, y) & Constant(x) & Constant(y) -> P(x, y)",
        name="Thm4.8'",
    )


def thm_4_9() -> SchemaMapping:
    """Necessity of inequalities (a full LAV mapping with an inverse)."""
    text = """
    P(x, y) -> P2(x, y)
    P(x, x) -> Q(x)
    T(x) -> T2(x)
    T(x) -> P2(x, x)
    """
    return SchemaMapping.from_text(
        Schema.of({"P": 2, "T": 1}),
        Schema.of({"P2": 2, "Q": 1, "T2": 1}),
        text,
        name="Thm4.9",
    )


def thm_4_10() -> SchemaMapping:
    """Necessity of disjunctions (full, quasi-invertible)."""
    text = """
    P1(x) -> S1(x)
    P2(x) -> S1(x)
    P3(x) -> S2(x)
    P4(x) -> S2(x)
    P1(x) & P3(x) -> R13(x)
    P1(x) & P4(x) -> R14(x)
    P2(x) & P3(x) -> R23(x)
    P2(x) & P4(x) -> R24(x)
    """
    return SchemaMapping.from_text(
        Schema.of({"P1": 1, "P2": 1, "P3": 1, "P4": 1}),
        Schema.of({"S1": 1, "S2": 1, "R13": 1, "R14": 1, "R23": 1, "R24": 1}),
        text,
        name="Thm4.10",
    )


def thm_4_11() -> SchemaMapping:
    """Necessity of existential quantifiers (full LAV)."""
    return SchemaMapping.from_text(
        Schema.of({"P": 2}),
        Schema.of({"R": 1, "S": 1}),
        "P(x, y) -> R(x)\nP(x, x) -> S(x)",
        name="Thm4.11",
    )


# ----------------------------------------------------------------------
# Example 5.4: the Inverse algorithm walk-through.
# ----------------------------------------------------------------------

def example_5_4() -> SchemaMapping:
    """The three-tgd mapping of Example 5.4."""
    text = """
    R(x1, x2) & R(x2, x1) -> Q(x1, y)
    R(x1, x2) -> S(x1, x2, y)
    R(x1, x1) -> U(x1)
    """
    return SchemaMapping.from_text(
        Schema.of({"R": 2}),
        Schema.of({"Q": 2, "S": 3, "U": 1}),
        text,
        name="Example5.4",
    )


def example_5_4_expected_inverse() -> Tuple[Dependency, Dependency]:
    """The paper's dependencies (1) and (2) output by Inverse."""
    omega_equal = parse_dependency(
        "Q(x1, y1) & S(x1, x1, y2) & U(x1) & Constant(x1) -> R(x1, x1)"
    )
    omega_distinct = parse_dependency(
        "S(x1, x2, y) & Constant(x1) & Constant(x2) & x1 != x2 -> R(x1, x2)"
    )
    return omega_equal, omega_distinct


# ----------------------------------------------------------------------
# Section 3 remark (full version): unique solutions without the
# (=,=)-subset property.
# ----------------------------------------------------------------------

def unique_solutions_separation() -> SchemaMapping:
    """A mapping with unique solutions but no (=,=)-subset property.

    The paper states (proof in the full version) that the
    unique-solutions property of [3] is necessary but *not* sufficient
    for invertibility.  This witness was found by exhaustive search
    over small full mappings and is analytically checkable: the chase
    profile is (C, D, E) = (A ∪ B, B, A ∩ B), from which A and B are
    recoverable (so solutions are unique), yet
    Sol({B(0)}) ⊆ Sol({A(0)}) while {A(0)} ⊄ {B(0)} — an exact
    violation of the (=,=)-subset property, hence no inverse exists
    (Corollary 3.6).
    """
    text = """
    A(x) -> C(x)
    B(x) -> C(x) & D(x)
    A(x) & B(x) -> E(x)
    """
    return SchemaMapping.from_text(
        Schema.of({"A": 1, "B": 1}),
        Schema.of({"C": 1, "D": 1, "E": 1}),
        text,
        name="UniqueNotSubset",
    )


def unique_solutions_separation_witnesses() -> Tuple[Instance, Instance]:
    """The exact (=,=)-subset violation pair for the mapping above."""
    return Instance.build({"A": [(0,)]}), Instance.build({"B": [(0,)]})


# ----------------------------------------------------------------------
# Figure 1 / Example 6.1.
# ----------------------------------------------------------------------

def figure_1_instance() -> Instance:
    """The ground instance I of Figure 1: P = {(a,b,c), (a',b,c')}."""
    return Instance.build({"P": [("a", "b", "c"), ("a'", "b", "c'")]})


def all_catalog_mappings() -> Tuple[SchemaMapping, ...]:
    """Every forward mapping in the catalog (for sweep experiments)."""
    return (
        projection(),
        union_mapping(),
        decomposition(),
        prop_3_12(),
        example_4_5(),
        thm_4_8(),
        thm_4_9(),
        thm_4_10(),
        thm_4_11(),
        example_5_4(),
        unique_solutions_separation(),
    )
