"""The chase engine: homomorphisms, the standard (restricted) chase,
and the disjunctive chase of Definitions 6.3/6.4."""

from repro.chase.homomorphism import (
    all_homomorphisms,
    core,
    find_homomorphism,
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from repro.chase.standard import ChaseError, ChaseResult, NullFactory, chase
from repro.chase.disjunctive import (
    DisjunctiveChaseNode,
    DisjunctiveChaseTree,
    disjunctive_chase,
)

__all__ = [
    "ChaseError",
    "ChaseResult",
    "DisjunctiveChaseNode",
    "DisjunctiveChaseTree",
    "NullFactory",
    "all_homomorphisms",
    "chase",
    "core",
    "disjunctive_chase",
    "find_homomorphism",
    "instance_homomorphism",
    "is_homomorphically_equivalent",
]
