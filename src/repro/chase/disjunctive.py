"""The disjunctive chase (Definitions 6.3 and 6.4).

Chasing an instance with disjunctive tgds produces a *tree*: a node
where a dependency sigma applies with homomorphism h has one child
per disjunct, obtained by instantiating that disjunct with fresh
nulls.  Leaves are instances where nothing applies.  Because we only
ever chase target-to-source dependencies over (U, ∅) — premises match
target facts, conclusions add source facts — the tree is finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.homomorphism import Assignment, all_homomorphisms, find_homomorphism
from repro.chase.standard import ChaseError, NullFactory
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Term
from repro.dependencies.dependency import Dependency
from repro.engine.budget import current_budget


@dataclass
class DisjunctiveChaseNode:
    """A node of the disjunctive chase tree."""

    instance: Instance
    children: List["DisjunctiveChaseNode"] = field(default_factory=list)
    applied: Optional[Dependency] = None
    match: Optional[Tuple[Tuple[Term, Term], ...]] = None

    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class DisjunctiveChaseTree:
    """The full chase tree, with convenient access to its leaves."""

    root: DisjunctiveChaseNode
    node_count: int

    def leaves(self) -> Tuple[Instance, ...]:
        """All leaf instances, in left-to-right tree order."""
        collected: List[Instance] = []

        def walk(node: DisjunctiveChaseNode) -> None:
            if node.is_leaf():
                collected.append(node.instance)
                return
            for child in node.children:
                walk(child)

        walk(self.root)
        return tuple(collected)

    def distinct_leaves(self) -> Tuple[Instance, ...]:
        """Leaves with exact duplicates removed (first occurrence kept)."""
        seen: Set[Instance] = set()
        result: List[Instance] = []
        for leaf in self.leaves():
            if leaf not in seen:
                seen.add(leaf)
                result.append(leaf)
        return tuple(result)

    def depth(self) -> int:
        def walk(node: DisjunctiveChaseNode) -> int:
            if node.is_leaf():
                return 0
            return 1 + max(walk(child) for child in node.children)

        return walk(self.root)


def _find_applicable(
    dependencies: Sequence[Dependency], instance: Instance
) -> Optional[Tuple[Dependency, Assignment]]:
    """The first applicable (sigma, h) in deterministic order.

    Per Definition 6.3, sigma applies with h when h matches the
    premise (with constraints) and *no* disjunct admits an extension
    of h into the instance.
    """
    for dependency in dependencies:
        variables = dependency.premise_variables()
        matches = list(
            all_homomorphisms(
                dependency.premise.atoms,
                instance,
                constant_vars=dependency.premise.constant_vars,
                inequalities=dependency.premise.inequalities,
            )
        )
        matches.sort(key=lambda h: tuple(h[v].sort_key() for v in variables))
        for match in matches:
            satisfied = any(
                find_homomorphism(disjunct, instance, fixed=match) is not None
                for disjunct in dependency.disjuncts
            )
            if not satisfied:
                return dependency, match
    return None


def disjunctive_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    null_factory: Optional[NullFactory] = None,
    max_nodes: int = 100_000,
) -> DisjunctiveChaseTree:
    """Build the disjunctive chase tree of *instance* with *dependencies*.

    Dependencies may freely mix disjunctive and plain tgds, including
    ``Constant(x)`` conjuncts and inequalities.  Raises
    :class:`ChaseError` when the tree exceeds *max_nodes* nodes (a
    guard against recursive dependency sets).
    """
    dependencies = tuple(dependencies)
    if null_factory is None:
        null_factory = NullFactory(
            prefix="M", taken=(null.name for null in instance.nulls())
        )

    budget = current_budget()
    root = DisjunctiveChaseNode(instance)
    node_count = 1
    stack: List[DisjunctiveChaseNode] = [root]
    while stack:
        node = stack.pop()
        if budget is not None:
            budget.charge_chase_steps()
        applicable = _find_applicable(dependencies, node.instance)
        if applicable is None:
            continue
        dependency, match = applicable
        node.applied = dependency
        node.match = tuple(
            sorted(match.items(), key=lambda kv: kv[0].sort_key())
        )
        for index in range(len(dependency.disjuncts)):
            assignment: Dict[Term, Term] = dict(match)
            for variable in dependency.existential_variables(index):
                assignment[variable] = null_factory.fresh(hint=variable.name)
            added = tuple(
                atom.substitute(assignment)
                for atom in dependency.disjuncts[index]
            )
            child = DisjunctiveChaseNode(node.instance.union(added))
            node.children.append(child)
            node_count += 1
            if node_count > max_nodes:
                raise ChaseError(
                    f"disjunctive chase exceeded {max_nodes} nodes",
                    kind="chase_nodes",
                    limit=max_nodes,
                )
        # Visit children left-to-right (stack is LIFO, so push reversed).
        stack.extend(reversed(node.children))
    return DisjunctiveChaseTree(root, node_count)
