"""Homomorphism search.

The paper's homomorphisms (Section 2 and Definition 6.2) map constants
to themselves and nulls/variables to arbitrary terms, such that every
fact maps into the target instance; premise matching additionally
respects ``Constant(x)`` conjuncts and inequalities.

The search is a deterministic backtracking join: atoms are ordered
greedily (most-bound first, smallest relation first) and candidate
facts are scanned in sorted order, so the first homomorphism found is
stable across runs.  Candidates come from the engine's per-instance
fact index — a hash probe on the most selective (relation, position,
term) posting list — which skips facts a linear scan would only
reject, without changing which homomorphisms are found or their
order.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.engine.budget import current_budget
from repro.engine.indexing import fact_index
from repro.engine.kernel import kernel_active, kernel_all_homomorphisms, sql_active

Assignment = Dict[Term, Term]


def _is_mappable(term: Term) -> bool:
    """Nulls and variables are mappable; constants are rigid."""
    return isinstance(term, (Null, Variable))


def _order_atoms(
    atoms: Sequence[Atom], target: Instance, bound: Set[Term]
) -> List[Atom]:
    """Greedy join order: prefer atoms with more bound positions, then
    atoms over smaller relations, then lexicographic, for determinism.

    Scores are maintained incrementally: extents and sort keys are
    computed once, and binding a term decrements the unbound count of
    each atom position it occurs in, so selection is a cheap tuple
    comparison per candidate instead of a full rescore."""
    remaining = sorted(atoms, key=Atom.sort_key)
    count = len(remaining)
    keys = [candidate.sort_key() for candidate in remaining]
    extents = [
        len(target.facts_for(candidate.relation)) for candidate in remaining
    ]
    bound = set(bound)
    unbound_counts: List[int] = []
    occurrences: Dict[Term, List[int]] = {}
    for index, candidate in enumerate(remaining):
        unbound = 0
        for arg in candidate.args:
            if _is_mappable(arg):
                occurrences.setdefault(arg, []).append(index)
                if arg not in bound:
                    unbound += 1
        unbound_counts.append(unbound)

    ordered: List[Atom] = []
    alive = [True] * count
    for _ in range(count):
        best = min(
            (i for i in range(count) if alive[i]),
            key=lambda i: (unbound_counts[i], extents[i], keys[i]),
        )
        alive[best] = False
        ordered.append(remaining[best])
        for arg in remaining[best].args:
            if _is_mappable(arg) and arg not in bound:
                bound.add(arg)
                for position in occurrences[arg]:
                    if alive[position]:
                        unbound_counts[position] -= 1
    return ordered


def _check_constraints(
    assignment: Assignment,
    constant_vars: FrozenSet[Variable],
    inequalities: FrozenSet[Tuple[Variable, Variable]],
) -> bool:
    for variable in constant_vars:
        image = assignment.get(variable)
        if image is not None and not isinstance(image, Constant):
            return False
    for left, right in inequalities:
        left_image = assignment.get(left)
        right_image = assignment.get(right)
        if left_image is not None and right_image is not None:
            if left_image == right_image:
                return False
    return True


def _match_atom(current: Atom, fact: Atom, assignment: Assignment) -> Optional[Assignment]:
    """Try to extend *assignment* so that *current* maps onto *fact*."""
    if current.relation != fact.relation or current.arity != fact.arity:
        return None
    extension: Assignment = {}
    for arg, value in zip(current.args, fact.args):
        if _is_mappable(arg):
            bound_value = assignment.get(arg, extension.get(arg))
            if bound_value is None:
                extension[arg] = value
            elif bound_value != value:
                return None
        elif arg != value:
            return None
    return extension


def all_homomorphisms(
    atoms: Sequence[Atom],
    target: Instance,
    *,
    fixed: Optional[Mapping[Term, Term]] = None,
    constant_vars: Iterable[Variable] = (),
    inequalities: Iterable[Tuple[Variable, Variable]] = (),
) -> Iterator[Assignment]:
    """Enumerate homomorphisms from the conjunction *atoms* into *target*.

    ``fixed`` pre-assigns some mappable terms.  ``constant_vars`` and
    ``inequalities`` are the premise constraints of Definition 6.2:
    ``Constant(x)`` holds when the image is a constant, and each
    inequality requires distinct images.  Results are full assignments
    covering every mappable term occurring in *atoms* (plus the fixed
    pairs), yielded in a deterministic order.
    """
    budget = current_budget()
    if budget is not None:
        # One deadline/RSS probe per search keeps even a sweep that
        # never fires a chase step responsive to its budget.
        budget.check()
    constant_vars = frozenset(constant_vars)
    inequalities = frozenset(
        (left, right) if not right < left else (right, left)
        for left, right in inequalities
    )
    base: Assignment = dict(fixed or {})
    if not _check_constraints(base, constant_vars, inequalities):
        return
    if kernel_active():
        # The compiled backend replays the same greedy atom order and
        # candidate selection over interned ids; results and result
        # order are identical (tests/properties/test_backend_equivalence).
        yield from kernel_all_homomorphisms(
            tuple(atoms), target, base, constant_vars, inequalities
        )
        return
    if sql_active():
        # One conjunctive query over the lowered target; rows are
        # re-sorted into this search's exact DFS yield order.
        from repro.engine.sqlbackend import sql_all_homomorphisms

        yield from sql_all_homomorphisms(
            tuple(atoms), target, base, constant_vars, inequalities
        )
        return
    ordered = _order_atoms(atoms, target, set(base))
    target_index = fact_index(target)

    def search(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        current = ordered[index]
        for fact in target_index.candidates(current, assignment):
            extension = _match_atom(current, fact, assignment)
            if extension is None:
                continue
            assignment.update(extension)
            if _check_constraints(assignment, constant_vars, inequalities):
                yield from search(index + 1, assignment)
            for key in extension:
                del assignment[key]

    yield from search(0, base)


def find_homomorphism(
    atoms: Sequence[Atom],
    target: Instance,
    *,
    fixed: Optional[Mapping[Term, Term]] = None,
    constant_vars: Iterable[Variable] = (),
    inequalities: Iterable[Tuple[Variable, Variable]] = (),
) -> Optional[Assignment]:
    """The first homomorphism from *atoms* into *target*, or None."""
    for assignment in all_homomorphisms(
        atoms,
        target,
        fixed=fixed,
        constant_vars=constant_vars,
        inequalities=inequalities,
    ):
        return assignment
    return None


def instance_homomorphism(
    source: Instance, target: Instance, *, fixed: Optional[Mapping[Term, Term]] = None
) -> Optional[Assignment]:
    """A homomorphism between instances: constants fixed, nulls and
    variables of *source* mapped so every fact lands in *target*."""
    return find_homomorphism(source.sorted_facts(), target, fixed=fixed)


def is_homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Homomorphisms exist in both directions (Section 2)."""
    if instance_homomorphism(left, right) is None:
        return False
    return instance_homomorphism(right, left) is not None


def core(instance: Instance) -> Instance:
    """A core of *instance*: a smallest retract.

    Repeatedly looks for an endomorphism that identifies one null with
    another term; the image shrinks until no such endomorphism exists.
    The result is unique up to isomorphism and homomorphically
    equivalent to the input.
    """
    current = instance
    improved = True
    while improved:
        improved = False
        for null in sorted(current.nulls()):
            candidates = sorted(
                term for term in current.active_domain() if term != null
            )
            for candidate in candidates:
                assignment = instance_homomorphism(
                    current, current, fixed={null: candidate}
                )
                if assignment is not None:
                    image = current.substitute(assignment)
                    if len(image) <= len(current):
                        current = image
                        improved = True
                        break
            if improved:
                break
    return current
