"""The standard (restricted) chase.

Chasing a ground instance I with a finite set of s-t tgds produces a
universal solution for I (Section 2).  The implementation is the
*restricted* chase: a dependency fires on a premise match only when no
extension of the match already satisfies its conclusion, so chase
results are small and match the paper's worked examples (e.g. the
instance U of Figure 1) exactly.

The engine is more general than s-t tgds: it accepts any
disjunction-free dependencies, including tgds with ``Constant(x)``
and inequalities in the premise (needed to chase back with the output
of the Inverse algorithm), and it chases canonical instances
containing logic variables (needed by MinGen and by the
constant-propagation check).  A step bound guards non-terminating
dependency sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chase.homomorphism import Assignment, all_homomorphisms, find_homomorphism
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null, Term
from repro.dependencies.dependency import Dependency
from repro.engine.budget import current_budget
from repro.engine.kernel import kernel_active, sorted_premise_matches, sql_active
from repro.engine.sqlbackend import sql_sorted_premise_matches, sql_stratified_chase
from repro.errors import ChaseError


class NullFactory:
    """Produces fresh labeled nulls with deterministic names."""

    def __init__(self, prefix: str = "N", taken: Iterable[str] = ()) -> None:
        self._prefix = prefix
        self._counter = 0
        self._taken: Set[str] = set(taken)

    def fresh(self, hint: str = "") -> Null:
        while True:
            base = f"{hint}_" if hint else ""
            name = f"{base}{self._prefix}{self._counter}"
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return Null(name)

    def reserve(self, names: Iterable[str]) -> None:
        self._taken.update(names)


@dataclass(frozen=True)
class ChaseStep:
    """One firing: which dependency, on which match, adding which facts."""

    dependency: Dependency
    homomorphism: Tuple[Tuple[Term, Term], ...]
    added: Tuple[Atom, ...]


@dataclass(frozen=True)
class ChaseResult:
    """The outcome of a chase run."""

    instance: Instance
    produced: Instance
    steps: Tuple[ChaseStep, ...]

    def __iter__(self):
        return iter(self.instance)


def _sorted_matches(
    dependency: Dependency, instance: Instance
) -> Sequence[Assignment]:
    """Premise matches in a deterministic order (by matched images)."""
    if kernel_active():
        # Same matches, same order — computed semi-naively over the
        # sub-instance lattice when the instance is ground.
        return sorted_premise_matches(dependency, instance)
    if sql_active():
        # Same matches, same order — the premise join runs in SQLite.
        return sql_sorted_premise_matches(dependency, instance)
    variables = dependency.premise_variables()
    matches = list(
        all_homomorphisms(
            dependency.premise.atoms,
            instance,
            constant_vars=dependency.premise.constant_vars,
            inequalities=dependency.premise.inequalities,
        )
    )
    matches.sort(key=lambda h: tuple(h[v].sort_key() for v in variables))
    return matches


def _conclusion_satisfied(
    dependency: Dependency, match: Assignment, instance: Instance
) -> bool:
    """Is some disjunct satisfied under an extension of *match*?"""
    for disjunct in dependency.disjuncts:
        if find_homomorphism(disjunct, instance, fixed=match) is not None:
            return True
    return False


def _apply(
    dependency: Dependency,
    match: Assignment,
    factory: NullFactory,
) -> Tuple[Atom, ...]:
    """Instantiate the (single) disjunct, inventing nulls for the y's."""
    assignment: Dict[Term, Term] = dict(match)
    for variable in dependency.existential_variables(0):
        assignment[variable] = factory.fresh(hint=variable.name)
    return tuple(atom.substitute(assignment) for atom in dependency.disjuncts[0])


def chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    null_factory: Optional[NullFactory] = None,
    max_steps: int = 10_000,
    oblivious: bool = False,
    trace: bool = True,
) -> ChaseResult:
    """Run the restricted chase of *instance* with *dependencies*.

    Dependencies must be disjunction-free (use
    :func:`repro.chase.disjunctive.disjunctive_chase` otherwise).
    Returns the combined instance, the produced (new) facts, and the
    step trace.  Raises :class:`ChaseError` when *max_steps* firings
    do not reach a fixpoint.  When a :class:`~repro.engine.budget.Budget`
    is ambient (see :func:`~repro.engine.budget.use_budget`), every
    firing is charged against its chase-step cap and wall-clock
    deadline, so a runaway chase stops mid-run with
    :class:`~repro.errors.BudgetExceeded` instead of holding a sweep
    hostage.

    With ``oblivious=True`` the chase fires on *every* premise match,
    never checking whether the conclusion is already satisfied (the
    naive/oblivious chase).  The result is larger but homomorphically
    equivalent for s-t tgds; the restricted default matches the
    paper's worked examples (e.g. Figure 1's U) exactly.  The
    oblivious variant terminates only for stratified (s-t style)
    dependency sets and refuses premises with constraints, where
    skipping the satisfaction check would change semantics subtly.

    ``trace=False`` declares the caller will not read ``.steps`` (the
    facts and fresh-null names are unaffected).  The object and kernel
    backends ignore it; the SQL backend uses it to run full tgds as
    bulk set operations instead of per-match firings.
    """
    dependencies = tuple(dependencies)
    for dependency in dependencies:
        if not dependency.is_disjunction_free():
            raise ChaseError(
                "the standard chase cannot apply disjunctive dependencies; "
                "use disjunctive_chase"
            )
    if null_factory is None:
        null_factory = NullFactory(
            taken=(null.name for null in instance.nulls())
        )
    budget = current_budget()

    # When no conclusion relation feeds back into any premise relation
    # (the s-t tgd case), premise matches are fixed once and for all.
    premise_relations = frozenset(
        relation for dep in dependencies for relation in dep.premise_relations()
    )
    conclusion_relations = frozenset(
        relation for dep in dependencies for relation in dep.conclusion_relations()
    )
    stratified = premise_relations.isdisjoint(conclusion_relations)

    facts: Set[Atom] = set(instance.facts)
    current = instance
    steps: List[ChaseStep] = []

    if oblivious:
        if not stratified:
            raise ChaseError(
                "the oblivious chase is only supported for stratified "
                "(source-to-target style) dependency sets"
            )
        for dependency in dependencies:
            if not dependency.premise.is_plain():
                raise ChaseError(
                    "the oblivious chase does not support Constant()/"
                    "inequality premises"
                )
            for match in _sorted_matches(dependency, current):
                if budget is not None:
                    budget.charge_chase_steps()
                added = _apply(dependency, match, null_factory)
                facts.update(added)
                steps.append(_record(dependency, match, added))
                if len(steps) > max_steps:
                    raise ChaseError(
                        f"chase exceeded {max_steps} steps",
                        kind="chase_steps",
                        limit=max_steps,
                    )
        final = Instance(frozenset(facts))
        return ChaseResult(final, final.difference(instance), tuple(steps))

    if stratified:
        if sql_active():
            # The whole stratified chase as SQL rounds; None means a
            # premise was too wide for one join — fall through to the
            # interpreted loop (whose match lists still come from SQL).
            result = sql_stratified_chase(
                instance,
                dependencies,
                null_factory=null_factory,
                max_steps=max_steps,
                trace=trace,
            )
            if result is not None:
                return result
        # The working instance (and therefore its fact index) is only
        # rebuilt when a firing actually added facts, not per match.
        working = instance
        for dependency in dependencies:
            for match in _sorted_matches(dependency, current):
                if budget is not None:
                    budget.check()
                if len(working) != len(facts):
                    working = Instance(frozenset(facts))
                if _conclusion_satisfied(dependency, match, working):
                    continue
                if budget is not None:
                    budget.charge_chase_steps()
                added = _apply(dependency, match, null_factory)
                facts.update(added)
                steps.append(_record(dependency, match, added))
                if len(steps) > max_steps:
                    raise ChaseError(
                        f"chase exceeded {max_steps} steps",
                        kind="chase_steps",
                        limit=max_steps,
                    )
        final = Instance(frozenset(facts)) if len(facts) != len(working) else working
        return ChaseResult(final, final.difference(instance), tuple(steps))

    # General (possibly recursive) case: recompute matches to fixpoint.
    while True:
        working = Instance(frozenset(facts))
        fired = False
        for dependency in dependencies:
            for match in _sorted_matches(dependency, working):
                if budget is not None:
                    budget.check()
                if _conclusion_satisfied(dependency, match, working):
                    continue
                if budget is not None:
                    budget.charge_chase_steps()
                added = _apply(dependency, match, null_factory)
                facts.update(added)
                steps.append(_record(dependency, match, added))
                if len(steps) > max_steps:
                    raise ChaseError(
                        f"chase exceeded {max_steps} steps",
                        kind="chase_steps",
                        limit=max_steps,
                    )
                fired = True
                break
            if fired:
                break
        if not fired:
            final = working
            return ChaseResult(final, final.difference(instance), tuple(steps))


def _record(
    dependency: Dependency, match: Assignment, added: Tuple[Atom, ...]
) -> ChaseStep:
    ordered = tuple(sorted(match.items(), key=lambda kv: kv[0].sort_key()))
    return ChaseStep(dependency, ordered, added)
