"""Command-line interface: run the paper-reproduction experiments.

Usage::

    python -m repro.cli list                  # list experiments
    python -m repro.cli run E11               # one experiment (Figure 1)
    python -m repro.cli run E4 E5 --json      # machine-readable reports
    python -m repro.cli all                   # the whole suite
    python -m repro.cli all --workers 4       # parallel bounded checks
    python -m repro.cli run E2 --engine-stats # phase timings + cache stats
    python -m repro.cli all --deadline 60     # partial verdicts, exit code 3
    python -m repro.cli export Decomposition --format sql
    python -m repro.cli export Example4.5 --format json
    python -m repro.cli check invertibility Example5.4   # one job, in-process
    python -m repro.cli check subset Decomposition --max-facts 2 \
        --server http://127.0.0.1:8642   # same job via a running daemon

Engine knobs (also settable via the ``REPRO_WORKERS`` environment
variable): ``--workers`` fans bounded checks across a process pool,
``--cache-size`` bounds the chase/verdict memo caches, and
``--engine-stats`` prints per-phase timings and cache hit rates to
stderr after the run.

Governance knobs: ``--deadline`` / ``--max-instances`` /
``--max-chase-steps`` / ``--max-rss-mb`` bound every sweep (the
``REPRO_DEADLINE`` / ``REPRO_MAX_INSTANCES`` / ``REPRO_MAX_CHASE_STEPS``
/ ``REPRO_MAX_RSS_MB`` environment knobs); ``--checkpoint PATH`` keeps
a resumable journal of verified sweep prefixes and ``--resume`` honours
it on the next run.  When a limit trips, checks report *partial*
verdicts instead of crashing.

``--symmetry orbits`` (the ``REPRO_SYMMETRY`` knob) makes every
bounded sweep enumerate one representative per domain-permutation
orbit instead of every universe instance — same verdicts, up to
|domain|! less work — falling back to full sweeps wherever the
reduction would be unsound (mappings mentioning literal constants,
universes not closed under permutation).

``--backend kernel`` (the ``REPRO_BACKEND`` knob) runs homomorphism
searches, premise matching, and verdict caching on the compiled
integer kernel (term interning + array join plans + a delta-driven
chase) instead of interpreting the object datamodel — same verdicts,
witnesses, and counters, typically several times faster on sweeps.

``--store PATH`` (the ``REPRO_STORE`` knob) persists the
content-addressed chase/verdict caches to an on-disk SQLite store
shared across runs, processes, and CI jobs — a warm store makes
re-runs of the same sweeps several times faster.  ``--shards N``
partitions every bounded sweep's outer loop into N content-addressed
shards; with ``--shard-id K`` this process sweeps only shard K
(independent workers coordinate through the ``--checkpoint`` journal's
per-shard entries and lease files, stealing expired leases from dead
workers), without it the process runs every unclaimed shard and merges
the shard reports back into the unsharded report.

Exit codes: 0 — everything passed exhaustively; 1 — a check failed;
2 — usage error; 3 — no failures, but at least one sweep stopped early
on a deadline/budget (coverage ``"deadline"`` / ``"budget"``);
4 — no failures, but a worker fault was left unrecovered (coverage
``"faulted"``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.experiments import all_experiment_ids, run_all, run_experiment
from repro.experiments.base import ExperimentReport

#: Exit codes for partial (non-exhaustive) but non-failing runs.
EXIT_PARTIAL = 3
EXIT_FAULTED = 4


def _report_to_json(report: ExperimentReport, elapsed: Optional[float] = None) -> dict:
    payload = {
        "id": report.experiment_id,
        "title": report.title,
        "paper_artifact": report.paper_artifact,
        "passed": report.passed,
        "checks": [
            {"name": check.name, "passed": check.passed, "detail": check.detail}
            for check in report.checks
        ],
        "lines": list(report.lines),
    }
    if elapsed is not None:
        payload["seconds"] = round(elapsed, 3)
    return payload


def _coverage_to_json() -> List[dict]:
    """The partial-verdict events of this run, for JSON consumers."""
    from repro.engine.budget import coverage_events

    return [
        {
            "phase": event.phase,
            "coverage": event.coverage,
            "detail": event.detail,
            "instances_checked": event.instances_checked,
        }
        for event in coverage_events()
    ]


def _command_list() -> int:
    from repro.experiments.registry import _REGISTRY  # noqa: internal listing

    for experiment_id, runner in _REGISTRY.items():
        doc = sys.modules[runner.__module__].__doc__ or ""
        first_line = doc.strip().splitlines()[0] if doc.strip() else ""
        print(f"{experiment_id:>4}  {first_line}")
    return 0


def _command_run(experiment_ids: List[str], as_json: bool) -> int:
    failures = 0
    payloads = []
    for experiment_id in experiment_ids:
        started = time.perf_counter()
        report = run_experiment(experiment_id)
        elapsed = time.perf_counter() - started
        if as_json:
            payloads.append(_report_to_json(report, elapsed))
        else:
            print(report.render())
            print(f"  ({elapsed:.2f}s)")
            print()
        if not report.passed:
            failures += 1
    if as_json:
        coverage = _coverage_to_json()
        if coverage:
            payloads.append({"coverage_events": coverage})
        print(json.dumps(payloads, indent=2, ensure_ascii=False))
    return 1 if failures else 0


def _command_all(as_json: bool) -> int:
    started = time.perf_counter()
    reports = run_all()
    elapsed = time.perf_counter() - started
    if as_json:
        print(
            json.dumps(
                {
                    "experiments": [_report_to_json(r) for r in reports],
                    "passed": sum(r.passed for r in reports),
                    "total": len(reports),
                    "seconds": round(elapsed, 1),
                    "coverage_events": _coverage_to_json(),
                },
                indent=2,
                ensure_ascii=False,
            )
        )
    else:
        for report in reports:
            print(report.render())
            print()
        passed = sum(report.passed for report in reports)
        checks = sum(len(report.checks) for report in reports)
        checks_passed = sum(
            sum(check.passed for check in report.checks) for report in reports
        )
        print(
            f"== SUITE: {passed}/{len(reports)} experiments passed, "
            f"{checks_passed}/{checks} checks, {elapsed:.1f}s =="
        )
    return 0 if all(report.passed for report in reports) else 1


def _command_export(mapping_name: str, output_format: str) -> int:
    from repro.catalog import all_catalog_mappings

    by_name = {mapping.name: mapping for mapping in all_catalog_mappings()}
    if mapping_name not in by_name:
        print(
            f"unknown mapping {mapping_name!r}; known: {', '.join(sorted(by_name))}",
            file=sys.stderr,
        )
        return 2
    mapping = by_name[mapping_name]
    if output_format == "json":
        from repro.export import mapping_to_json

        print(json.dumps(mapping_to_json(mapping), indent=2, ensure_ascii=False))
        return 0
    from repro.export import SqlExportError, mapping_to_sql

    try:
        print(mapping_to_sql(mapping))
    except SqlExportError as error:
        print(f"no SQL rendering: {error}", file=sys.stderr)
        return 2
    return 0


def _check_payload(arguments: argparse.Namespace) -> dict:
    """The job payload a ``check`` invocation describes (the same
    canonical shape ``python -m repro.service submit`` produces)."""
    payload: dict = {"kind": arguments.kind}
    if arguments.kind == "experiment":
        payload["experiment"] = arguments.target
        return payload
    if arguments.kind == "algebra":
        payload["expression"] = arguments.target
        if getattr(arguments, "check", None):
            payload["check"] = arguments.check
        if getattr(arguments, "explain_plan", False):
            payload["explain_plan"] = True
    else:
        payload["mapping"] = arguments.target
    if arguments.reverse:
        payload["reverse"] = arguments.reverse
    if arguments.domain:
        payload["domain"] = arguments.domain
    if arguments.max_facts is not None:
        payload["max_facts"] = arguments.max_facts
    for option in (
        "workers",
        "symmetry",
        "backend",
        "shards",
        "shard_id",
        "deadline",
        "max_instances",
        "max_chase_steps",
        "plan",
    ):
        value = getattr(arguments, option, None)
        if value is not None:
            payload[option] = value
    return payload


def _command_check(arguments: argparse.Namespace) -> int:
    """One mapping-checking job, printed and exited exactly as the
    service daemon would report it.

    Byte-identity between the two entry points is by construction:
    with ``--server`` the payload goes to a running daemon and the
    response's embedded rendering is printed verbatim; without it the
    same canonical spec runs in-process through
    :func:`repro.service.jobs.execute_job` — the single place the
    rendering is produced.
    """
    from repro.errors import ServiceError

    payload = _check_payload(arguments)
    try:
        if arguments.server:
            from repro.service.client import ServiceClient

            client = ServiceClient(arguments.server)
            job = client.submit(payload)
            _status, job = client.result(job["id"], wait=arguments.wait)
            outcome = job.get("outcome") or {}
            print(outcome.get("rendering", f"job {job['id']}: {job['state']}"))
            code = job.get("exit_code")
            return int(code) if code is not None else EXIT_PARTIAL
        from repro.engine.checkpoint import CheckpointJournal
        from repro.service.jobs import budget_for, execute_job
        from repro.service.protocol import normalize_job

        spec = normalize_job(payload)
        checkpoint = None
        if arguments.checkpoint:
            checkpoint = CheckpointJournal(
                arguments.checkpoint, resume=arguments.resume
            )
        outcome = execute_job(spec, budget=budget_for(spec), checkpoint=checkpoint)
        print(outcome.rendering)
        return outcome.exit_code
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for bounded checks (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="capacity of the engine's chase/verdict memo caches",
    )
    parser.add_argument(
        "--engine-stats",
        action="store_true",
        help="print engine phase timings and cache stats to stderr",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per bounded check; sweeps that outlive it "
        "report partial verdicts (exit code 3 instead of crashing)",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=None,
        metavar="N",
        help="cap on universe instances per sweep before reporting partially",
    )
    parser.add_argument(
        "--max-chase-steps",
        type=int,
        default=None,
        metavar="N",
        help="cap on chase firings per process before reporting partially",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MIB",
        help="resident-memory watermark (MiB); sweeps stop when exceeded",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal file recording verified sweep prefixes",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume sweeps from the --checkpoint journal instead of restarting",
    )
    parser.add_argument(
        "--symmetry",
        choices=("full", "orbits"),
        default=None,
        help="sweep every universe instance (full, the default) or one "
        "representative per domain-permutation orbit (orbits); orbit "
        "sweeps fall back to full where the reduction would be unsound",
    )
    parser.add_argument(
        "--backend",
        choices=("object", "kernel", "sql"),
        default=None,
        help="execution backend for bounded checks: interpret the object "
        "datamodel directly (object, the default), run compiled joins "
        "over interned integer ids (kernel), or execute the chase and "
        "homomorphism joins inside SQLite (sql); verdicts and witnesses "
        "are identical either way",
    )
    parser.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="scratch SQLite database file for --backend sql "
        "(REPRO_SQL_DB); defaults to a per-process in-memory database",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="on-disk content-addressed chase/verdict store (SQLite) "
        "backing the in-memory memo caches as a write-through second "
        "level; shared across runs and processes (REPRO_STORE)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition every bounded sweep's outer loop into N "
        "content-addressed shards (REPRO_SHARDS)",
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        default=None,
        metavar="K",
        help="sweep only shard K of --shards in this process (reports "
        "then cover that shard alone); omit to run/claim every shard "
        "here (REPRO_SHARD_ID)",
    )
    parser.add_argument(
        "--plan",
        choices=("auto", "materialize", "membership"),
        default=None,
        help="evaluation plan for mapping expressions (algebra checks): "
        "let the cost model pick (auto, the default), always "
        "materialize compositions with MinGen first (materialize), or "
        "avoid materializing via staged chases / per-pair membership "
        "checks (membership); verdicts and reports are identical "
        "either way (REPRO_PLAN)",
    )


def _configure_engine(arguments: argparse.Namespace) -> None:
    from repro.engine import resize_caches, set_default_workers

    if getattr(arguments, "workers", None):
        set_default_workers(arguments.workers)
    if getattr(arguments, "cache_size", None):
        resize_caches(arguments.cache_size)
    # Governance flags travel as environment knobs so forked workers
    # and nested checker entry points (Budget.from_env / default_journal)
    # all see them without further plumbing.
    for flag, knob in (
        ("deadline", "REPRO_DEADLINE"),
        ("max_instances", "REPRO_MAX_INSTANCES"),
        ("max_chase_steps", "REPRO_MAX_CHASE_STEPS"),
        ("max_rss_mb", "REPRO_MAX_RSS_MB"),
        ("checkpoint", "REPRO_CHECKPOINT"),
        ("symmetry", "REPRO_SYMMETRY"),
        ("backend", "REPRO_BACKEND"),
        ("sql_db", "REPRO_SQL_DB"),
        ("store", "REPRO_STORE"),
        ("shards", "REPRO_SHARDS"),
        ("shard_id", "REPRO_SHARD_ID"),
        ("plan", "REPRO_PLAN"),
    ):
        value = getattr(arguments, flag, None)
        if value is not None:
            os.environ[knob] = str(value)
    if getattr(arguments, "resume", False):
        os.environ["REPRO_RESUME"] = "1"


def _coverage_exit(code: int) -> int:
    """Upgrade a passing exit code when sweeps were cut short.

    Failures keep exit code 1 (a violation found under a budget is
    still a violation); passes degrade to ``EXIT_PARTIAL`` /
    ``EXIT_FAULTED`` so scripts can tell "verified" from "ran out of
    budget while verifying".
    """
    from repro.engine.budget import coverage_events, worst_coverage

    events = coverage_events()
    if code != 0 or not events:
        return code
    worst = worst_coverage(*(event.coverage for event in events))
    summary = ", ".join(
        f"{event.phase}[{event.coverage}"
        f"@{event.instances_checked}]"
        for event in events[:8]
    )
    print(
        f"note: {len(events)} sweep(s) returned partial verdicts "
        f"(worst coverage: {worst}): {summary}",
        file=sys.stderr,
    )
    return EXIT_FAULTED if worst == "faulted" else EXIT_PARTIAL


def _report_engine(arguments: argparse.Namespace) -> None:
    from repro.engine.cache import flush_active_store

    flush_active_store()  # persist the run's store traffic before exit
    if getattr(arguments, "engine_stats", False):
        from repro.engine import engine_stats

        print(engine_stats().render(), file=sys.stderr)


def _command_fsck(arguments: argparse.Namespace) -> int:
    """Audit/repair durable state; exit 0 when everything trustworthy.

    Exit codes: 0 — clean (or every corruption was repaired), 1 —
    corruption found and left in place, 2 — usage error (no target, or
    a target file that does not exist).
    """
    from repro.engine.fsck import fsck_checkpoint, fsck_store

    targets = []
    if arguments.store:
        targets.append(("store", arguments.store, fsck_store))
    if arguments.checkpoint:
        targets.append(("checkpoint", arguments.checkpoint, fsck_checkpoint))
    if not targets:
        print("fsck: nothing to audit (pass --store and/or --checkpoint)",
              file=sys.stderr)
        return 2
    reports = []
    for kind, path, audit in targets:
        if not os.path.exists(path):
            print(f"fsck: no such {kind} file: {path}", file=sys.stderr)
            return 2
        reports.append(audit(path, repair=arguments.repair))
    if arguments.json:
        print(json.dumps([report.to_json() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
    unrepaired = any(
        not report.clean and report.repaired < report.corrupt
        for report in reports
    )
    return 1 if unrepaired else 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Quasi-inverses of Schema Mappings' (PODS 2007)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help=f"experiment ids ({', '.join(all_experiment_ids())})",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable reports"
    )
    _add_engine_options(run_parser)

    all_parser = subparsers.add_parser("all", help="run the whole suite")
    all_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable reports"
    )
    _add_engine_options(all_parser)

    check_parser = subparsers.add_parser(
        "check",
        help="run one mapping-checking job (the service's job kinds, "
        "in-process or via --server against a running daemon)",
    )
    check_parser.add_argument(
        "kind",
        choices=(
            "experiment",
            "invertibility",
            "subset",
            "unique",
            "roundtrip",
            "algebra",
        ),
    )
    check_parser.add_argument(
        "target",
        help="experiment id (experiment), catalog mapping name, or a "
        "mapping expression like 'compose(Union, Decomposition)' "
        "(algebra)",
    )
    check_parser.add_argument(
        "--reverse",
        default=None,
        help="reverse mapping (roundtrip) or reverse expression "
        "(algebra --check inverse)",
    )
    check_parser.add_argument(
        "--check",
        choices=("unique", "subset", "invertibility", "inverse"),
        default=None,
        help="which bounded check an algebra job runs over its "
        "expression (default: invertibility)",
    )
    check_parser.add_argument(
        "--explain-plan",
        action="store_true",
        help="append the chosen evaluation plan — rewrite trace, cost "
        "estimates vs. actuals — to an algebra report",
    )
    check_parser.add_argument(
        "--domain", default=None, help="comma-separated constants (default a,b)"
    )
    check_parser.add_argument("--max-facts", type=int, default=None)
    check_parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="submit to a running service daemon instead of checking "
        "in-process; the printed report and exit code are identical",
    )
    check_parser.add_argument(
        "--wait",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="with --server: how long to wait for the terminal report",
    )
    _add_engine_options(check_parser)

    export_parser = subparsers.add_parser(
        "export", help="export a catalog mapping as SQL or JSON"
    )
    export_parser.add_argument("mapping", help="catalog mapping name, e.g. Decomposition")
    export_parser.add_argument(
        "--format", choices=("sql", "json"), default="sql", dest="output_format"
    )

    fsck_parser = subparsers.add_parser(
        "fsck",
        help="audit (and optionally repair) a verdict store and/or "
        "checkpoint journal: per-entry checksums, engine stamps, torn files",
    )
    fsck_parser.add_argument(
        "--store", metavar="PATH", help="verdict-store SQLite file to audit"
    )
    fsck_parser.add_argument(
        "--checkpoint", metavar="PATH", help="checkpoint journal to audit"
    )
    fsck_parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt entries and rewrite verified state "
        "(never destroys data: quarantined rows/entries are kept aside)",
    )
    fsck_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable reports"
    )

    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "export":
        return _command_export(arguments.mapping, arguments.output_format)
    if arguments.command == "fsck":
        return _command_fsck(arguments)
    _configure_engine(arguments)
    try:
        if arguments.command == "check":
            return _command_check(arguments)
        if arguments.command == "run":
            return _coverage_exit(
                _command_run(arguments.experiments, arguments.json)
            )
        return _coverage_exit(_command_all(arguments.json))
    finally:
        _report_engine(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
