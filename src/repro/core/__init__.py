"""The paper's primary contribution: schema mappings, solution-space
reasoning, minimal generators, and the QuasiInverse / Inverse
algorithms, together with the unifying (∼1,∼2)-inverse framework of
Section 3."""

from repro.core.mapping import (
    MappingError,
    SchemaMapping,
    data_exchange_equivalent,
    identity_mapping,
    is_solution,
    solutions_contained,
    universal_solution,
)
from repro.core.generators import Generator, MinGenConfig, minimal_generators
from repro.core.quasi_inverse import lav_quasi_inverse, quasi_inverse
from repro.core.inverse import (
    InverseError,
    constant_propagation_report,
    has_constant_propagation,
    inverse,
    prime_atoms,
)
from repro.core.framework import (
    Equality,
    EquivalenceRelation,
    InverseCheckReport,
    SolutionEquivalence,
    SubsetPropertyReport,
    is_generalized_inverse,
    is_inverse,
    is_quasi_inverse,
    subset_property,
    unique_solutions_property,
)
from repro.core.composition import compose_full, composition_membership
from repro.core.generators import lemma_4_4_bound
from repro.core.implication import (
    logically_equivalent,
    logically_implies,
    minimize_dependency_set,
)
from repro.core.inverse import omega
from repro.core.skolem import (
    SkolemMapping,
    SkolemRule,
    SkolemTerm,
    compose_skolem,
    skolem_exchange,
    skolemize,
)

__all__ = [
    "Equality",
    "EquivalenceRelation",
    "Generator",
    "InverseCheckReport",
    "InverseError",
    "MappingError",
    "MinGenConfig",
    "SchemaMapping",
    "SkolemMapping",
    "SkolemRule",
    "SkolemTerm",
    "SolutionEquivalence",
    "SubsetPropertyReport",
    "compose_full",
    "compose_skolem",
    "composition_membership",
    "constant_propagation_report",
    "data_exchange_equivalent",
    "has_constant_propagation",
    "identity_mapping",
    "inverse",
    "is_generalized_inverse",
    "is_inverse",
    "is_quasi_inverse",
    "is_solution",
    "lav_quasi_inverse",
    "lemma_4_4_bound",
    "logically_equivalent",
    "logically_implies",
    "minimal_generators",
    "minimize_dependency_set",
    "omega",
    "prime_atoms",
    "quasi_inverse",
    "skolem_exchange",
    "skolemize",
    "solutions_contained",
    "subset_property",
    "unique_solutions_property",
    "universal_solution",
]
