"""Composition of schema mappings (Section 2) and an exact
composition-membership decision procedure.

``composition_membership(M, M', I1, I2)`` decides whether
(I1, I2) ∈ Inst(M ∘ M'), i.e. whether some intermediate target
instance J satisfies (I1, J) ⊨ Sigma and (J, I2) ⊨ Sigma'.  Although
J ranges over an infinite set, a finite candidate set suffices:

* (I1, J) ⊨ Sigma exactly when J contains a homomorphic image of
  chase(I1); and premise satisfaction of Sigma' is monotone in J
  (every premise match in a subinstance is a match in the
  superinstance, and a dependency's conclusion constrains I2 only).
  Hence if any J works, the homomorphic image h(chase(I1)) ⊆ J works
  as well.
* It therefore suffices to try every image of chase(I1) under maps
  sending each null to: itself, another null of the chase, an
  active-domain constant of I1 or I2, or one of k fresh constants
  (k = number of nulls) — fresh constants beyond the equality pattern
  they realize are interchangeable because dependencies contain no
  constant symbols.

This makes the membership test a decision procedure (no approximation),
at a cost exponential in the number of nulls of chase(I1); the
``max_nulls`` guard protects against misuse on large instances.

The module also implements ``compose_full``: the classical composition
algorithm for the case where the first mapping is full (cf. the
composition literature the paper builds on, [5] in its references),
obtained by resolving each premise of the second mapping against the
first mapping's conclusions — a direct reuse of MinGen.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datamodel.atoms import Atom, atoms_variables
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.core.generators import MinGenConfig, minimal_generators
from repro.core.mapping import (
    MappingError,
    SchemaMapping,
    is_solution,
    universal_solution,
)
from repro.engine.instrumentation import engine_stats
from repro.errors import CompositionBudgetError


def _candidate_intermediates(
    mapping: SchemaMapping,
    left: Instance,
    right: Instance,
    max_nulls: int,
) -> Iterator[Instance]:
    """All sufficient candidate intermediate instances J (see module doc)."""
    chased = universal_solution(mapping, left)
    chase_nulls = sorted(chased.nulls())
    if len(chase_nulls) > max_nulls:
        raise CompositionBudgetError(
            f"chase has {len(chase_nulls)} nulls (> max_nulls={max_nulls})",
            kind="composition_nulls",
            limit=max_nulls,
            consumed=len(chase_nulls),
        )
    adom_constants = sorted(
        set(left.constants()) | set(right.constants())
    )
    fresh_constants = []
    taken = {c.value for c in adom_constants if isinstance(c.value, str)}
    counter = 0
    while len(fresh_constants) < len(chase_nulls):
        candidate = f"fresh_{counter}"
        counter += 1
        if candidate not in taken:
            fresh_constants.append(Constant(candidate))
    targets: List[Term] = list(chase_nulls) + adom_constants + fresh_constants
    if not chase_nulls:
        yield chased
        return
    for images in product(targets, repeat=len(chase_nulls)):
        mapping_dict: Dict[Term, Term] = dict(zip(chase_nulls, images))
        yield chased.substitute(mapping_dict)


def composition_membership(
    first: SchemaMapping,
    second: SchemaMapping,
    left: Instance,
    right: Instance,
    *,
    max_nulls: int = 7,
) -> bool:
    """Decide (left, right) ∈ Inst(first ∘ second).

    *first* must be a tgd mapping (so the chase characterizes its
    solutions); *second* may use the full dependency language
    (disjunctions, Constant(), inequalities).
    """
    stats = engine_stats()
    with stats.phase("compose.membership"):
        for candidate in _candidate_intermediates(first, left, right, max_nulls):
            stats.bump("membership_candidates_tried")
            if is_solution(second, candidate, right):
                return True
    return False


def compose_full(
    first: SchemaMapping,
    second: SchemaMapping,
    *,
    mingen_config: Optional[MinGenConfig] = None,
    name: str = "",
) -> SchemaMapping:
    """Compose two mappings when the first is specified by *full* tgds.

    For each tgd of *second* with premise phi2(x, u) over the middle
    schema, every minimal generator beta(x', z) of ``exists u phi2``
    with respect to *first* (where x' are the variables shared with
    the conclusion) yields a composed tgd beta -> conclusion.  The
    result specifies first ∘ second.
    """
    if not first.is_tgd_mapping() or not first.is_full():
        raise MappingError("compose_full requires a full tgd first mapping")
    if not second.is_tgd_mapping():
        raise MappingError("compose_full requires a tgd second mapping")
    if first.target.relations != second.source.relations:
        raise MappingError(
            "middle schemas differ: "
            f"{first.target} vs {second.source}"
        )

    stats = engine_stats()
    composed: List[Dependency] = []
    seen = set()
    with stats.phase("compose.full"):
        for sigma in second.dependencies:
            frontier = sigma.frontier()
            goal = sigma.premise.atoms
            for generator in minimal_generators(
                first, goal, frontier, config=mingen_config
            ):
                candidate = Dependency(
                    Premise(generator.atoms), (sigma.disjuncts[0],)
                )
                key = candidate.canonical_form()
                if key not in seen:
                    seen.add(key)
                    composed.append(candidate)
                    stats.bump("compose_rules_emitted")
    return SchemaMapping(
        first.source,
        second.target,
        tuple(composed),
        name=name
        or (
            f"{first.name}∘{second.name}"
            if first.name and second.name
            else ""
        ),
    )
