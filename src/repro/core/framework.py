"""The unifying framework of Section 3: (∼1,∼2)-inverses.

The key idea is to relax the identity Inst(Id) = Inst(M ∘ M') modulo
equivalence relations contained in ∼M (equal solution spaces):

* :class:`Equality` is ``=`` — plugging it in on both sides gives the
  notion of an *inverse* (Corollary 3.6);
* :class:`SolutionEquivalence` is ∼M itself — giving *quasi-inverses*
  (Definition 3.8), the most relaxed notion in the spectrum
  (Proposition 3.7).

Theorem 3.5 makes the (∼1,∼2)-subset property (Definition 3.4) the
exact existence criterion.  The subset property and the
(∼1,∼2)-inverse definition quantify over *all* ground instances; the
checkers here quantify over explicitly supplied finite universes and
are therefore *falsifiers*: a reported violation (with witnesses) is
a real violation, while a pass is evidence bounded by the universe.
All of the paper's counterexamples have witnesses small enough for
these checkers to find (see experiments E2, E4, E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro.datamodel.instances import Instance
from repro.core.mapping import (
    SchemaMapping,
    data_exchange_equivalent,
    solutions_contained,
)
from repro.core.composition import composition_membership
from repro.engine.budget import (
    Budget,
    COVERAGE_EXHAUSTIVE,
    SweepVerdict,
    current_budget,
    record_coverage,
    use_budget,
)
from repro.engine.checkpoint import CheckpointJournal, default_journal, sweep_key
from repro.engine.instrumentation import engine_stats
from repro.engine.kernel import use_backend
from repro.engine.parallel import ParallelUniverseRunner, get_shared
from repro.engine.symmetry import (
    SweepPlan,
    mapping_permutation_invariant,
    plan_sweep,
    use_ground_keys,
)
from repro.errors import BudgetExceeded, WorkerFault, governed_coverage


class EquivalenceRelation(Protocol):
    """An equivalence relation on ground instances."""

    def related(self, left: Instance, right: Instance) -> bool:
        """Are the two ground instances equivalent?"""
        ...


@dataclass(frozen=True)
class Equality:
    """The equality relation ``=`` (gives inverses)."""

    def related(self, left: Instance, right: Instance) -> bool:
        return left == right

    def __str__(self) -> str:
        return "="


@dataclass(frozen=True)
class SolutionEquivalence:
    """The paper's ∼M: equal spaces of solutions (gives quasi-inverses)."""

    mapping: SchemaMapping

    def related(self, left: Instance, right: Instance) -> bool:
        return data_exchange_equivalent(self.mapping, left, right)

    def __str__(self) -> str:
        return f"∼{self.mapping.name or 'M'}"


def _relation_permutation_invariant(relation: EquivalenceRelation) -> bool:
    """Is *relation* invariant under permutations of the constants?

    Equality always is; a solution-space relation inherits invariance
    from its mapping.  Unknown custom relations are conservatively
    treated as non-invariant, which keeps their sweeps on the full
    universe.
    """
    if isinstance(relation, Equality):
        return True
    mapping = getattr(relation, "mapping", None)
    if mapping is not None and hasattr(mapping, "dependencies"):
        return mapping_permutation_invariant(mapping)
    return False


def _plan_sweep(
    symmetry: Optional[str],
    universe: Sequence[Instance],
    *,
    mappings: Sequence[SchemaMapping] = (),
    relations: Sequence[EquivalenceRelation] = (),
) -> SweepPlan:
    """:func:`repro.engine.symmetry.plan_sweep`, additionally vetoing
    the reduction when any equivalence relation involved is not known
    to be permutation-invariant."""
    return plan_sweep(
        symmetry,
        universe,
        mappings=mappings,
        extra_invariant=all(
            _relation_permutation_invariant(rel) for rel in relations
        ),
    )


@dataclass(frozen=True)
class SubsetPropertyReport:
    """Outcome of a bounded (∼1,∼2)-subset property check.

    ``violations`` lists pairs (I1, I2) with Sol(I2) ⊆ Sol(I1) for
    which no witness pair (I1', I2') with I1 ∼1 I1', I2 ∼2 I2' and
    I1' ⊆ I2' exists in the witness universe.  ``checked`` counts the
    containment pairs examined.

    ``coverage`` records whether the sweep ran to completion
    (``"exhaustive"``) or was cut short by the governance layer
    (``"deadline"`` / ``"budget"`` / ``"faulted"``); for a partial
    sweep, ``holds`` speaks only for the ``instances_checked`` leading
    universe instances actually examined (cumulative across resumed
    runs).

    ``orbits_checked`` is non-zero only for symmetry-reduced sweeps
    (``symmetry="orbits"``): the orbit representatives examined, with
    ``instances_checked`` counting the universe instances they stand
    for.  Violations then name representatives — concrete, replayable
    instances; :func:`repro.engine.symmetry.orbit_transport` carries
    them onto any other orbit member.
    """

    holds: bool
    checked: int
    violations: Tuple[Tuple[Instance, Instance], ...] = ()
    coverage: str = COVERAGE_EXHAUSTIVE
    instances_checked: int = 0
    orbits_checked: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE


def _default_witnesses(universe: Sequence[Instance]) -> List[Instance]:
    """Universe closed under pairwise unions.

    The paper's positive subset-property proofs (Example 3.10,
    Proposition 3.11) construct the witness I2' = I1 ∪ I2, so closing
    the witness pool under unions makes the bounded check complete on
    those arguments.
    """
    pool = list(universe)
    seen = set(pool)
    for left in universe:
        for right in universe:
            union = left.union(right)
            if union not in seen:
                seen.add(union)
                pool.append(union)
    return pool


def _subset_property_task(
    left: Instance,
) -> List[Tuple[Instance, bool]]:
    """Per-left-instance worker: ``(right, witnessed)`` for every
    containment pair, in the serial iteration order."""
    mapping, relation1, relation2, universe, witnesses = get_shared()
    events: List[Tuple[Instance, bool]] = []
    for right in universe:
        if not solutions_contained(mapping, right, left):
            continue  # only pairs with Sol(I2) ⊆ Sol(I1) matter
        events.append(
            (
                right,
                _has_subset_witness(
                    mapping, relation1, relation2, left, right, witnesses
                ),
            )
        )
    return events


def _resolve_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """The budget a checker entry point should run under: an explicit
    one, else the ambient one, else whatever the environment knobs
    (``REPRO_DEADLINE`` & friends, set by the CLI) configure."""
    if budget is not None:
        return budget
    ambient = current_budget()
    if ambient is not None:
        return ambient
    return Budget.from_env()


def subset_property(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    stop_at_first_violation: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> SubsetPropertyReport:
    """Bounded check of the (∼1,∼2)-subset property (Definition 3.4).

    For every pair from *universe* with Sol(M, I2) ⊆ Sol(M, I1), look
    for witnesses (I1', I2') in *witness_universe* (default: the
    universe closed under pairwise unions) with I1 ∼1 I1', I2 ∼2 I2'
    and I1' ⊆ I2'.

    The outer loop fans out per left instance through the engine's
    :class:`ParallelUniverseRunner` (*workers* defaults to the
    engine-wide setting); results merge in input order, so the report
    is identical for every worker count.

    *budget* (default: ambient, else from the ``REPRO_*`` environment
    knobs) bounds the sweep; when it trips, the report comes back with
    partial ``coverage`` instead of an exception.  *checkpoint*
    (default: the ``REPRO_CHECKPOINT`` journal) records the verified
    prefix so an interrupted sweep resumes where it stopped.

    *symmetry* (default: ``REPRO_SYMMETRY``, else ``"full"``): with
    ``"orbits"``, only one representative per domain-permutation
    orbit enters the outer loop — sound because the property is
    invariant under constant renaming for permutation-invariant
    mappings and relations; the inner (witness) quantifiers still
    range over the full pools.  Unsound situations (literal constants
    in a mapping, a non-closed universe) silently fall back to the
    full sweep.

    *backend* (default: ``REPRO_BACKEND``, else ``"object"``): with
    ``"kernel"``, homomorphism probes, premise matching, and verdict
    keys run on the compiled integer kernel
    (:mod:`repro.engine.kernel`) — identical verdicts and witnesses,
    installed before the fan-out so forked workers inherit it.
    """
    universe = list(universe)
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )
    plan = _plan_sweep(
        symmetry, universe, mappings=(mapping,), relations=(relation1, relation2)
    )
    outer = plan.outer
    budget = _resolve_budget(budget)
    journal = checkpoint if checkpoint is not None else default_journal()
    key = sweep_key(
        "subset_property",
        mapping.name or mapping,
        relation1,
        relation2,
        len(universe),
        len(witnesses),
        plan.mode,
    )
    start = journal.resume_index(key, len(outer)) if journal else 0
    prior = (
        journal.prior_verdict(key)
        if journal and start
        else {"ok": True, "violations": 0}
    )
    runner = ParallelUniverseRunner(workers)
    shared = (mapping, relation1, relation2, universe, witnesses)
    checked = 0
    position = start
    instances_checked = plan.covered_upto(start)
    orbits_checked = start if plan.reduced else 0
    coverage = COVERAGE_EXHAUSTIVE
    violations: List[Tuple[Instance, Instance]] = []

    def report(holds: bool) -> SubsetPropertyReport:
        return SubsetPropertyReport(
            holds and prior["ok"],
            checked,
            tuple(violations),
            coverage=coverage,
            instances_checked=instances_checked,
            orbits_checked=orbits_checked,
        )

    def note_progress(flush: bool = False) -> None:
        if journal is not None:
            journal.record(
                key,
                verified_upto=position,
                total=len(outer),
                ok=prior["ok"] and not violations,
                violations=prior["violations"] + len(violations),
                flush=flush,
            )

    with engine_stats().phase("check.subset_property"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        results = runner.map_iter(
            _subset_property_task, outer[start:], shared=shared, budget=budget
        )
        try:
            for left, events in zip(outer[start:], results):
                for right, witnessed in events:
                    checked += 1
                    if witnessed:
                        continue
                    violations.append((left, right))
                    if stop_at_first_violation:
                        results.close()
                        if journal is not None:
                            journal.complete(
                                key,
                                total=len(outer),
                                ok=False,
                                violations=prior["violations"] + len(violations),
                            )
                        return report(False)
                instances_checked += plan.weight_of(position)
                position += 1
                if plan.reduced:
                    orbits_checked += 1
                note_progress()
        except (BudgetExceeded, WorkerFault) as error:
            coverage = governed_coverage(error)
            if coverage is None:
                raise
            note_progress(flush=True)
            record_coverage(
                "check.subset_property", coverage, str(error), instances_checked
            )
            return report(not violations)
    if journal is not None:
        journal.complete(
            key,
            total=len(outer),
            ok=prior["ok"] and not violations,
            violations=prior["violations"] + len(violations),
        )
    return report(not violations)


def _has_subset_witness(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    left: Instance,
    right: Instance,
    witnesses: Sequence[Instance],
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if left_prime.issubset(right_prime) and relation2.related(
                right, right_prime
            ):
                return True
    return False


def _unique_solutions_task(index: int) -> List[Tuple[Instance, Instance]]:
    """Per-left-index worker: ∼M-equivalent pairs (left, right) with
    right after left in the universe order."""
    mapping, ordered = get_shared()
    left = ordered[index]
    return [
        (left, right)
        for right in ordered[index + 1 :]
        if left != right and data_exchange_equivalent(mapping, left, right)
    ]


def _unique_solutions_orbit_task(index: int) -> List[Tuple[Instance, Instance]]:
    """Per-representative worker for orbit-mode sweeps: ∼M-equivalent
    pairs (rep, right) with right ranging over the *full* universe.

    The upper-triangle cut of the full sweep would be unsound here — a
    permuted copy π(I) of a later universe instance can precede the
    orbit representative in universe order — so the inner loop instead
    compares the representative against every *other* instance.
    """
    mapping, representatives, ordered = get_shared()
    left = representatives[index]
    return [
        (left, right)
        for right in ordered
        if left != right and data_exchange_equivalent(mapping, left, right)
    ]


def unique_solutions_property(
    mapping: SchemaMapping,
    universe: Sequence[Instance],
    *,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> Tuple[bool, Tuple[Tuple[Instance, Instance], ...]]:
    """Bounded check of the unique-solutions property (from [3]).

    Returns (holds, violations): pairs of *distinct* instances from
    the universe with equal solution spaces.  A violation certifies
    non-invertibility.  Fans out per left instance with deterministic
    merge order.

    The return value is a :class:`~repro.engine.budget.SweepVerdict`:
    it unpacks as the historical 2-tuple and additionally carries
    ``coverage`` / ``instances_checked`` when a *budget* (explicit,
    ambient, or environment-configured) cuts the sweep short.

    In ``symmetry="orbits"`` mode only orbit representatives drive the
    outer loop (the inner loop still ranges over the full universe, so
    the verdict matches the full sweep exactly); ``orbits_checked`` on
    the verdict counts them.
    """
    ordered = list(universe)
    plan = _plan_sweep(symmetry, ordered, mappings=(mapping,))
    budget = _resolve_budget(budget)
    runner = ParallelUniverseRunner(workers)
    violations: List[Tuple[Instance, Instance]] = []
    coverage = COVERAGE_EXHAUSTIVE
    instances_checked = 0
    orbits_checked = 0
    position = 0
    with engine_stats().phase("check.unique_solutions"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        if plan.reduced:
            results = runner.map_iter(
                _unique_solutions_orbit_task,
                range(len(plan.outer)),
                shared=(mapping, plan.outer, ordered),
                budget=budget,
            )
        else:
            results = runner.map_iter(
                _unique_solutions_task,
                range(len(ordered)),
                shared=(mapping, ordered),
                budget=budget,
            )
        try:
            for found in results:
                violations.extend(found)
                instances_checked += plan.weight_of(position)
                position += 1
                if plan.reduced:
                    orbits_checked += 1
        except (BudgetExceeded, WorkerFault) as error:
            coverage = governed_coverage(error)
            if coverage is None:
                raise
            record_coverage(
                "check.unique_solutions", coverage, str(error), instances_checked
            )
    return SweepVerdict(
        not violations,
        tuple(violations),
        coverage=coverage,
        instances_checked=instances_checked,
        orbits_checked=orbits_checked,
    )


@dataclass(frozen=True)
class InverseCheckReport:
    """Outcome of a bounded (∼1,∼2)-inverse check.

    ``mismatches`` are pairs (I1, I2) on which the two sides of
    Definition 3.3 disagree, with the direction recorded:
    ``"id_only"`` means (I1,I2) ∈ Inst(Id)[∼1,∼2] but not in
    Inst(M∘M')[∼1,∼2] over the witness pool, and ``"comp_only"`` the
    converse.

    ``coverage`` / ``instances_checked`` mirror
    :class:`SubsetPropertyReport`: ``"exhaustive"`` means every pair
    was examined, anything else means the governance layer stopped the
    sweep after ``instances_checked`` left instances.
    ``orbits_checked`` is non-zero only under ``symmetry="orbits"``,
    counting the orbit representatives that drove the outer loop.
    """

    holds: bool
    checked: int
    mismatches: Tuple[Tuple[Instance, Instance, str], ...] = ()
    coverage: str = COVERAGE_EXHAUSTIVE
    instances_checked: int = 0
    orbits_checked: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE


def is_quasi_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> InverseCheckReport:
    """Bounded check that *candidate* is a quasi-inverse of *mapping*.

    Instantiates Definition 3.8: both ∼1 and ∼2 are ∼M.  Use
    :func:`is_generalized_inverse` for other relation pairs.
    """
    equivalence = SolutionEquivalence(mapping)
    return is_generalized_inverse(
        mapping,
        candidate,
        equivalence,
        equivalence,
        universe,
        workers=workers,
        witness_universe=witness_universe,
        max_nulls=max_nulls,
        stop_at_first_mismatch=stop_at_first_mismatch,
        budget=budget,
        symmetry=symmetry,
        backend=backend,
    )


def is_generalized_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> InverseCheckReport:
    """Bounded check of Definition 3.3: is *candidate* a
    (∼1,∼2)-inverse of *mapping*?

    For every pair (I1, I2) from *universe*, compares membership of
    (I1, I2) in Inst(Id)[∼1,∼2] and in Inst(M∘M')[∼1,∼2], with the
    existential witnesses (I1', I2') drawn from *witness_universe*
    (default: the universe closed under pairwise unions).  A reported
    mismatch of kind ``"comp_only"`` is a definite refutation; one of
    kind ``"id_only"`` refutes up to the witness pool.

    *budget* (default: ambient, else environment) governs the sweep;
    when it trips, the report carries partial ``coverage``.
    ``symmetry="orbits"`` reduces the outer (I1) loop to orbit
    representatives when both mappings and both relations are
    permutation-invariant; the inner loops stay on the full pools.
    """
    universe = list(universe)
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )
    plan = _plan_sweep(
        symmetry,
        universe,
        mappings=(mapping, candidate),
        relations=(relation1, relation2),
    )
    budget = _resolve_budget(budget)
    shared = (
        mapping,
        candidate,
        relation1,
        relation2,
        universe,
        witnesses,
        max_nulls,
    )
    with engine_stats().phase("check.generalized_inverse"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        return _merge_inverse_events(
            ParallelUniverseRunner(workers),
            _generalized_inverse_task,
            plan,
            shared,
            stop_at_first_mismatch,
            budget=budget,
            phase="check.generalized_inverse",
        )


def _in_id_closure(
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    witnesses: Sequence[Instance],
    left: Instance,
    right: Instance,
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if left_prime.issubset(right_prime) and relation2.related(
                right, right_prime
            ):
                return True
    return False


def _in_comp_closure(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    witnesses: Sequence[Instance],
    left: Instance,
    right: Instance,
    max_nulls: int,
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if not relation2.related(right, right_prime):
                continue
            if composition_membership(
                mapping, candidate, left_prime, right_prime, max_nulls=max_nulls
            ):
                return True
    return False


_InverseEvents = Tuple[List[Tuple[Instance, bool, bool]], Optional[BaseException]]


def _generalized_inverse_task(left: Instance) -> _InverseEvents:
    """Per-left worker for :func:`is_generalized_inverse`: the two
    closure memberships per right, in serial order.  An exception is
    returned (not raised) with the events that preceded it, so the
    merge can replay the serial control flow exactly."""
    mapping, candidate, relation1, relation2, universe, witnesses, max_nulls = (
        get_shared()
    )
    events: List[Tuple[Instance, bool, bool]] = []
    for right in universe:
        try:
            in_id = _in_id_closure(relation1, relation2, witnesses, left, right)
            in_comp = _in_comp_closure(
                mapping, candidate, relation1, relation2, witnesses,
                left, right, max_nulls,
            )
        except Exception as error:  # replayed in-order by the merge
            return events, error
        events.append((right, in_id, in_comp))
    return events, None


def _is_inverse_task(left: Instance) -> _InverseEvents:
    """Per-left worker for :func:`is_inverse` (exact membership)."""
    mapping, candidate, universe, max_nulls = get_shared()
    events: List[Tuple[Instance, bool, bool]] = []
    for right in universe:
        try:
            in_comp = composition_membership(
                mapping, candidate, left, right, max_nulls=max_nulls
            )
        except Exception as error:
            return events, error
        events.append((right, left.issubset(right), in_comp))
    return events, None


def _merge_inverse_events(
    runner: ParallelUniverseRunner,
    task: Callable[[Instance], _InverseEvents],
    plan: SweepPlan,
    shared: Tuple,
    stop_at_first_mismatch: bool,
    *,
    budget: Optional[Budget] = None,
    phase: str = "check.inverse",
) -> InverseCheckReport:
    """Fold per-left event streams into an :class:`InverseCheckReport`
    exactly as the serial pair loop would.

    Exceptions an algorithm raised in a worker are re-raised at their
    serial position; governed budget trips (deadline / instance cap /
    RSS) and recovered-from worker faults instead degrade the report
    to a partial ``coverage``.  The outer stream is *plan*'s: orbit
    representatives under a reduced plan (each advancing
    ``instances_checked`` by its orbit size), the full universe
    otherwise.
    """
    checked = 0
    position = 0
    instances_checked = 0
    orbits_checked = 0
    coverage = COVERAGE_EXHAUSTIVE
    mismatches: List[Tuple[Instance, Instance, str]] = []

    def report(holds: bool) -> InverseCheckReport:
        return InverseCheckReport(
            holds,
            checked,
            tuple(mismatches),
            coverage=coverage,
            instances_checked=instances_checked,
            orbits_checked=orbits_checked,
        )

    results = runner.map_iter(task, plan.outer, shared=shared, budget=budget)
    try:
        for left, (events, error) in zip(plan.outer, results):
            for right, in_id, in_comp in events:
                checked += 1
                if in_id == in_comp:
                    continue
                kind = "id_only" if in_id else "comp_only"
                mismatches.append((left, right, kind))
                if stop_at_first_mismatch:
                    results.close()
                    return report(False)
            if error is not None:
                results.close()
                governed = governed_coverage(error)
                if governed is None:
                    raise error
                coverage = governed
                record_coverage(phase, coverage, str(error), instances_checked)
                return report(not mismatches)
            instances_checked += plan.weight_of(position)
            position += 1
            if plan.reduced:
                orbits_checked += 1
    except (BudgetExceeded, WorkerFault) as error:
        coverage = governed_coverage(error)
        if coverage is None:
            raise
        record_coverage(phase, coverage, str(error), instances_checked)
        return report(not mismatches)
    return report(not mismatches)


def is_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> InverseCheckReport:
    """Bounded check that *candidate* is an inverse of *mapping*.

    Definition (Section 2): Inst(Id) = Inst(M ∘ M') — i.e. for ground
    pairs, I1 ⊆ I2 iff (I1, I2) ∈ Inst(M ∘ M').  Equality of the two
    relations is checked pairwise over *universe*; both membership
    tests are exact, so any mismatch is a definite refutation.

    *budget* (default: ambient, else environment) governs the sweep;
    when it trips, the report carries partial ``coverage``.
    ``symmetry="orbits"`` reduces the outer loop to orbit
    representatives when both mappings are permutation-invariant.
    """
    universe = list(universe)
    plan = _plan_sweep(symmetry, universe, mappings=(mapping, candidate))
    budget = _resolve_budget(budget)
    shared = (mapping, candidate, universe, max_nulls)
    with engine_stats().phase("check.is_inverse"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        return _merge_inverse_events(
            ParallelUniverseRunner(workers),
            _is_inverse_task,
            plan,
            shared,
            stop_at_first_mismatch,
            budget=budget,
            phase="check.is_inverse",
        )
