"""The unifying framework of Section 3: (∼1,∼2)-inverses.

The key idea is to relax the identity Inst(Id) = Inst(M ∘ M') modulo
equivalence relations contained in ∼M (equal solution spaces):

* :class:`Equality` is ``=`` — plugging it in on both sides gives the
  notion of an *inverse* (Corollary 3.6);
* :class:`SolutionEquivalence` is ∼M itself — giving *quasi-inverses*
  (Definition 3.8), the most relaxed notion in the spectrum
  (Proposition 3.7).

Theorem 3.5 makes the (∼1,∼2)-subset property (Definition 3.4) the
exact existence criterion.  The subset property and the
(∼1,∼2)-inverse definition quantify over *all* ground instances; the
checkers here quantify over explicitly supplied finite universes and
are therefore *falsifiers*: a reported violation (with witnesses) is
a real violation, while a pass is evidence bounded by the universe.
All of the paper's counterexamples have witnesses small enough for
these checkers to find (see experiments E2, E4, E8).
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.datamodel.instances import Instance
from repro.core.mapping import (
    SchemaMapping,
    data_exchange_equivalent,
    solutions_contained,
)
from repro.core.composition import composition_membership
from repro.engine.budget import (
    Budget,
    COVERAGE_EXHAUSTIVE,
    SweepVerdict,
    current_budget,
    record_coverage,
    use_budget,
)
from repro.engine.cache import mapping_key
from repro.engine.checkpoint import (
    CheckpointJournal,
    claim_shards,
    default_journal,
    shard_entry_key,
    sweep_key,
)
from repro.engine.instrumentation import engine_stats
from repro.engine.kernel import use_backend
from repro.engine.parallel import ParallelUniverseRunner, get_shared
from repro.engine.store import default_store, stable_digest
from repro.engine.symmetry import (
    SweepPlan,
    mapping_permutation_invariant,
    plan_sweep,
    resolve_shards,
    shard_of_instance,
    use_ground_keys,
)
from repro.errors import BudgetExceeded, WorkerFault, governed_coverage


class EquivalenceRelation(Protocol):
    """An equivalence relation on ground instances."""

    def related(self, left: Instance, right: Instance) -> bool:
        """Are the two ground instances equivalent?"""
        ...


@dataclass(frozen=True)
class Equality:
    """The equality relation ``=`` (gives inverses)."""

    def related(self, left: Instance, right: Instance) -> bool:
        return left == right

    def __str__(self) -> str:
        return "="


@dataclass(frozen=True)
class SolutionEquivalence:
    """The paper's ∼M: equal spaces of solutions (gives quasi-inverses)."""

    mapping: SchemaMapping

    def related(self, left: Instance, right: Instance) -> bool:
        return data_exchange_equivalent(self.mapping, left, right)

    def __str__(self) -> str:
        return f"∼{self.mapping.name or 'M'}"


def _relation_permutation_invariant(relation: EquivalenceRelation) -> bool:
    """Is *relation* invariant under permutations of the constants?

    Equality always is; a solution-space relation inherits invariance
    from its mapping.  Unknown custom relations are conservatively
    treated as non-invariant, which keeps their sweeps on the full
    universe.
    """
    if isinstance(relation, Equality):
        return True
    mapping = getattr(relation, "mapping", None)
    if mapping is not None and hasattr(mapping, "dependencies"):
        return mapping_permutation_invariant(mapping)
    return False


def _plan_sweep(
    symmetry: Optional[str],
    universe: Sequence[Instance],
    *,
    mappings: Sequence[SchemaMapping] = (),
    relations: Sequence[EquivalenceRelation] = (),
) -> SweepPlan:
    """:func:`repro.engine.symmetry.plan_sweep`, additionally vetoing
    the reduction when any equivalence relation involved is not known
    to be permutation-invariant."""
    return plan_sweep(
        symmetry,
        universe,
        mappings=mappings,
        extra_invariant=all(
            _relation_permutation_invariant(rel) for rel in relations
        ),
    )


def _relation_content_key(relation: EquivalenceRelation) -> Tuple:
    """Content identity of an equivalence relation for fingerprinting:
    solution-space relations digest their mapping's dependencies, so
    two anonymous mappings with different constraints never collide."""
    inner = getattr(relation, "mapping", None)
    if inner is not None and hasattr(inner, "dependencies"):
        return (type(relation).__name__, mapping_key(inner))
    return (type(relation).__name__, str(relation))


def _sweep_fingerprint(
    label: str,
    mappings: Sequence[SchemaMapping],
    relations: Sequence[EquivalenceRelation],
    pools: Sequence[Sequence[Instance]],
    mode: str,
) -> str:
    """The derivation key a checkpoint entry is guarded by.

    Digests the sweep's actual *content* — the mappings' dependencies,
    the relations, every instance in every pool, and the effective
    sweep mode — so a journal written for a different sweep can never
    be honoured just because its universe happens to have the same
    length (the checkpoint module's fingerprint sanity guard).
    """
    parts: List[object] = [label, mode]
    parts.extend(mapping_key(current) for current in mappings)
    parts.extend(_relation_content_key(current) for current in relations)
    for pool in pools:
        parts.append([instance.sorted_facts() for instance in pool])
    return stable_digest(parts)[:16]


def _worst_coverage(coverages: Iterable[str]) -> str:
    """Merged coverage of shard reports: exhaustive only when every
    shard was, else the first shard's partial coverage (deterministic
    — shards merge in shard-id order)."""
    for coverage in coverages:
        if coverage != COVERAGE_EXHAUSTIVE:
            return coverage
    return COVERAGE_EXHAUSTIVE


def _first_positions(instances: Sequence[Instance]) -> Dict[Instance, int]:
    positions: Dict[Instance, int] = {}
    for index, instance in enumerate(instances):
        positions.setdefault(instance, index)
    return positions


def _serial_pair_order(
    outer: Sequence[Instance], universe: Sequence[Instance]
) -> Callable[[Tuple], Tuple[int, int]]:
    """Sort key restoring the serial sweep's violation order: by the
    left instance's position in the outer stream, then the right
    instance's position in the universe scan."""
    outer_positions = _first_positions(outer)
    inner_positions = _first_positions(universe)
    fallback_outer = len(outer_positions)
    fallback_inner = len(inner_positions)

    def order(pair: Tuple) -> Tuple[int, int]:
        return (
            outer_positions.get(pair[0], fallback_outer),
            inner_positions.get(pair[1], fallback_inner),
        )

    return order


@dataclass(frozen=True)
class SubsetPropertyReport:
    """Outcome of a bounded (∼1,∼2)-subset property check.

    ``violations`` lists pairs (I1, I2) with Sol(I2) ⊆ Sol(I1) for
    which no witness pair (I1', I2') with I1 ∼1 I1', I2 ∼2 I2' and
    I1' ⊆ I2' exists in the witness universe.  ``checked`` counts the
    containment pairs examined.

    ``coverage`` records whether the sweep ran to completion
    (``"exhaustive"``) or was cut short by the governance layer
    (``"deadline"`` / ``"budget"`` / ``"faulted"``); for a partial
    sweep, ``holds`` speaks only for the ``instances_checked`` leading
    universe instances actually examined (cumulative across resumed
    runs).

    ``orbits_checked`` is non-zero only for symmetry-reduced sweeps
    (``symmetry="orbits"``): the orbit representatives examined, with
    ``instances_checked`` counting the universe instances they stand
    for.  Violations then name representatives — concrete, replayable
    instances; :func:`repro.engine.symmetry.orbit_transport` carries
    them onto any other orbit member.
    """

    holds: bool
    checked: int
    violations: Tuple[Tuple[Instance, Instance], ...] = ()
    coverage: str = COVERAGE_EXHAUSTIVE
    instances_checked: int = 0
    orbits_checked: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE


def _default_witnesses(universe: Sequence[Instance]) -> List[Instance]:
    """Universe closed under pairwise unions.

    The paper's positive subset-property proofs (Example 3.10,
    Proposition 3.11) construct the witness I2' = I1 ∪ I2, so closing
    the witness pool under unions makes the bounded check complete on
    those arguments.
    """
    pool = list(universe)
    seen = set(pool)
    for left in universe:
        for right in universe:
            union = left.union(right)
            if union not in seen:
                seen.add(union)
                pool.append(union)
    return pool


def _subset_property_task(
    left: Instance,
) -> List[Tuple[Instance, bool]]:
    """Per-left-instance worker: ``(right, witnessed)`` for every
    containment pair, in the serial iteration order."""
    mapping, relation1, relation2, universe, witnesses = get_shared()
    events: List[Tuple[Instance, bool]] = []
    for right in universe:
        if not solutions_contained(mapping, right, left):
            continue  # only pairs with Sol(I2) ⊆ Sol(I1) matter
        events.append(
            (
                right,
                _has_subset_witness(
                    mapping, relation1, relation2, left, right, witnesses
                ),
            )
        )
    return events


def _resolve_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """The budget a checker entry point should run under: an explicit
    one, else the ambient one, else whatever the environment knobs
    (``REPRO_DEADLINE`` & friends, set by the CLI) configure."""
    if budget is not None:
        return budget
    ambient = current_budget()
    if ambient is not None:
        return ambient
    return Budget.from_env()


def subset_property(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    stop_at_first_violation: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
) -> SubsetPropertyReport:
    """Bounded check of the (∼1,∼2)-subset property (Definition 3.4).

    For every pair from *universe* with Sol(M, I2) ⊆ Sol(M, I1), look
    for witnesses (I1', I2') in *witness_universe* (default: the
    universe closed under pairwise unions) with I1 ∼1 I1', I2 ∼2 I2'
    and I1' ⊆ I2'.

    The outer loop fans out per left instance through the engine's
    :class:`ParallelUniverseRunner` (*workers* defaults to the
    engine-wide setting); results merge in input order, so the report
    is identical for every worker count.

    *budget* (default: ambient, else from the ``REPRO_*`` environment
    knobs) bounds the sweep; when it trips, the report comes back with
    partial ``coverage`` instead of an exception.  *checkpoint*
    (default: the ``REPRO_CHECKPOINT`` journal) records the verified
    prefix so an interrupted sweep resumes where it stopped; every
    entry carries the sweep fingerprint, so a journal written for a
    different mapping or universe is discarded, never honoured.

    *symmetry* (default: ``REPRO_SYMMETRY``, else ``"full"``): with
    ``"orbits"``, only one representative per domain-permutation
    orbit enters the outer loop — sound because the property is
    invariant under constant renaming for permutation-invariant
    mappings and relations; the inner (witness) quantifiers still
    range over the full pools.  Unsound situations (literal constants
    in a mapping, a non-closed universe) silently fall back to the
    full sweep.

    *backend* (default: ``REPRO_BACKEND``, else ``"object"``): with
    ``"kernel"``, homomorphism probes, premise matching, and verdict
    keys run on the compiled integer kernel
    (:mod:`repro.engine.kernel`); with ``"sql"``, the chase and the
    homomorphism joins execute inside SQLite
    (:mod:`repro.engine.sqlbackend`, scratch file via
    ``REPRO_SQL_DB``) — identical verdicts and witnesses either way,
    installed before the fan-out so forked workers inherit it.

    *shards* / *shard_id* (default: ``REPRO_SHARDS`` /
    ``REPRO_SHARD_ID``): partition the outer stream by content digest
    of each instance's canonical form (orbits never straddle shards).
    With a fixed *shard_id* this process sweeps exactly that shard and
    the report covers it alone — independent workers each take one id
    and coordinate through the shared checkpoint journal (per-shard
    entries plus lease files; an expired lease is stolen, so a dead
    worker's shard is re-run by whoever notices).  With *shards* > 1
    and no *shard_id*, this process claims every shard not already
    done elsewhere and merges the shard reports back into exactly the
    unsharded report (byte-identical under
    ``stop_at_first_violation=False``; with early stopping each shard
    stops at its own first violation, so only the verdict — not the
    pair counts — matches the serial run).
    """
    default_store()  # honour REPRO_STORE before any cache traffic
    universe = list(universe)
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )
    plan = _plan_sweep(
        symmetry, universe, mappings=(mapping,), relations=(relation1, relation2)
    )
    budget = _resolve_budget(budget)
    journal = checkpoint if checkpoint is not None else default_journal()
    key = sweep_key(
        "subset_property",
        mapping.name or mapping,
        relation1,
        relation2,
        len(universe),
        len(witnesses),
        plan.mode,
    )
    fingerprint = _sweep_fingerprint(
        "subset_property",
        (mapping,),
        (relation1, relation2),
        (universe, witnesses),
        plan.mode,
    )
    shards, shard_id = resolve_shards(shards, shard_id)

    def run_shard(which: Optional[int], shard_plan: SweepPlan) -> SubsetPropertyReport:
        shard_key = key if which is None else shard_entry_key(key, which, shards)
        return _subset_sweep(
            mapping,
            relation1,
            relation2,
            universe,
            witnesses,
            shard_plan,
            key=shard_key,
            fingerprint=fingerprint,
            stop_at_first_violation=stop_at_first_violation,
            workers=workers,
            budget=budget,
            journal=journal,
            backend=backend,
        )

    if shards <= 1:
        return run_shard(None, plan)
    if shard_id is not None:
        return run_shard(shard_id, plan.shard(shards, shard_id))
    owner = uuid.uuid4().hex
    reports: Dict[int, SubsetPropertyReport] = {}
    for claimed in claim_shards(
        journal, key, shards, owner=owner, fingerprint=fingerprint
    ):
        reports[claimed] = run_shard(claimed, plan.shard(shards, claimed))
    return _merge_subset_reports(
        reports, plan, universe, shards=shards, key=key, journal=journal
    )


def _subset_sweep(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    witnesses: Sequence[Instance],
    plan: SweepPlan,
    *,
    key: str,
    fingerprint: Optional[str],
    stop_at_first_violation: bool,
    workers: Optional[int],
    budget: Optional[Budget],
    journal: Optional[CheckpointJournal],
    backend: Optional[str],
) -> SubsetPropertyReport:
    """One journal-backed sweep over *plan*'s outer stream — the whole
    check when unsharded, one shard's share otherwise."""
    outer = plan.outer
    start = (
        journal.resume_index(key, len(outer), fingerprint) if journal else 0
    )
    prior = (
        journal.prior_verdict(key)
        if journal and start
        else {"ok": True, "violations": 0}
    )
    runner = ParallelUniverseRunner(workers)
    shared = (mapping, relation1, relation2, universe, witnesses)
    checked = 0
    position = start
    instances_checked = plan.covered_upto(start)
    orbits_checked = start if plan.reduced else 0
    coverage = COVERAGE_EXHAUSTIVE
    violations: List[Tuple[Instance, Instance]] = []

    def report(holds: bool) -> SubsetPropertyReport:
        return SubsetPropertyReport(
            holds and prior["ok"],
            checked,
            tuple(violations),
            coverage=coverage,
            instances_checked=instances_checked,
            orbits_checked=orbits_checked,
        )

    def note_progress(flush: bool = False) -> None:
        if journal is not None:
            journal.record(
                key,
                verified_upto=position,
                total=len(outer),
                ok=prior["ok"] and not violations,
                violations=prior["violations"] + len(violations),
                fingerprint=fingerprint,
                flush=flush,
            )

    with engine_stats().phase("check.subset_property"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        results = runner.map_iter(
            _subset_property_task, outer[start:], shared=shared, budget=budget
        )
        try:
            for left, events in zip(outer[start:], results):
                for right, witnessed in events:
                    checked += 1
                    if witnessed:
                        continue
                    violations.append((left, right))
                    if stop_at_first_violation:
                        results.close()
                        if journal is not None:
                            journal.complete(
                                key,
                                total=len(outer),
                                ok=False,
                                violations=prior["violations"] + len(violations),
                                fingerprint=fingerprint,
                            )
                        return report(False)
                instances_checked += plan.weight_of(position)
                position += 1
                if plan.reduced:
                    orbits_checked += 1
                note_progress()
        except (BudgetExceeded, WorkerFault) as error:
            coverage = governed_coverage(error)
            if coverage is None:
                raise
            note_progress(flush=True)
            record_coverage(
                "check.subset_property", coverage, str(error), instances_checked
            )
            return report(not violations)
    if journal is not None:
        journal.complete(
            key,
            total=len(outer),
            ok=prior["ok"] and not violations,
            violations=prior["violations"] + len(violations),
            fingerprint=fingerprint,
        )
    return report(not violations)


def _merge_subset_reports(
    reports: Dict[int, SubsetPropertyReport],
    plan: SweepPlan,
    universe: Sequence[Instance],
    *,
    shards: int,
    key: str,
    journal: Optional[CheckpointJournal],
) -> SubsetPropertyReport:
    """Fold per-shard reports back into the unsharded report.

    Violations are re-sorted into the serial sweep's pair order and
    the counters summed — the outer stream is partitioned exactly, so
    under ``stop_at_first_violation=False`` the merge reproduces the
    serial report byte for byte.  Shards completed by peer processes
    (absent from *reports*) contribute their journal verdict: their
    ok/violation counts fold into ``holds`` and ``checked`` stays
    local, mirroring how a resumed unsharded sweep accounts for its
    pre-restart prefix.
    """
    holds = all(report.holds for report in reports.values())
    if journal is not None:
        journal.reload()
        for shard in range(shards):
            if shard in reports:
                continue
            prior = journal.prior_verdict(shard_entry_key(key, shard, shards))
            if not prior["ok"] or prior["violations"]:
                holds = False
    order = _serial_pair_order(plan.outer, universe)
    violations = tuple(
        sorted(
            (
                pair
                for report in reports.values()
                for pair in report.violations
            ),
            key=order,
        )
    )
    return SubsetPropertyReport(
        holds and not violations,
        sum(report.checked for report in reports.values()),
        violations,
        coverage=_worst_coverage(
            reports[shard].coverage for shard in sorted(reports)
        ),
        instances_checked=sum(
            report.instances_checked for report in reports.values()
        ),
        orbits_checked=sum(
            report.orbits_checked for report in reports.values()
        ),
    )


def _has_subset_witness(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    left: Instance,
    right: Instance,
    witnesses: Sequence[Instance],
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if left_prime.issubset(right_prime) and relation2.related(
                right, right_prime
            ):
                return True
    return False


def _unique_solutions_task(index: int) -> List[Tuple[Instance, Instance]]:
    """Per-left-index worker: ∼M-equivalent pairs (left, right) with
    right after left in the universe order."""
    mapping, ordered = get_shared()
    left = ordered[index]
    return [
        (left, right)
        for right in ordered[index + 1 :]
        if left != right and data_exchange_equivalent(mapping, left, right)
    ]


def _unique_solutions_orbit_task(index: int) -> List[Tuple[Instance, Instance]]:
    """Per-representative worker for orbit-mode sweeps: ∼M-equivalent
    pairs (rep, right) with right ranging over the *full* universe.

    The upper-triangle cut of the full sweep would be unsound here — a
    permuted copy π(I) of a later universe instance can precede the
    orbit representative in universe order — so the inner loop instead
    compares the representative against every *other* instance.
    """
    mapping, representatives, ordered = get_shared()
    left = representatives[index]
    return [
        (left, right)
        for right in ordered
        if left != right and data_exchange_equivalent(mapping, left, right)
    ]


def unique_solutions_property(
    mapping: SchemaMapping,
    universe: Sequence[Instance],
    *,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
) -> Tuple[bool, Tuple[Tuple[Instance, Instance], ...]]:
    """Bounded check of the unique-solutions property (from [3]).

    Returns (holds, violations): pairs of *distinct* instances from
    the universe with equal solution spaces.  A violation certifies
    non-invertibility.  Fans out per left instance with deterministic
    merge order.

    The return value is a :class:`~repro.engine.budget.SweepVerdict`:
    it unpacks as the historical 2-tuple and additionally carries
    ``coverage`` / ``instances_checked`` when a *budget* (explicit,
    ambient, or environment-configured) cuts the sweep short.

    In ``symmetry="orbits"`` mode only orbit representatives drive the
    outer loop (the inner loop still ranges over the full universe, so
    the verdict matches the full sweep exactly); ``orbits_checked`` on
    the verdict counts them.

    *shards* / *shard_id* partition the outer loop by instance content
    digest (see :func:`repro.engine.symmetry.shard_of_instance`): a
    fixed *shard_id* sweeps just that slice, no *shard_id* sweeps all
    shards here and merges the slices back into exactly the unsharded
    verdict.
    """
    default_store()
    ordered = list(universe)
    plan = _plan_sweep(symmetry, ordered, mappings=(mapping,))
    budget = _resolve_budget(budget)
    shards, shard_id = resolve_shards(shards, shard_id)
    if shards <= 1:
        return _unique_solutions_sweep(
            mapping, ordered, plan, None,
            workers=workers, budget=budget, backend=backend,
        )
    shard_ids = [shard_id] if shard_id is not None else list(range(shards))
    verdicts = [
        _unique_solutions_sweep(
            mapping, ordered, plan, (shards, which),
            workers=workers, budget=budget, backend=backend,
        )
        for which in shard_ids
    ]
    if shard_id is not None:
        return verdicts[0]
    return _merge_sweep_verdicts(verdicts, plan, ordered)


def _unique_solutions_sweep(
    mapping: SchemaMapping,
    ordered: Sequence[Instance],
    plan: SweepPlan,
    shard: Optional[Tuple[int, int]],
    *,
    workers: Optional[int],
    budget: Optional[Budget],
    backend: Optional[str],
) -> SweepVerdict:
    """One (possibly shard-restricted) unique-solutions sweep.

    Under a reduced plan the shard restricts the representative
    stream via :meth:`SweepPlan.shard`; under a full plan it restricts
    the left *indices* directly, preserving the serial upper-triangle
    cut (each kept left index still compares against every later
    universe instance, so the shard slices partition the serial pair
    stream exactly).
    """
    runner = ParallelUniverseRunner(workers)
    violations: List[Tuple[Instance, Instance]] = []
    coverage = COVERAGE_EXHAUSTIVE
    instances_checked = 0
    orbits_checked = 0
    position = 0
    work_plan = plan
    with engine_stats().phase("check.unique_solutions"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        if plan.reduced:
            if shard is not None:
                work_plan = plan.shard(*shard)
            results = runner.map_iter(
                _unique_solutions_orbit_task,
                range(len(work_plan.outer)),
                shared=(mapping, work_plan.outer, ordered),
                budget=budget,
            )
        else:
            if shard is None:
                indices: Sequence[int] = range(len(ordered))
            else:
                shard_count, which = shard
                indices = [
                    index
                    for index in range(len(ordered))
                    if shard_of_instance(ordered[index], shard_count) == which
                ]
            results = runner.map_iter(
                _unique_solutions_task,
                indices,
                shared=(mapping, ordered),
                budget=budget,
            )
        try:
            for found in results:
                violations.extend(found)
                instances_checked += work_plan.weight_of(position)
                position += 1
                if plan.reduced:
                    orbits_checked += 1
        except (BudgetExceeded, WorkerFault) as error:
            coverage = governed_coverage(error)
            if coverage is None:
                raise
            record_coverage(
                "check.unique_solutions", coverage, str(error), instances_checked
            )
    return SweepVerdict(
        not violations,
        tuple(violations),
        coverage=coverage,
        instances_checked=instances_checked,
        orbits_checked=orbits_checked,
    )


def _merge_sweep_verdicts(
    verdicts: Sequence[SweepVerdict],
    plan: SweepPlan,
    ordered: Sequence[Instance],
) -> SweepVerdict:
    """Fold per-shard sweep verdicts back into the unsharded one
    (violations re-sorted into serial pair order, counters summed)."""
    order = _serial_pair_order(ordered, ordered)
    violations = tuple(
        sorted(
            (pair for verdict in verdicts for pair in verdict.violators),
            key=order,
        )
    )
    return SweepVerdict(
        not violations and all(verdict.ok for verdict in verdicts),
        violations,
        coverage=_worst_coverage(verdict.coverage for verdict in verdicts),
        instances_checked=sum(
            verdict.instances_checked for verdict in verdicts
        ),
        orbits_checked=sum(verdict.orbits_checked for verdict in verdicts),
    )


@dataclass(frozen=True)
class InverseCheckReport:
    """Outcome of a bounded (∼1,∼2)-inverse check.

    ``mismatches`` are pairs (I1, I2) on which the two sides of
    Definition 3.3 disagree, with the direction recorded:
    ``"id_only"`` means (I1,I2) ∈ Inst(Id)[∼1,∼2] but not in
    Inst(M∘M')[∼1,∼2] over the witness pool, and ``"comp_only"`` the
    converse.

    ``coverage`` / ``instances_checked`` mirror
    :class:`SubsetPropertyReport`: ``"exhaustive"`` means every pair
    was examined, anything else means the governance layer stopped the
    sweep after ``instances_checked`` left instances.
    ``orbits_checked`` is non-zero only under ``symmetry="orbits"``,
    counting the orbit representatives that drove the outer loop.
    """

    holds: bool
    checked: int
    mismatches: Tuple[Tuple[Instance, Instance, str], ...] = ()
    coverage: str = COVERAGE_EXHAUSTIVE
    instances_checked: int = 0
    orbits_checked: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE


def is_quasi_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    composition_test: Optional["CompositionTest"] = None,
) -> InverseCheckReport:
    """Bounded check that *candidate* is a quasi-inverse of *mapping*.

    Instantiates Definition 3.8: both ∼1 and ∼2 are ∼M.  Use
    :func:`is_generalized_inverse` for other relation pairs.
    """
    equivalence = SolutionEquivalence(mapping)
    return is_generalized_inverse(
        mapping,
        candidate,
        equivalence,
        equivalence,
        universe,
        workers=workers,
        witness_universe=witness_universe,
        max_nulls=max_nulls,
        stop_at_first_mismatch=stop_at_first_mismatch,
        budget=budget,
        symmetry=symmetry,
        backend=backend,
        shards=shards,
        shard_id=shard_id,
        composition_test=composition_test,
    )


def is_generalized_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    composition_test: Optional["CompositionTest"] = None,
) -> InverseCheckReport:
    """Bounded check of Definition 3.3: is *candidate* a
    (∼1,∼2)-inverse of *mapping*?

    For every pair (I1, I2) from *universe*, compares membership of
    (I1, I2) in Inst(Id)[∼1,∼2] and in Inst(M∘M')[∼1,∼2], with the
    existential witnesses (I1', I2') drawn from *witness_universe*
    (default: the universe closed under pairwise unions).  A reported
    mismatch of kind ``"comp_only"`` is a definite refutation; one of
    kind ``"id_only"`` refutes up to the witness pool.

    *budget* (default: ambient, else environment) governs the sweep;
    when it trips, the report carries partial ``coverage``.
    ``symmetry="orbits"`` reduces the outer (I1) loop to orbit
    representatives when both mappings and both relations are
    permutation-invariant; the inner loops stay on the full pools.
    *shards* / *shard_id* partition the outer loop exactly as in
    :func:`subset_property` (merged reports reproduce the serial one
    under ``stop_at_first_mismatch=False``).
    """
    default_store()
    universe = list(universe)
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )
    plan = _plan_sweep(
        symmetry,
        universe,
        mappings=(mapping, candidate),
        relations=(relation1, relation2),
    )
    budget = _resolve_budget(budget)
    shards, shard_id = resolve_shards(shards, shard_id)
    shared = (
        mapping,
        candidate,
        relation1,
        relation2,
        universe,
        witnesses,
        max_nulls,
        composition_test,
    )
    with engine_stats().phase("check.generalized_inverse"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        return _sharded_inverse_check(
            _generalized_inverse_task,
            plan,
            universe,
            shared,
            stop_at_first_mismatch,
            workers=workers,
            budget=budget,
            phase="check.generalized_inverse",
            shards=shards,
            shard_id=shard_id,
        )


def _in_id_closure(
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    witnesses: Sequence[Instance],
    left: Instance,
    right: Instance,
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if left_prime.issubset(right_prime) and relation2.related(
                right, right_prime
            ):
                return True
    return False


def _in_comp_closure(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    witnesses: Sequence[Instance],
    left: Instance,
    right: Instance,
    max_nulls: int,
    composition_test: Optional["CompositionTest"] = None,
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if not relation2.related(right, right_prime):
                continue
            if _composition_test_membership(
                composition_test, mapping, candidate,
                left_prime, right_prime, max_nulls,
            ):
                return True
    return False


#: A pluggable composition-membership decision procedure: called as
#: ``test(mapping, candidate, left, right, max_nulls)`` and expected to
#: return exactly what :func:`composition_membership` would.  The
#: algebra planner passes evaluation-plan-specific tests (materialized
#: model checks, expression-directed membership); ``None`` keeps the
#: default.  Must be picklable — it ships to forked workers as shared
#: state.
CompositionTest = Callable[
    [SchemaMapping, SchemaMapping, Instance, Instance, int], bool
]


def _composition_test_membership(
    test: Optional[CompositionTest],
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    left: Instance,
    right: Instance,
    max_nulls: int,
) -> bool:
    if test is None:
        return composition_membership(
            mapping, candidate, left, right, max_nulls=max_nulls
        )
    return test(mapping, candidate, left, right, max_nulls)


_InverseEvents = Tuple[List[Tuple[Instance, bool, bool]], Optional[BaseException]]


def _generalized_inverse_task(left: Instance) -> _InverseEvents:
    """Per-left worker for :func:`is_generalized_inverse`: the two
    closure memberships per right, in serial order.  An exception is
    returned (not raised) with the events that preceded it, so the
    merge can replay the serial control flow exactly."""
    (
        mapping,
        candidate,
        relation1,
        relation2,
        universe,
        witnesses,
        max_nulls,
        composition_test,
    ) = get_shared()
    events: List[Tuple[Instance, bool, bool]] = []
    for right in universe:
        try:
            in_id = _in_id_closure(relation1, relation2, witnesses, left, right)
            in_comp = _in_comp_closure(
                mapping, candidate, relation1, relation2, witnesses,
                left, right, max_nulls, composition_test,
            )
        except Exception as error:  # replayed in-order by the merge
            return events, error
        events.append((right, in_id, in_comp))
    return events, None


def _is_inverse_task(left: Instance) -> _InverseEvents:
    """Per-left worker for :func:`is_inverse` (exact membership)."""
    mapping, candidate, universe, max_nulls, composition_test = get_shared()
    events: List[Tuple[Instance, bool, bool]] = []
    for right in universe:
        try:
            in_comp = _composition_test_membership(
                composition_test, mapping, candidate, left, right, max_nulls
            )
        except Exception as error:
            return events, error
        events.append((right, left.issubset(right), in_comp))
    return events, None


def _sharded_inverse_check(
    task: Callable[[Instance], _InverseEvents],
    plan: SweepPlan,
    universe: Sequence[Instance],
    shared: Tuple,
    stop_at_first_mismatch: bool,
    *,
    workers: Optional[int],
    budget: Optional[Budget],
    phase: str,
    shards: int,
    shard_id: Optional[int],
) -> InverseCheckReport:
    """Run an inverse-style pair check unsharded, on one shard, or on
    every shard locally with the shard reports merged back."""
    runner = ParallelUniverseRunner(workers)
    if shards <= 1:
        return _merge_inverse_events(
            runner, task, plan, shared, stop_at_first_mismatch,
            budget=budget, phase=phase,
        )
    shard_ids = [shard_id] if shard_id is not None else list(range(shards))
    reports = [
        _merge_inverse_events(
            runner, task, plan.shard(shards, which), shared,
            stop_at_first_mismatch, budget=budget, phase=phase,
        )
        for which in shard_ids
    ]
    if shard_id is not None:
        return reports[0]
    return _merge_inverse_reports(reports, plan, universe)


def _merge_inverse_reports(
    reports: Sequence[InverseCheckReport],
    plan: SweepPlan,
    universe: Sequence[Instance],
) -> InverseCheckReport:
    """Fold per-shard inverse reports back into the unsharded one
    (mismatches re-sorted into serial pair order, counters summed)."""
    order = _serial_pair_order(plan.outer, universe)
    mismatches = tuple(
        sorted(
            (entry for report in reports for entry in report.mismatches),
            key=order,
        )
    )
    return InverseCheckReport(
        not mismatches and all(report.holds for report in reports),
        sum(report.checked for report in reports),
        mismatches,
        coverage=_worst_coverage(report.coverage for report in reports),
        instances_checked=sum(
            report.instances_checked for report in reports
        ),
        orbits_checked=sum(report.orbits_checked for report in reports),
    )


def _merge_inverse_events(
    runner: ParallelUniverseRunner,
    task: Callable[[Instance], _InverseEvents],
    plan: SweepPlan,
    shared: Tuple,
    stop_at_first_mismatch: bool,
    *,
    budget: Optional[Budget] = None,
    phase: str = "check.inverse",
) -> InverseCheckReport:
    """Fold per-left event streams into an :class:`InverseCheckReport`
    exactly as the serial pair loop would.

    Exceptions an algorithm raised in a worker are re-raised at their
    serial position; governed budget trips (deadline / instance cap /
    RSS) and recovered-from worker faults instead degrade the report
    to a partial ``coverage``.  The outer stream is *plan*'s: orbit
    representatives under a reduced plan (each advancing
    ``instances_checked`` by its orbit size), the full universe
    otherwise.
    """
    checked = 0
    position = 0
    instances_checked = 0
    orbits_checked = 0
    coverage = COVERAGE_EXHAUSTIVE
    mismatches: List[Tuple[Instance, Instance, str]] = []

    def report(holds: bool) -> InverseCheckReport:
        return InverseCheckReport(
            holds,
            checked,
            tuple(mismatches),
            coverage=coverage,
            instances_checked=instances_checked,
            orbits_checked=orbits_checked,
        )

    results = runner.map_iter(task, plan.outer, shared=shared, budget=budget)
    try:
        for left, (events, error) in zip(plan.outer, results):
            for right, in_id, in_comp in events:
                checked += 1
                if in_id == in_comp:
                    continue
                kind = "id_only" if in_id else "comp_only"
                mismatches.append((left, right, kind))
                if stop_at_first_mismatch:
                    results.close()
                    return report(False)
            if error is not None:
                results.close()
                governed = governed_coverage(error)
                if governed is None:
                    raise error
                coverage = governed
                record_coverage(phase, coverage, str(error), instances_checked)
                return report(not mismatches)
            instances_checked += plan.weight_of(position)
            position += 1
            if plan.reduced:
                orbits_checked += 1
    except (BudgetExceeded, WorkerFault) as error:
        coverage = governed_coverage(error)
        if coverage is None:
            raise
        record_coverage(phase, coverage, str(error), instances_checked)
        return report(not mismatches)
    return report(not mismatches)


def is_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    composition_test: Optional[CompositionTest] = None,
) -> InverseCheckReport:
    """Bounded check that *candidate* is an inverse of *mapping*.

    Definition (Section 2): Inst(Id) = Inst(M ∘ M') — i.e. for ground
    pairs, I1 ⊆ I2 iff (I1, I2) ∈ Inst(M ∘ M').  Equality of the two
    relations is checked pairwise over *universe*; both membership
    tests are exact, so any mismatch is a definite refutation.

    *budget* (default: ambient, else environment) governs the sweep;
    when it trips, the report carries partial ``coverage``.
    ``symmetry="orbits"`` reduces the outer loop to orbit
    representatives when both mappings are permutation-invariant.
    *shards* / *shard_id* partition the outer loop exactly as in
    :func:`subset_property`.  *composition_test* substitutes a
    plan-chosen decision procedure for the default
    :func:`composition_membership` — it must decide the same relation
    (the algebra layer passes materialized or expression-directed
    tests), so the report is identical for every choice.
    """
    default_store()
    universe = list(universe)
    plan = _plan_sweep(symmetry, universe, mappings=(mapping, candidate))
    budget = _resolve_budget(budget)
    shards, shard_id = resolve_shards(shards, shard_id)
    shared = (mapping, candidate, universe, max_nulls, composition_test)
    with engine_stats().phase("check.is_inverse"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        return _sharded_inverse_check(
            _is_inverse_task,
            plan,
            universe,
            shared,
            stop_at_first_mismatch,
            workers=workers,
            budget=budget,
            phase="check.is_inverse",
            shards=shards,
            shard_id=shard_id,
        )
