"""The unifying framework of Section 3: (∼1,∼2)-inverses.

The key idea is to relax the identity Inst(Id) = Inst(M ∘ M') modulo
equivalence relations contained in ∼M (equal solution spaces):

* :class:`Equality` is ``=`` — plugging it in on both sides gives the
  notion of an *inverse* (Corollary 3.6);
* :class:`SolutionEquivalence` is ∼M itself — giving *quasi-inverses*
  (Definition 3.8), the most relaxed notion in the spectrum
  (Proposition 3.7).

Theorem 3.5 makes the (∼1,∼2)-subset property (Definition 3.4) the
exact existence criterion.  The subset property and the
(∼1,∼2)-inverse definition quantify over *all* ground instances; the
checkers here quantify over explicitly supplied finite universes and
are therefore *falsifiers*: a reported violation (with witnesses) is
a real violation, while a pass is evidence bounded by the universe.
All of the paper's counterexamples have witnesses small enough for
these checkers to find (see experiments E2, E4, E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.datamodel.instances import Instance
from repro.core.mapping import (
    SchemaMapping,
    data_exchange_equivalent,
    solutions_contained,
)
from repro.core.composition import composition_membership


class EquivalenceRelation(Protocol):
    """An equivalence relation on ground instances."""

    def related(self, left: Instance, right: Instance) -> bool:
        """Are the two ground instances equivalent?"""
        ...


@dataclass(frozen=True)
class Equality:
    """The equality relation ``=`` (gives inverses)."""

    def related(self, left: Instance, right: Instance) -> bool:
        return left == right

    def __str__(self) -> str:
        return "="


@dataclass(frozen=True)
class SolutionEquivalence:
    """The paper's ∼M: equal spaces of solutions (gives quasi-inverses)."""

    mapping: SchemaMapping

    def related(self, left: Instance, right: Instance) -> bool:
        return data_exchange_equivalent(self.mapping, left, right)

    def __str__(self) -> str:
        return f"∼{self.mapping.name or 'M'}"


@dataclass(frozen=True)
class SubsetPropertyReport:
    """Outcome of a bounded (∼1,∼2)-subset property check.

    ``violations`` lists pairs (I1, I2) with Sol(I2) ⊆ Sol(I1) for
    which no witness pair (I1', I2') with I1 ∼1 I1', I2 ∼2 I2' and
    I1' ⊆ I2' exists in the witness universe.  ``checked`` counts the
    containment pairs examined.
    """

    holds: bool
    checked: int
    violations: Tuple[Tuple[Instance, Instance], ...] = ()


def _default_witnesses(universe: Sequence[Instance]) -> List[Instance]:
    """Universe closed under pairwise unions.

    The paper's positive subset-property proofs (Example 3.10,
    Proposition 3.11) construct the witness I2' = I1 ∪ I2, so closing
    the witness pool under unions makes the bounded check complete on
    those arguments.
    """
    pool = list(universe)
    seen = set(pool)
    for left in universe:
        for right in universe:
            union = left.union(right)
            if union not in seen:
                seen.add(union)
                pool.append(union)
    return pool


def subset_property(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    stop_at_first_violation: bool = True,
) -> SubsetPropertyReport:
    """Bounded check of the (∼1,∼2)-subset property (Definition 3.4).

    For every pair from *universe* with Sol(M, I2) ⊆ Sol(M, I1), look
    for witnesses (I1', I2') in *witness_universe* (default: the
    universe closed under pairwise unions) with I1 ∼1 I1', I2 ∼2 I2'
    and I1' ⊆ I2'.
    """
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )
    checked = 0
    violations: List[Tuple[Instance, Instance]] = []
    for left in universe:
        for right in universe:
            if not solutions_contained(mapping, right, left):
                continue  # only pairs with Sol(I2) ⊆ Sol(I1) matter
            checked += 1
            if _has_subset_witness(mapping, relation1, relation2, left, right, witnesses):
                continue
            violations.append((left, right))
            if stop_at_first_violation:
                return SubsetPropertyReport(False, checked, tuple(violations))
    return SubsetPropertyReport(not violations, checked, tuple(violations))


def _has_subset_witness(
    mapping: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    left: Instance,
    right: Instance,
    witnesses: Sequence[Instance],
) -> bool:
    for left_prime in witnesses:
        if not relation1.related(left, left_prime):
            continue
        for right_prime in witnesses:
            if left_prime.issubset(right_prime) and relation2.related(
                right, right_prime
            ):
                return True
    return False


def unique_solutions_property(
    mapping: SchemaMapping, universe: Sequence[Instance]
) -> Tuple[bool, Tuple[Tuple[Instance, Instance], ...]]:
    """Bounded check of the unique-solutions property (from [3]).

    Returns (holds, violations): pairs of *distinct* instances from
    the universe with equal solution spaces.  A violation certifies
    non-invertibility.
    """
    violations: List[Tuple[Instance, Instance]] = []
    ordered = list(universe)
    for index, left in enumerate(ordered):
        for right in ordered[index + 1 :]:
            if left != right and data_exchange_equivalent(mapping, left, right):
                violations.append((left, right))
    return (not violations, tuple(violations))


@dataclass(frozen=True)
class InverseCheckReport:
    """Outcome of a bounded (∼1,∼2)-inverse check.

    ``mismatches`` are pairs (I1, I2) on which the two sides of
    Definition 3.3 disagree, with the direction recorded:
    ``"id_only"`` means (I1,I2) ∈ Inst(Id)[∼1,∼2] but not in
    Inst(M∘M')[∼1,∼2] over the witness pool, and ``"comp_only"`` the
    converse.
    """

    holds: bool
    checked: int
    mismatches: Tuple[Tuple[Instance, Instance, str], ...] = ()


def is_quasi_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
) -> InverseCheckReport:
    """Bounded check that *candidate* is a quasi-inverse of *mapping*.

    Instantiates Definition 3.8: both ∼1 and ∼2 are ∼M.  Use
    :func:`is_generalized_inverse` for other relation pairs.
    """
    equivalence = SolutionEquivalence(mapping)
    return is_generalized_inverse(
        mapping,
        candidate,
        equivalence,
        equivalence,
        universe,
        witness_universe=witness_universe,
        max_nulls=max_nulls,
        stop_at_first_mismatch=stop_at_first_mismatch,
    )


def is_generalized_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    relation1: EquivalenceRelation,
    relation2: EquivalenceRelation,
    universe: Sequence[Instance],
    *,
    witness_universe: Optional[Sequence[Instance]] = None,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
) -> InverseCheckReport:
    """Bounded check of Definition 3.3: is *candidate* a
    (∼1,∼2)-inverse of *mapping*?

    For every pair (I1, I2) from *universe*, compares membership of
    (I1, I2) in Inst(Id)[∼1,∼2] and in Inst(M∘M')[∼1,∼2], with the
    existential witnesses (I1', I2') drawn from *witness_universe*
    (default: the universe closed under pairwise unions).  A reported
    mismatch of kind ``"comp_only"`` is a definite refutation; one of
    kind ``"id_only"`` refutes up to the witness pool.
    """
    witnesses = (
        list(witness_universe)
        if witness_universe is not None
        else _default_witnesses(universe)
    )

    def in_id_closure(left: Instance, right: Instance) -> bool:
        for left_prime in witnesses:
            if not relation1.related(left, left_prime):
                continue
            for right_prime in witnesses:
                if left_prime.issubset(right_prime) and relation2.related(
                    right, right_prime
                ):
                    return True
        return False

    def in_comp_closure(left: Instance, right: Instance) -> bool:
        for left_prime in witnesses:
            if not relation1.related(left, left_prime):
                continue
            for right_prime in witnesses:
                if not relation2.related(right, right_prime):
                    continue
                if composition_membership(
                    mapping, candidate, left_prime, right_prime, max_nulls=max_nulls
                ):
                    return True
        return False

    checked = 0
    mismatches: List[Tuple[Instance, Instance, str]] = []
    for left in universe:
        for right in universe:
            checked += 1
            in_id = in_id_closure(left, right)
            in_comp = in_comp_closure(left, right)
            if in_id == in_comp:
                continue
            kind = "id_only" if in_id else "comp_only"
            mismatches.append((left, right, kind))
            if stop_at_first_mismatch:
                return InverseCheckReport(False, checked, tuple(mismatches))
    return InverseCheckReport(not mismatches, checked, tuple(mismatches))


def is_inverse(
    mapping: SchemaMapping,
    candidate: SchemaMapping,
    universe: Sequence[Instance],
    *,
    max_nulls: int = 7,
    stop_at_first_mismatch: bool = True,
) -> InverseCheckReport:
    """Bounded check that *candidate* is an inverse of *mapping*.

    Definition (Section 2): Inst(Id) = Inst(M ∘ M') — i.e. for ground
    pairs, I1 ⊆ I2 iff (I1, I2) ∈ Inst(M ∘ M').  Equality of the two
    relations is checked pairwise over *universe*; both membership
    tests are exact, so any mismatch is a definite refutation.
    """
    checked = 0
    mismatches: List[Tuple[Instance, Instance, str]] = []
    for left in universe:
        for right in universe:
            checked += 1
            in_id = left.issubset(right)
            in_comp = composition_membership(
                mapping, candidate, left, right, max_nulls=max_nulls
            )
            if in_id == in_comp:
                continue
            kind = "id_only" if in_id else "comp_only"
            mismatches.append((left, right, kind))
            if stop_at_first_mismatch:
                return InverseCheckReport(False, checked, tuple(mismatches))
    return InverseCheckReport(not mismatches, checked, tuple(mismatches))
