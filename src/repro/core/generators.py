"""Minimal generators (Definitions 4.2/4.3, Lemma 4.4, Algorithm MinGen).

A source conjunction beta(x, z) is a *generator* of a target formula
``exists y psi_T(x, y)`` (with respect to Sigma) when the s-t tgd
``beta -> exists y psi_T`` is a logical consequence of Sigma —
equivalently, when the chase of the canonical instance I_beta with
Sigma contains an image of psi_T fixing x (the remark after
Definition 4.2).  A generator is *minimal* when no strict subset of
its conjuncts is itself a generator.

Two implementations are provided:

* :func:`minimal_generators` (default, ``method="proofs"``) —
  backward chaining.  Every way the chase can produce the goal facts
  is a *proof*: a partition of the goal atoms into firings, each
  firing labeled by a tgd and matching its block of goal atoms against
  that tgd's conclusion atoms; the global unification problem (where
  the frontier x is rigid, the goal's y's are flexible, the tgd's
  existential variables behave as per-firing rigid nulls) yields the
  most general generator of that proof.  Minimal generators that are
  *specializations* (the paper's Example 4.5 lists both
  ``T(x3,x1) ∧ R(x3,x3,x4)`` and its instance ``T(x1,x1) ∧ R(x1,x1,x4)``)
  are recovered by closing each most-general generator under variable
  identifications — which preserves generatorhood, since the chase is
  monotone under homomorphisms of the source instance.  The final
  subset-minimization replays the paper's Step 3.

* :func:`minimal_generators_exhaustive` (``method="exhaustive"``) —
  the paper's Algorithm MinGen verbatim: enumerate every conjunction
  of at most s1*s2 atoms (Lemma 4.4) up to renaming of z, chase-test
  each, and minimize.  Exponentially slower; kept as the ground-truth
  oracle the test suite cross-validates the proof method against.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from itertools import product
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.chase.homomorphism import all_homomorphisms, find_homomorphism
from repro.chase.standard import chase
from repro.datamodel.atoms import Atom, atoms_variables
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term, Variable
from repro.dependencies.descriptions import set_partitions
from repro.core.mapping import MappingError, SchemaMapping
from repro.errors import MinGenBudgetError


@dataclass(frozen=True)
class MinGenConfig:
    """Resource limits and method selection for the MinGen search.

    ``max_atoms`` defaults to the Lemma 4.4 bound s1*s2 (used by the
    exhaustive method; the proof method is bounded structurally).
    ``max_candidates`` aborts pathological searches.
    ``max_specialization_vars`` caps the variable-identification
    closure of the proof method (generators with more fresh variables
    than this keep only their most general form).
    """

    method: str = "proofs"
    max_atoms: Optional[int] = None
    max_fresh_vars: Optional[int] = None
    max_candidates: int = 2_000_000
    max_specialization_vars: int = 6
    fresh_prefix: str = "z"


@dataclass(frozen=True)
class Generator:
    """A generator beta(x, z) of a goal formula."""

    atoms: Tuple[Atom, ...]
    frontier: Tuple[Variable, ...]

    def fresh_variables(self) -> Tuple[Variable, ...]:
        """The z vector: variables of the conjunction outside the frontier."""
        frontier = set(self.frontier)
        return tuple(v for v in atoms_variables(self.atoms) if v not in frontier)

    def atom_set(self) -> FrozenSet[Atom]:
        return frozenset(self.atoms)

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.atoms)
        fresh = self.fresh_variables()
        if fresh:
            names = ",".join(v.name for v in fresh)
            return f"∃{names} ({body})"
        return body


def lemma_4_4_bound(mapping: SchemaMapping, goal_atoms: Sequence[Atom]) -> int:
    """The Lemma 4.4 bound s1*s2 on minimal-generator size."""
    s1 = max(len(dep.premise.atoms) for dep in mapping.dependencies)
    s2 = len(goal_atoms)
    return s1 * s2


def is_generator(
    mapping: SchemaMapping,
    candidate_atoms: Sequence[Atom],
    goal_atoms: Sequence[Atom],
    frontier: Sequence[Variable],
) -> bool:
    """Chase-based generator test (the remark after Definition 4.2).

    Chases the canonical instance I_beta with Sigma and looks for a
    homomorphic image of the goal conjunction that fixes the frontier
    pointwise (the y's may land anywhere, including on nulls).
    """
    canonical = Instance.of(candidate_atoms)
    chased = chase(canonical, mapping.dependencies).instance
    fixed: Dict[Term, Term] = {v: v for v in frontier}
    return find_homomorphism(goal_atoms, chased, fixed=fixed) is not None


def _fresh_prefix(
    config: MinGenConfig, goal_atoms: Sequence[Atom], frontier: Sequence[Variable]
) -> str:
    """A z-prefix whose generated names avoid the goal's variables."""
    taken = {v.name for v in atoms_variables(goal_atoms)}
    taken.update(v.name for v in frontier)
    prefix = config.fresh_prefix
    generated = re.compile(rf"^{re.escape(prefix)}\d+$")
    while any(generated.match(name) for name in taken):
        prefix = "_" + prefix
        generated = re.compile(rf"^{re.escape(prefix)}\d+$")
    return prefix


def embeds_into(
    smaller: Generator, larger_atoms: FrozenSet[Atom], frontier: Sequence[Variable]
) -> bool:
    """Is *smaller* a subset of *larger_atoms* up to renaming of z?

    Implements the paper's Step 3 subset check: an injective renaming
    of smaller's fresh variables (frontier fixed) carrying every
    conjunct of smaller into the larger conjunction.
    """
    target = Instance.of(larger_atoms)
    fixed: Dict[Term, Term] = {v: v for v in frontier}
    frontier_set = set(frontier)
    fresh = smaller.fresh_variables()
    for assignment in all_homomorphisms(smaller.atoms, target, fixed=fixed):
        images = [assignment[v] for v in fresh]
        if len(set(images)) != len(images):
            continue  # not injective on z
        if any(
            not isinstance(image, Variable) or image in frontier_set
            for image in images
        ):
            continue  # z must map to fresh variables of the larger conjunction
        return True
    return False


def _canonical_key(
    atoms: Sequence[Atom], frontier: Sequence[Variable]
) -> Tuple:
    """A renaming-invariant key for a candidate conjunction."""
    frontier_set = set(frontier)
    ordered = sorted(set(atoms))
    renaming: Dict[Variable, Variable] = {}
    for current in ordered:
        for variable in current.variables():
            if variable not in frontier_set and variable not in renaming:
                renaming[variable] = Variable(f"#{len(renaming)}")
    return tuple(sorted(a.substitute(renaming) for a in ordered))


def _minimize(
    found: Sequence[Generator], frontier: Sequence[Variable]
) -> Tuple[Generator, ...]:
    """Step 3 (Minimize): drop any generator containing another one."""
    minimal: List[Generator] = []
    for candidate in found:
        dominated = any(
            other is not candidate
            and len(other.atoms) <= len(candidate.atoms)
            and other.atom_set() != candidate.atom_set()
            and embeds_into(other, candidate.atom_set(), frontier)
            for other in found
        )
        if not dominated:
            minimal.append(candidate)
    minimal.sort(key=lambda g: tuple(a.sort_key() for a in g.atoms))
    return tuple(minimal)


def minimal_generators(
    mapping: SchemaMapping,
    goal_atoms: Sequence[Atom],
    frontier: Sequence[Variable],
    config: Optional[MinGenConfig] = None,
) -> Tuple[Generator, ...]:
    """All minimal generators of ``exists y goal_atoms`` w.r.t. *mapping*.

    *frontier* is the x vector: the variables of the goal that the
    generators must carry (every other goal variable is existential).
    Dispatches on ``config.method``; see the module docstring.
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("minimal_generators requires a tgd mapping")
    config = config or MinGenConfig()
    if config.method == "exhaustive":
        return minimal_generators_exhaustive(mapping, goal_atoms, frontier, config)
    if config.method != "proofs":
        raise ValueError(f"unknown MinGen method {config.method!r}")
    return _minimal_generators_proofs(mapping, goal_atoms, frontier, config)


# ----------------------------------------------------------------------
# Proof-based search (default).
# ----------------------------------------------------------------------

class _UnionFind:
    """Union-find over hashable nodes with path compression."""

    def __init__(self) -> None:
        self.parent: Dict[Hashable, Hashable] = {}

    def find(self, node: Hashable) -> Hashable:
        self.parent.setdefault(node, node)
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, left: Hashable, right: Hashable) -> None:
        self.parent[self.find(left)] = self.find(right)

    def classes(self) -> Dict[Hashable, List[Hashable]]:
        grouped: Dict[Hashable, List[Hashable]] = {}
        for node in self.parent:
            grouped.setdefault(self.find(node), []).append(node)
        return grouped


def _proof_assignments(
    tgds: Sequence, goal: Sequence[Atom]
) -> Iterator[Tuple[Tuple[Tuple[int, ...], int, Tuple[int, ...]], ...]]:
    """Enumerate proof shapes.

    A proof shape partitions the goal atoms into firings; each firing
    is (goal-atom indices, tgd index, per-atom conclusion-atom index).
    Relation/arity compatibility is checked eagerly.
    """
    indices = list(range(len(goal)))
    for partition in set_partitions(indices):
        per_block: List[List[Tuple[Tuple[int, ...], int, Tuple[int, ...]]]] = []
        dead = False
        for block in partition:
            options: List[Tuple[Tuple[int, ...], int, Tuple[int, ...]]] = []
            for tgd_index, sigma in enumerate(tgds):
                conclusion = sigma.disjuncts[0]
                compatible_per_atom = []
                for goal_index in block:
                    compatible = [
                        k
                        for k, atom in enumerate(conclusion)
                        if atom.relation == goal[goal_index].relation
                        and atom.arity == goal[goal_index].arity
                    ]
                    compatible_per_atom.append(compatible)
                for choice in product(*compatible_per_atom):
                    options.append((tuple(block), tgd_index, tuple(choice)))
            if not options:
                dead = True
                break
            per_block.append(options)
        if dead:
            continue
        yield from product(*per_block)


def _solve_proof(
    tgds: Sequence,
    goal: Sequence[Atom],
    frontier: Sequence[Variable],
    firings: Sequence[Tuple[Tuple[int, ...], int, Tuple[int, ...]]],
    prefix: str,
) -> Optional[Tuple[Atom, ...]]:
    """Unify one proof shape; return its most general generator.

    Node kinds: goal frontier variables and constants are rigid and
    mutually distinct; goal existential variables are flexible; each
    firing's tgd variables are renamed apart, with conclusion-only
    (existential) variables acting as per-firing rigid nulls and all
    others flexible.  Returns None when unification fails.
    """
    frontier_set = set(frontier)
    uf = _UnionFind()

    def goal_node(term: Term) -> Hashable:
        if isinstance(term, Constant):
            return ("const", term.value)
        if term in frontier_set:
            return ("x", term.name)
        return ("y", term.name)

    rigid_null: Set[Hashable] = set()
    rigid_value: Dict[Hashable, Hashable] = {}

    for firing_id, (block, tgd_index, conclusion_choice) in enumerate(firings):
        sigma = tgds[tgd_index]
        premise_vars = set(sigma.premise_variables())
        conclusion = sigma.disjuncts[0]

        def firing_node(term: Term) -> Hashable:
            if isinstance(term, Constant):
                return ("const", term.value)
            if term in premise_vars:
                return ("v", firing_id, term.name)
            return ("w", firing_id, term.name)

        for goal_index, conclusion_index in zip(block, conclusion_choice):
            goal_atom = goal[goal_index]
            conclusion_atom = conclusion[conclusion_index]
            for goal_arg, conclusion_arg in zip(goal_atom.args, conclusion_atom.args):
                left = goal_node(goal_arg)
                right = firing_node(conclusion_arg)
                if right[0] == "w":
                    rigid_null.add(right)
                uf.union(left, right)

    # Validate classes: at most one rigid member; nulls only with y's.
    for root, members in uf.classes().items():
        rigids = [
            node
            for node in members
            if node[0] in ("x", "const") or node in rigid_null
        ]
        if len({node for node in rigids}) > 1:
            return None
        if rigids and rigids[0] in rigid_null:
            if any(node[0] == "v" or node[0] in ("x", "const") for node in members
                   if node != rigids[0]):
                return None

    # Assign values: rigid x/const -> themselves; flexible classes -> fresh z.
    values: Dict[Hashable, Term] = {}
    counter = 0

    def value_of(node: Hashable) -> Term:
        nonlocal counter
        root = uf.find(node)
        if root in values:
            return values[root]
        rigid: Optional[Term] = None
        for member in uf.classes().get(root, [root]):
            if member[0] == "x":
                rigid = Variable(member[1])
            elif member[0] == "const":
                rigid = Constant(member[1])
        if rigid is None:
            counter += 1
            rigid = Variable(f"{prefix}{counter}")
        values[root] = rigid
        return rigid

    # Build beta: instantiate every firing's premise deterministically.
    atoms: List[Atom] = []
    for firing_id, (block, tgd_index, conclusion_choice) in enumerate(firings):
        sigma = tgds[tgd_index]
        for premise_atom in sigma.premise.atoms:
            args: List[Term] = []
            for arg in premise_atom.args:
                if isinstance(arg, Variable):
                    args.append(value_of(("v", firing_id, arg.name)))
                else:
                    args.append(arg)
            atoms.append(Atom(premise_atom.relation, tuple(args)))
    result = tuple(sorted(set(atoms)))
    if not frontier_set <= set(atoms_variables(result)):
        return None
    return result


def _specializations(
    atoms: Tuple[Atom, ...],
    frontier: Sequence[Variable],
    config: MinGenConfig,
) -> Iterator[Tuple[Atom, ...]]:
    """All variable identifications of a most general generator.

    Fresh variables may merge with each other or collapse onto
    frontier variables; frontier variables stay fixed.  Identity
    included.  Generatorhood is preserved under these substitutions
    (the chase is monotone under source homomorphisms), so callers
    need not re-run the chase test.
    """
    frontier = tuple(frontier)
    frontier_set = set(frontier)
    fresh = [v for v in atoms_variables(atoms) if v not in frontier_set]
    if len(fresh) > config.max_specialization_vars:
        yield atoms
        return
    for partition in set_partitions(fresh):
        blocks = list(partition)
        for targets in product((None,) + frontier, repeat=len(blocks)):
            substitution: Dict[Term, Term] = {}
            for block, target in zip(blocks, targets):
                representative: Term = target if target is not None else block[0]
                for variable in block:
                    substitution[variable] = representative
            yield tuple(sorted({a.substitute(substitution) for a in atoms}))


def _minimal_generators_proofs(
    mapping: SchemaMapping,
    goal_atoms: Sequence[Atom],
    frontier: Sequence[Variable],
    config: MinGenConfig,
) -> Tuple[Generator, ...]:
    goal_atoms = tuple(goal_atoms)
    frontier = tuple(frontier)
    prefix = _fresh_prefix(config, goal_atoms, frontier)
    tgds = mapping.dependencies

    budget = config.max_candidates
    general: List[Tuple[Atom, ...]] = []
    seen_general: Set[Tuple] = set()
    for firings in _proof_assignments(tgds, goal_atoms):
        budget -= 1
        if budget < 0:
            raise MinGenBudgetError(
                f"MinGen exceeded {config.max_candidates} proof shapes",
                kind="mingen",
                limit=config.max_candidates,
            )
        solved = _solve_proof(tgds, goal_atoms, frontier, firings, prefix)
        if solved is None:
            continue
        key = _canonical_key(solved, frontier)
        if key in seen_general:
            continue
        seen_general.add(key)
        # Safety net: the construction guarantees this, but verify.
        if is_generator(mapping, solved, goal_atoms, frontier):
            general.append(solved)

    found: List[Generator] = []
    seen: Set[Tuple] = set()
    for base in general:
        for specialized in _specializations(base, frontier, config):
            budget -= 1
            if budget < 0:
                raise MinGenBudgetError(
                    f"MinGen exceeded {config.max_candidates} candidates",
                    kind="mingen",
                    limit=config.max_candidates,
                )
            if not set(frontier) <= set(atoms_variables(specialized)):
                continue
            key = _canonical_key(specialized, frontier)
            if key in seen:
                continue
            seen.add(key)
            found.append(Generator(specialized, frontier))
    return _minimize(found, frontier)


# ----------------------------------------------------------------------
# Exhaustive search (the paper's algorithm verbatim; the test oracle).
# ----------------------------------------------------------------------

def _relevant_relations(
    mapping: SchemaMapping, goal_atoms: Sequence[Atom]
) -> Tuple[str, ...]:
    """Source relations that can contribute to producing goal facts."""
    goal_relations = {a.relation for a in goal_atoms}
    relevant: Set[str] = set()
    for dependency in mapping.dependencies:
        if dependency.conclusion_relations() & goal_relations:
            relevant.update(dependency.premise_relations())
    return tuple(sorted(relevant))


def _candidate_atoms(
    relations: Sequence[Tuple[str, int]],
    frontier: Sequence[Variable],
    used_fresh: int,
    fresh_budget: int,
    prefix: str,
) -> Iterator[Tuple[Atom, int]]:
    """All next atoms, with canonical introduction of fresh variables.

    Yields (atom, new_used_fresh).  Within the atom, fresh variables
    beyond the ``used_fresh`` already introduced must appear in
    left-to-right order z_{used+1}, z_{used+2}, ... — the canonical
    naming that collapses renaming-equivalent candidates.
    """
    frontier = tuple(frontier)
    for relation, arity in relations:

        def positions(
            index: int, new_count: int
        ) -> Iterator[Tuple[Tuple[Variable, ...], int]]:
            if index == arity:
                yield (), new_count
                return
            choices: List[Variable] = list(frontier)
            choices.extend(
                Variable(f"{prefix}{i + 1}") for i in range(used_fresh + new_count)
            )
            new_allowed = used_fresh + new_count < fresh_budget
            if new_allowed:
                choices.append(Variable(f"{prefix}{used_fresh + new_count + 1}"))
            for position_index, choice in enumerate(choices):
                is_new = new_allowed and position_index == len(choices) - 1
                for rest, total_new in positions(
                    index + 1, new_count + (1 if is_new else 0)
                ):
                    yield (choice,) + rest, total_new

        for args, new_count in positions(0, 0):
            yield Atom(relation, args), used_fresh + new_count


def minimal_generators_exhaustive(
    mapping: SchemaMapping,
    goal_atoms: Sequence[Atom],
    frontier: Sequence[Variable],
    config: Optional[MinGenConfig] = None,
) -> Tuple[Generator, ...]:
    """Algorithm MinGen exactly as printed in the paper.

    Breadth-first by conjunct count up to the Lemma 4.4 bound, with a
    chase test per candidate and the Step 3 minimize pass; exponential
    in schema size and used as the oracle for the proof-based method.
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("minimal_generators requires a tgd mapping")
    config = config or MinGenConfig(method="exhaustive")
    goal_atoms = tuple(goal_atoms)
    frontier = tuple(frontier)

    max_atoms = config.max_atoms
    if max_atoms is None:
        max_atoms = lemma_4_4_bound(mapping, goal_atoms)
    relevant_names = _relevant_relations(mapping, goal_atoms)
    relations = tuple((name, mapping.source.arity(name)) for name in relevant_names)
    if not relations:
        return ()
    max_arity = max(arity for _, arity in relations)
    fresh_budget = config.max_fresh_vars
    if fresh_budget is None:
        fresh_budget = max_atoms * max_arity
    prefix = _fresh_prefix(config, goal_atoms, frontier)

    found: List[Generator] = []
    seen: Set[Tuple] = set()
    budget = config.max_candidates

    def contains_known(atom_set: FrozenSet[Atom]) -> bool:
        return any(embeds_into(known, atom_set, frontier) for known in found)

    frontier_needed = set(frontier)
    level: List[Tuple[FrozenSet[Atom], int]] = [(frozenset(), 0)]
    for size in range(1, max_atoms + 1):
        next_level: List[Tuple[FrozenSet[Atom], int]] = []
        for atom_set, used_fresh in level:
            for candidate_atom, new_used in _candidate_atoms(
                relations, frontier, used_fresh, fresh_budget, prefix
            ):
                if candidate_atom in atom_set:
                    continue
                extended = atom_set | {candidate_atom}
                key = _canonical_key(tuple(extended), frontier)
                if key in seen:
                    continue
                seen.add(key)
                budget -= 1
                if budget < 0:
                    raise MinGenBudgetError(
                        f"MinGen exceeded {config.max_candidates} candidates",
                        kind="mingen",
                        limit=config.max_candidates,
                    )
                if contains_known(extended):
                    continue
                remaining = max_atoms - size
                missing = frontier_needed - set(atoms_variables(tuple(extended)))
                if len(missing) > remaining * max_arity:
                    continue  # cannot cover the frontier anymore
                if not missing and is_generator(
                    mapping, tuple(sorted(extended)), goal_atoms, frontier
                ):
                    found.append(Generator(tuple(sorted(extended)), frontier))
                    continue  # supersets of a generator are not minimal
                next_level.append((extended, new_used))
        level = next_level
        if not level:
            break
    return _minimize(found, frontier)
