"""Logical implication between dependencies, by chasing frozen premises.

Used for the Section 5 claim that the Inverse algorithm's output M' is
the *weakest* inverse: any other inverse's dependency set logically
implies Sigma'.

``logically_implies(Sigma, sigma)`` decides Sigma ⊨ sigma for
dependencies in the full language of Definition 2.1 by the classical
critical-instance argument, adapted to constants and inequalities:

* premise variables of sigma are instantiated by every *complete
  description* (Section 4's delta) — the pattern of equalities among
  them — because inequalities in the antecedents make satisfaction
  non-generic;
* for each description, variables carrying ``Constant()`` freeze to
  fresh distinct constants and the rest to fresh distinct labeled
  nulls (so ``Constant(x)`` and ``x != y`` premises of the antecedents
  evaluate exactly as in an arbitrary model);
* descriptions that collapse an inequality of sigma's own premise are
  vacuous and skipped;
* the frozen instance is chased with the antecedents (the disjunctive
  chase, so disjunctive antecedents branch); sigma is implied iff on
  *every* leaf some disjunct of sigma's conclusion embeds, fixing the
  frozen premise assignment.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.chase.disjunctive import disjunctive_chase
from repro.chase.homomorphism import find_homomorphism
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Term
from repro.dependencies.dependency import Dependency
from repro.dependencies.descriptions import complete_descriptions


def logically_implies(
    antecedents: Sequence[Dependency],
    consequent: Dependency,
    *,
    max_nodes: int = 10_000,
) -> bool:
    """Decide whether the conjunction of *antecedents* implies *consequent*."""
    antecedents = tuple(antecedents)
    premise_vars = consequent.premise_variables()
    for description in complete_descriptions(premise_vars):
        collapsed = any(
            description[left] == description[right]
            for left, right in consequent.premise.inequalities
        )
        if collapsed:
            continue  # this instantiation pattern falsifies the premise
        try:
            quotiented = consequent.substitute(dict(description))
        except Exception:
            continue  # the quotient is inconsistent with the premise
        if not _implies_frozen(antecedents, quotiented, max_nodes):
            return False
    return True


def _implies_frozen(
    antecedents: Sequence[Dependency], consequent: Dependency, max_nodes: int
) -> bool:
    """The critical-instance test for one equality pattern."""
    frozen: Dict[Term, Term] = {}
    constant_counter = 0
    null_counter = 0
    for variable in consequent.premise_variables():
        if variable in consequent.premise.constant_vars:
            constant_counter += 1
            frozen[variable] = Constant(f"_c{constant_counter}")
        else:
            null_counter += 1
            frozen[variable] = Null(f"_n{null_counter}")
    instance = Instance.of(
        atom.substitute(frozen) for atom in consequent.premise.atoms
    )
    tree = disjunctive_chase(instance, antecedents, max_nodes=max_nodes)
    for leaf in tree.leaves():
        satisfied = any(
            find_homomorphism(
                tuple(atom.substitute(frozen) for atom in disjunct),
                leaf,
            )
            is not None
            for disjunct in consequent.disjuncts
        )
        if not satisfied:
            return False
    return True


def logically_equivalent(
    left: Sequence[Dependency], right: Sequence[Dependency]
) -> bool:
    """Mutual implication of two dependency sets."""
    left = tuple(left)
    right = tuple(right)
    return all(logically_implies(left, dep) for dep in right) and all(
        logically_implies(right, dep) for dep in left
    )


def minimize_dependency_set(
    dependencies: Sequence[Dependency], *, max_nodes: int = 10_000
) -> tuple:
    """A logically equivalent subset with no redundant member.

    Greedily drops any dependency implied by the remaining ones
    (checked with :func:`logically_implies`), scanning in reverse
    order so earlier members are preferred as keepers.  The result is
    an irredundant *subset*; like all minimization by greedy deletion
    it need not be the globally smallest equivalent set.

    Useful for simplifying algorithm outputs: e.g. the LAV
    quasi-inverse of Projection contains both
    ``Q(x) ∧ Constant(x) -> P(x, x)`` and the weaker
    ``Q(x) ∧ Constant(x) -> ∃y P(x, y)``; the latter is dropped.
    """
    kept = list(dependencies)
    index = len(kept) - 1
    while index >= 0:
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1 :]
        if rest and logically_implies(rest, candidate, max_nodes=max_nodes):
            kept = rest
        index -= 1
    return tuple(kept)
