"""The Inverse algorithm (Section 5, Theorem 5.1).

If M = (S, T, Sigma) is invertible, the algorithm produces an inverse
M' = (T, S, Sigma') specified by *full* tgds with constants and
inequalities (inequalities among constants only):

1. verify the constant-propagation property (Definition 5.2 /
   Proposition 5.3): for each source relation R, the chase of
   R(x1,...,xm) must mention every x_i — otherwise the algorithm
   halts without output (:class:`InverseError` here);
2. enumerate the *prime atoms* of every source relation — atoms whose
   variables are x1, x2, ... in order of first appearance, one per
   set partition of the positions;
3. for each prime instance I_alpha, chase it with Sigma and emit the
   full tgd omega(Sigma, I_alpha) whose premise is the chase result
   (nulls renamed to fresh universally quantified variables) plus
   Constant(x_i) conjuncts and pairwise inequalities on alpha's
   variables, and whose conclusion is alpha.

The paper also shows (Section 5 remark) that when Sigma is full the
Constant() conjuncts can be dropped; ``inverse`` does so automatically
(disable with ``drop_constants_when_full=False``).  M' is the *weakest*
inverse: any other inverse's dependency set logically implies Sigma'.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.chase.standard import chase
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null, Term, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.core.mapping import MappingError, SchemaMapping


class InverseError(MappingError):
    """The Inverse algorithm halted without output."""


def restricted_growth_strings(length: int) -> Iterator[Tuple[int, ...]]:
    """All restricted growth strings of the given length.

    A restricted growth string a_1..a_m has a_1 = 1 and
    a_{i+1} <= max(a_1..a_i) + 1; these index the set partitions of
    the positions, i.e. the paper's *prime atoms*.
    """
    if length == 0:
        yield ()
        return

    def extend(prefix: Tuple[int, ...], maximum: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == length:
            yield prefix
            return
        for value in range(1, maximum + 2):
            yield from extend(prefix + (value,), max(maximum, value))

    yield from extend((1,), 1)


def prime_atoms(relation: str, arity: int) -> Tuple[Atom, ...]:
    """The prime atoms of a relation, in lexicographic order (Step 2).

    E.g. for a ternary R: R(x1,x1,x1), R(x1,x1,x2), R(x1,x2,x1),
    R(x1,x2,x2), R(x1,x2,x3).
    """
    atoms = []
    for string in restricted_growth_strings(arity):
        atoms.append(Atom(relation, tuple(Variable(f"x{i}") for i in string)))
    return tuple(sorted(atoms))


def constant_propagation_report(mapping: SchemaMapping) -> Dict[str, bool]:
    """Per-relation constant-propagation check (Definition 5.2).

    M propagates constants iff for each source relation R, the chase
    of R(x1,...,xm) with Sigma mentions each of the m variables.
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("constant propagation is defined for tgd mappings")
    report: Dict[str, bool] = {}
    for relation, arity in mapping.source.relations:
        variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
        canonical = Instance.of([Atom(relation, variables)])
        produced = chase(canonical, mapping.dependencies).produced
        report[relation] = set(variables) <= set(produced.active_domain())
    return report


def has_constant_propagation(mapping: SchemaMapping) -> bool:
    """True when every source relation propagates its constants."""
    return all(constant_propagation_report(mapping).values())


def omega(
    mapping: SchemaMapping,
    alpha: Atom,
    *,
    with_constants: bool = True,
    allow_existentials: bool = False,
) -> Optional[Dependency]:
    """The tgd omega(Sigma, I_alpha) of Step 3.

    With ``allow_existentials=False`` (the Inverse algorithm), every
    variable of alpha must appear in the chase of I_alpha — guaranteed
    by the constant-propagation check — and the result is a full tgd.

    With ``allow_existentials=True`` (the Theorem 4.7 construction,
    see :func:`repro.core.quasi_inverse.lav_quasi_inverse`), variables
    of alpha that the chase loses are existentially quantified in the
    conclusion instead, and the ``Constant``/inequality guards range
    over the appearing variables only.  Returns None when the chase of
    I_alpha is empty (nothing to reverse).
    """
    canonical = Instance.of([alpha])
    chased = chase(canonical, mapping.dependencies).produced
    if not chased:
        if allow_existentials:
            return None
        raise InverseError(
            f"the chase of {alpha} is empty; omega(Sigma, I_alpha) is undefined"
        )
    # Rename the chase's nulls to fresh universally quantified variables.
    variables = {v.name for v in alpha.variables()}
    renaming: Dict[Term, Term] = {}
    counter = 1
    for null in sorted(chased.nulls()):
        while f"y{counter}" in variables:
            counter += 1
        fresh = Variable(f"y{counter}")
        counter += 1
        renaming[null] = fresh
    premise_atoms = tuple(sorted(chased.substitute(renaming).facts))
    alpha_variables = tuple(dict.fromkeys(alpha.variables()))
    appearing = {
        v for atom in premise_atoms for v in atom.variables()
    }
    guarded = tuple(v for v in alpha_variables if v in appearing)
    if len(guarded) < len(alpha_variables) and not allow_existentials:
        raise InverseError(
            f"the chase of {alpha} loses variables; run the "
            "constant-propagation check first"
        )
    constant_vars = frozenset(guarded) if with_constants else frozenset()
    inequalities = frozenset(combinations(guarded, 2))
    premise = Premise(premise_atoms, constant_vars, inequalities)
    return Dependency(premise, ((alpha,),))


def inverse(
    mapping: SchemaMapping,
    *,
    drop_constants_when_full: bool = True,
    name: str = "",
) -> SchemaMapping:
    """Algorithm Inverse(M).

    Returns M' = (T, S, Sigma') specified by full tgds with constants
    and inequalities.  If M is invertible, M' is an inverse of M, and
    the weakest one.  Raises :class:`InverseError` when M fails the
    constant-propagation property (then M is certainly not invertible,
    by Proposition 5.3).
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("Inverse requires a mapping specified by s-t tgds")
    report = constant_propagation_report(mapping)
    failing = sorted(relation for relation, ok in report.items() if not ok)
    if failing:
        raise InverseError(
            "mapping does not satisfy the constant-propagation property "
            f"(failing relations: {', '.join(failing)}); by Proposition 5.3 "
            "it is not invertible"
        )
    with_constants = not (drop_constants_when_full and mapping.is_full())

    dependencies: List[Dependency] = []
    for relation, arity in mapping.source.relations:
        for alpha in prime_atoms(relation, arity):
            dependencies.append(
                omega(mapping, alpha, with_constants=with_constants)
            )
    return SchemaMapping(
        mapping.target,
        mapping.source,
        tuple(dependencies),
        name=name or (f"Inverse({mapping.name})" if mapping.name else ""),
    )
