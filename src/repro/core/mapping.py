"""Schema mappings and solution-space reasoning.

A schema mapping is a triple M = (S, T, Sigma).  For M specified by
s-t tgds and a ground instance I, the chase of I with Sigma is a
universal solution (Section 2), and a target instance J is a solution
for I exactly when there is a homomorphism chase(I) -> J.  This gives
decision procedures for the two relations everything else in the
paper is built from:

* Sol(M, I2) ⊆ Sol(M, I1)  ⟺  chase(I1) -> chase(I2);
* I1 ∼M I2  ⟺  chase(I1) and chase(I2) homomorphically equivalent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

from repro.chase.homomorphism import (
    all_homomorphisms,
    find_homomorphism,
    instance_homomorphism,
)
from repro.chase.standard import NullFactory, chase
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dependencies.dependency import Dependency, LanguageFeatures, language_audit
from repro.dependencies.parser import parse_dependencies
from repro.engine.cache import (
    cached_chase_result,
    canonical_key,
    chase_cache,
    mapping_key,
    verdict_cache,
)
from repro.engine.instrumentation import PhaseStats, engine_stats
from repro.engine.kernel import (
    kernel_active,
    kernel_hom_exists,
    kernel_instance,
    small_id,
    sql_active,
    use_backend,
)
from repro.errors import MappingError


@dataclass(frozen=True)
class SchemaMapping:
    """A schema mapping M = (source, target, dependencies)."""

    source: Schema
    target: Schema
    dependencies: Tuple[Dependency, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dependencies", tuple(self.dependencies))
        for dependency in self.dependencies:
            dependency.validate(self.source, self.target)
        # mappings key the weak memo tables consulted on every chase /
        # verdict lookup; the generated hash walks every dependency
        object.__setattr__(
            self, "_hash", hash((self.source, self.target, self.dependencies))
        )

    def __hash__(self) -> int:
        return self._hash

    # -- construction ------------------------------------------------------

    @classmethod
    def from_text(
        cls,
        source: Schema,
        target: Schema,
        text: str,
        name: str = "",
    ) -> "SchemaMapping":
        """Build a mapping from the parser's text syntax."""
        return cls(source, target, parse_dependencies(text), name=name)

    # -- classification ------------------------------------------------------

    def is_tgd_mapping(self) -> bool:
        """All dependencies are plain s-t tgds."""
        return all(dependency.is_tgd() for dependency in self.dependencies)

    def is_full(self) -> bool:
        """No existential quantifiers in any conclusion."""
        return all(dependency.is_full() for dependency in self.dependencies)

    def is_lav(self) -> bool:
        """Every dependency has a single-atom premise (and is a tgd)."""
        return all(dependency.is_lav() for dependency in self.dependencies)

    def language_features(self) -> LanguageFeatures:
        return language_audit(self.dependencies)

    # -- schema surgery ------------------------------------------------------

    def augment_source(self, relation: str, arity: int) -> "SchemaMapping":
        """The Introduction's M* = (S ∪ {R}, T, Sigma)."""
        return SchemaMapping(
            self.source.augment(relation, arity),
            self.target,
            self.dependencies,
            name=f"{self.name}+{relation}" if self.name else "",
        )

    def augment_target(self, relation: str, arity: int) -> "SchemaMapping":
        """Adds a fresh relation symbol to the target schema."""
        return SchemaMapping(
            self.source,
            self.target.augment(relation, arity),
            self.dependencies,
            name=f"{self.name}+{relation}" if self.name else "",
        )

    def __str__(self) -> str:
        label = self.name or "M"
        rendered = "; ".join(str(d) for d in self.dependencies)
        return f"{label}: {self.source} -> {self.target} with {{{rendered}}}"


@dataclass(frozen=True)
class StagedMapping(SchemaMapping):
    """A composition pipeline evaluated stage by stage, never composed.

    Semantically this *is* the composition ``stages[0] ∘ ... ∘
    stages[-1]``: its universal solution is computed by chasing each
    stage in turn, which is a universal solution of the composition
    whenever every stage is a tgd mapping and all but the last are
    full (the intermediate chase results are then ground, so they are
    genuine intermediate instances).  Construction enforces exactly
    that, so a :class:`StagedMapping` can be handed to any
    solution-space checker (``solutions_contained``,
    ``data_exchange_equivalent``, the sweep framework) in place of the
    MinGen-materialized composition and produce identical verdicts —
    without ever paying ``compose_full``'s blow-up.

    ``stage_backends`` optionally pins an execution backend per stage
    (``None`` inherits the ambient backend).
    """

    stages: Tuple[SchemaMapping, ...] = ()
    stage_backends: Tuple[Optional[str], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "stage_backends", tuple(self.stage_backends))
        if not self.stages:
            raise MappingError("a staged mapping needs at least one stage")
        if self.dependencies:
            raise MappingError(
                "a staged mapping carries no dependencies of its own; "
                "its stages do"
            )
        if self.stage_backends and len(self.stage_backends) != len(self.stages):
            raise MappingError("stage_backends must match stages in length")
        if self.stages[0].source != self.source:
            raise MappingError("first stage's source must match the pipeline's")
        if self.stages[-1].target != self.target:
            raise MappingError("last stage's target must match the pipeline's")
        for before, after in zip(self.stages, self.stages[1:]):
            if before.target.relations != after.source.relations:
                raise MappingError(
                    "staged pipeline breaks: "
                    f"{before.target} feeds {after.source}"
                )
        for position, stage in enumerate(self.stages):
            if not stage.is_tgd_mapping():
                raise MappingError("staged evaluation requires tgd stages")
            if position < len(self.stages) - 1 and not stage.is_full():
                raise MappingError(
                    "staged evaluation requires full stages before the last "
                    "(intermediate chase results must be ground)"
                )
        # stages, not (empty) dependencies, are this mapping's content
        object.__setattr__(
            self, "_hash", hash((self.source, self.target, self.stages))
        )

    # -- classification delegates to the stages ---------------------------

    def is_tgd_mapping(self) -> bool:
        return all(stage.is_tgd_mapping() for stage in self.stages)

    def is_full(self) -> bool:
        return all(stage.is_full() for stage in self.stages)

    def is_lav(self) -> bool:
        # Conservative: LAV-ness does not compose in general.
        return False

    def language_features(self) -> LanguageFeatures:
        combined = LanguageFeatures()
        for stage in self.stages:
            combined = combined | stage.language_features()
        return combined

    def __str__(self) -> str:
        label = self.name or "M"
        rendered = " ∘ ".join(stage.name or "M" for stage in self.stages)
        return f"{label}: {self.source} -> {self.target} staged as {rendered}"


def _staged_compute(mapping: StagedMapping):
    """Per-stage chase for a staged pipeline.

    Each stage routes through :func:`universal_solution`, so every
    intermediate result lands in the engine's content-addressed chase
    cache under the *stage's* mapping key — a pipeline sharing a
    prefix with another reuses the prefix's chases for free.
    """
    backends = mapping.stage_backends or (None,) * len(mapping.stages)

    def compute(source: Instance) -> Instance:
        current = source
        for stage, backend in zip(mapping.stages, backends):
            if backend is None:
                current = universal_solution(stage, current)
            else:
                with use_backend(backend):
                    current = universal_solution(stage, current)
        return current.restrict_to(mapping.target)

    return compute


def identity_mapping(schema: Schema, name: str = "Id") -> SchemaMapping:
    """The identity schema mapping Id = (S, Ŝ, {R(x) -> R(x)}).

    Following the paper's notational simplification, the replica
    schema Ŝ reuses the relation names of S; Inst(Id) is then the set
    of ground pairs (I1, I2) with I1 ⊆ I2.
    """
    from repro.dependencies.dependency import Premise

    dependencies = []
    for relation, arity in schema.relations:
        variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
        current = Atom(relation, variables)
        dependencies.append(Dependency(Premise((current,)), ((current,),)))
    return SchemaMapping(schema, schema, tuple(dependencies), name=name)


def _require_tgds(mapping: SchemaMapping, operation: str) -> None:
    if not mapping.is_tgd_mapping():
        raise MappingError(
            f"{operation} requires a mapping specified by plain s-t tgds"
        )


def _chase_compute(mapping: SchemaMapping):
    def compute(source: Instance) -> Instance:
        with engine_stats().phase("chase"):
            # No caller of the cached solution reads the step trace,
            # which lets the SQL backend chase full tgds set-at-a-time.
            result = chase(source, mapping.dependencies, trace=False)
        return result.instance.restrict_to(mapping.target)

    return compute


def _kernel_chase(mapping: SchemaMapping, instance: Instance, kinst):
    """Chase-memo miss path for the kernel backend.

    Computes the same cached value the object path would — the kernel
    instance just carries a per-mapping pointer to it (paired with the
    result's own kernel instance), so repeat lookups are one dict
    probe instead of a canonical-key construction plus an LRU
    round-trip."""
    _require_tgds(mapping, "universal_solution")
    if getattr(mapping, "stages", None):
        compute = _staged_compute(mapping)
    else:
        compute = _chase_compute(mapping)
    if kinst.is_ground:
        result = cached_chase_result(mapping, instance, compute)
    else:
        key = ("exact", mapping_key(mapping), instance.facts)
        result = chase_cache.memoize(key, lambda: compute(instance))
    entry = (result, kernel_instance(result))
    kinst.chase_memo[small_id(mapping)] = entry
    return entry


def universal_solution(mapping: SchemaMapping, instance: Instance) -> Instance:
    """chase_Sigma(I): a universal solution for *instance* under *mapping*.

    Requires a tgd mapping.  Results are memoized in the engine's
    content-addressed chase cache: ground instances key by canonical
    form (so isomorphic inputs share an entry), while instances
    already containing nulls or variables key by their exact facts,
    preserving the historical fresh-null naming of a direct chase.
    """
    if kernel_active():
        kinst = kernel_instance(instance)
        entry = kinst.chase_memo.get(small_id(mapping))
        if entry is None:
            entry = _kernel_chase(mapping, instance, kinst)
        return entry[0]
    _require_tgds(mapping, "universal_solution")
    if getattr(mapping, "stages", None):
        compute = _staged_compute(mapping)
    else:
        compute = _chase_compute(mapping)
    if instance.is_ground():
        return cached_chase_result(mapping, instance, compute)
    key = ("exact", mapping_key(mapping), instance.facts)
    return chase_cache.memoize(key, lambda: compute(instance))


@lru_cache(maxsize=2048)
def core_universal_solution(mapping: SchemaMapping, instance: Instance) -> Instance:
    """The *core* of the universal solution.

    The smallest universal solution, unique up to isomorphism; two
    ground instances are ∼M-equivalent exactly when their core
    solutions are isomorphic.  More expensive than
    :func:`universal_solution` (core computation searches for proper
    retractions), but canonical — useful for caching, display, and as
    the normal form behind data-exchange equivalence classes.
    """
    from repro.chase.homomorphism import core

    return core(universal_solution(mapping, instance))


def is_solution(mapping: SchemaMapping, instance: Instance, candidate: Instance) -> bool:
    """Model checking: does (instance, candidate) satisfy Sigma?

    Works for the full dependency language (disjunctions, Constant(),
    inequalities): for every premise match in *instance* some disjunct
    must admit an extension into *candidate*.
    """
    for dependency in mapping.dependencies:
        for match in all_homomorphisms(
            dependency.premise.atoms,
            instance,
            constant_vars=dependency.premise.constant_vars,
            inequalities=dependency.premise.inequalities,
        ):
            satisfied = any(
                find_homomorphism(disjunct, candidate, fixed=match) is not None
                for disjunct in dependency.disjuncts
            )
            if not satisfied:
                return False
    return True


def solutions_contained(
    mapping: SchemaMapping, inner: Instance, outer: Instance
) -> bool:
    """Sol(M, inner) ⊆ Sol(M, outer)?

    Equivalent (for tgd mappings) to the existence of a homomorphism
    chase(outer) -> chase(inner).  Verdicts are memoized content-
    addressed: the key is sound under independent renamings of either
    side's nulls, because a homomorphism never constrains where a
    null maps (even one shared between the two instances).

    Pair verdicts deliberately do *not* key by joint canonical form
    under orbit-mode sweeps: orbit reduction already deduplicates the
    outer loop, so the residual sharing between exact pairs (bounded
    by the representative's stabilizer) is worth less than the joint
    canonicalization costs.  Orbit-level sharing happens one layer
    down, in the symmetry-keyed chase cache the verdicts build on
    (:func:`repro.engine.cache.cached_chase_result`).
    """
    if kernel_active():
        return _kernel_solutions_contained(
            mapping, kernel_instance(inner), kernel_instance(outer), inner, outer
        )
    key = (
        "sol-contained",
        mapping_key(mapping),
        canonical_key(outer),
        canonical_key(inner),
    )
    hit, verdict = verdict_cache.get(key)
    if hit:
        return verdict
    with engine_stats().phase("homomorphism"):
        if sql_active():
            # Existence decomposed into per-relation subset probes and
            # per-component EXISTS queries; same verdict, same cache key.
            from repro.engine.sqlbackend import sql_has_homomorphism

            verdict = sql_has_homomorphism(
                universal_solution(mapping, outer),
                universal_solution(mapping, inner),
            )
        else:
            verdict = (
                instance_homomorphism(
                    universal_solution(mapping, outer),
                    universal_solution(mapping, inner),
                )
                is not None
            )
    verdict_cache.put(key, verdict)
    return verdict


def _kernel_solutions_contained(
    mapping: SchemaMapping, kinner, kouter, inner: Instance, outer: Instance
) -> bool:
    """Kernel twin of the :func:`solutions_contained` miss path.

    Interned-id keys: for ground instances the canonical key IS the
    exact fact set, so keying by the kernel instances' dense ids loses
    no sharing — it only replaces two frozenset hashes with two ints
    per probe.  The chase-memo probes and the id-native homomorphism
    test return exactly what the object path computes."""
    mid = small_id(mapping)
    if kouter.is_ground and kinner.is_ground:
        # Ground pairs memoize on the outer kernel instance itself
        # (one dict probe) rather than through the LRU verdict cache.
        memo = kouter.sol_memo
        skey = (mid, kinner.kid)
        verdict = memo.get(skey)
        if verdict is not None:
            return verdict
        key = None
    else:
        memo = None
        skey = None
        key = (
            "sol-contained",
            mapping_key(mapping),
            canonical_key(outer),
            canonical_key(inner),
        )
        hit, verdict = verdict_cache.get(key)
        if hit:
            return verdict
    # Inlined engine_stats().phase("homomorphism") — same counters,
    # minus the contextmanager machinery this hot path can feel.
    stats = engine_stats()
    started = time.perf_counter()
    try:
        souter = kouter.chase_memo.get(mid)
        if souter is None:
            souter = _kernel_chase(mapping, outer, kouter)
        sinner = kinner.chase_memo.get(mid)
        if sinner is None:
            sinner = _kernel_chase(mapping, inner, kinner)
        verdict = kernel_hom_exists(souter[1], souter[0], sinner[1])
    finally:
        phase = stats.phases.get("homomorphism")
        if phase is None:
            phase = stats.phases.setdefault("homomorphism", PhaseStats())
        phase.record(time.perf_counter() - started)
    if memo is not None:
        memo[skey] = verdict
    else:
        verdict_cache.put(key, verdict)
    return verdict


def data_exchange_equivalent(
    mapping: SchemaMapping, left: Instance, right: Instance
) -> bool:
    """The paper's I1 ∼M I2: equal solution spaces.

    Equivalent to homomorphic equivalence of the two chase results.
    """
    if kernel_active():
        kleft = kernel_instance(left)
        kright = kernel_instance(right)
        if kleft.is_ground and kright.is_ground:
            # ∼M is symmetric, so one verdict serves both argument
            # orders: stored on each side's kernel instance keyed by
            # the other's id, making the repeat probe one dict get.
            mid = small_id(mapping)
            ekey = (mid, kright.kid)
            verdict = kleft.eq_memo.get(ekey)
            if verdict is not None:
                return verdict
            verdict = _kernel_solutions_contained(
                mapping, kleft, kright, left, right
            ) and _kernel_solutions_contained(
                mapping, kright, kleft, right, left
            )
            kleft.eq_memo[ekey] = verdict
            kright.eq_memo[(mid, kleft.kid)] = verdict
            return verdict
        return _kernel_solutions_contained(
            mapping, kleft, kright, left, right
        ) and _kernel_solutions_contained(mapping, kright, kleft, right, left)
    return solutions_contained(mapping, left, right) and solutions_contained(
        mapping, right, left
    )
