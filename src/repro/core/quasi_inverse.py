"""The QuasiInverse algorithm (Section 4, Theorem 4.1).

Given M = (S, T, Sigma) with Sigma a finite set of s-t tgds, the
algorithm produces M' = (T, S, Sigma') where Sigma' is a finite set
of target-to-source disjunctive tgds with constants and inequalities
(inequalities among constants only), such that M' is a quasi-inverse
of M whenever M has one:

1. build Sigma* by quotienting each tgd with every complete
   description of its frontier;
2. for each sigma in Sigma* with conclusion ``exists y psi_T(x, y)``,
   emit sigma' whose premise is psi_T(x, y) plus ``Constant(x_i)`` for
   every frontier variable and ``x_i != x_j`` for every distinct pair,
   and whose conclusion is the disjunction of ``exists z beta(x, z)``
   over the minimal generators beta of the conclusion.

Following the remark at the end of Example 4.5, an optional pruning
step removes disjuncts that are implied by (less specific than) other
disjuncts, keeping only the most general ones.

Theorem 4.6: when Sigma is full, Constant() conjuncts are not needed;
``quasi_inverse`` drops them automatically in that case (disable with
``drop_constants_when_full=False``).

Theorem 4.7: for LAV mappings :func:`lav_quasi_inverse` produces a
disjunction-free quasi-inverse (tgds with constants and inequalities).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.homomorphism import all_homomorphisms, find_homomorphism
from repro.datamodel.atoms import Atom, atoms_variables
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Term, Variable  # noqa: F401 (Variable in annotations)
from repro.dependencies.dependency import Dependency, Premise
from repro.dependencies.descriptions import sigma_star
from repro.core.generators import Generator, MinGenConfig, minimal_generators
from repro.core.mapping import MappingError, SchemaMapping


def _disjunct_implies(
    specific: Sequence[Atom],
    general: Sequence[Atom],
    frontier: Sequence[Variable],
) -> bool:
    """Does ``exists z specific`` logically imply ``exists z' general``?

    True exactly when there is a homomorphism from the general
    conjunction into the specific one fixing the frontier.
    """
    fixed: Dict[Term, Term] = {v: v for v in frontier}
    return (
        find_homomorphism(general, Instance.of(specific), fixed=fixed) is not None
    )


def prune_disjuncts(
    disjuncts: Sequence[Tuple[Atom, ...]], frontier: Sequence[Variable]
) -> Tuple[Tuple[Atom, ...], ...]:
    """Keep only the most general disjuncts (Example 4.5's remark).

    A disjunct implied by another is redundant in a disjunction and is
    removed.  Mutually equivalent disjuncts keep one representative
    (the lexicographically least).
    """
    ordered = sorted(disjuncts, key=lambda d: tuple(a.sort_key() for a in d))
    kept: List[Tuple[Atom, ...]] = []
    for index, candidate in enumerate(ordered):
        redundant = False
        for other_index, other in enumerate(ordered):
            if other_index == index:
                continue
            if not _disjunct_implies(candidate, other, frontier):
                continue
            # candidate implies other: other is at least as general.
            if _disjunct_implies(other, candidate, frontier):
                # Equivalent: keep only the first of the pair.
                if other_index < index:
                    redundant = True
                    break
            else:
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return tuple(kept)


def _rename_away_from(
    generator: Generator, taken_names: Set[str]
) -> Tuple[Atom, ...]:
    """Rename the generator's fresh variables to avoid *taken_names*."""
    renaming: Dict[Term, Term] = {}
    counter = 1
    for variable in generator.fresh_variables():
        if variable.name not in taken_names:
            continue
        while f"z{counter}" in taken_names:
            counter += 1
        fresh = Variable(f"z{counter}")
        taken_names.add(fresh.name)
        renaming[variable] = fresh
    if not renaming:
        return generator.atoms
    return tuple(a.substitute(renaming) for a in generator.atoms)


def reverse_dependency(
    sigma: Dependency,
    disjunct_bodies: Sequence[Tuple[Atom, ...]],
    *,
    with_constants: bool,
    distinguish_existentials: bool = False,
) -> Dependency:
    """Assemble sigma' from sigma's conclusion and the given disjuncts.

    The premise is sigma's conclusion psi_T(x, y) plus ``Constant(x_i)``
    for every frontier variable and pairwise inequalities over the
    frontier (the paper's Step 2).  With ``distinguish_existentials``
    the inequalities additionally cover the conclusion's existential
    variables y, so the premise only matches the fresh-null patterns
    sigma's own firings create — the refinement the disjunction-free
    LAV construction needs.
    """
    frontier = sigma.frontier()
    conclusion = sigma.disjuncts[0]
    constant_vars = frozenset(frontier) if with_constants else frozenset()
    scope: Tuple[Variable, ...] = frontier
    if distinguish_existentials:
        scope = frontier + sigma.existential_variables(0)
    inequalities = frozenset(
        (left, right) for left, right in combinations(scope, 2)
    )
    premise = Premise(conclusion, constant_vars, inequalities)
    return Dependency(premise, tuple(disjunct_bodies))


def quasi_inverse(
    mapping: SchemaMapping,
    *,
    prune_implied: bool = True,
    drop_constants_when_full: bool = True,
    mingen_config: Optional[MinGenConfig] = None,
    name: str = "",
) -> SchemaMapping:
    """Algorithm QuasiInverse(M).

    Returns M' = (T, S, Sigma').  If M has a quasi-inverse, M' is one
    (Theorem 4.1); the algorithm does not decide existence.  Every
    inequality produced is between Constant() variables, so Sigma' is
    a set of disjunctive tgds with constants and inequalities *among
    constants* — the language Theorem 6.7's soundness result needs.
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("QuasiInverse requires a mapping specified by s-t tgds")
    with_constants = not (drop_constants_when_full and mapping.is_full())

    reversed_dependencies: List[Dependency] = []
    seen = set()
    for sigma in sigma_star(mapping.dependencies):
        frontier = sigma.frontier()
        conclusion = sigma.disjuncts[0]
        generators = minimal_generators(
            mapping, conclusion, frontier, config=mingen_config
        )
        if not generators:
            raise MappingError(
                f"no generator found for {sigma} — the premise itself is a "
                "generator, so the MinGen budget was exceeded or misconfigured"
            )
        taken = {v.name for v in atoms_variables(conclusion)}
        taken.update(v.name for v in sigma.premise_variables())
        bodies = tuple(
            _rename_away_from(generator, set(taken)) for generator in generators
        )
        if prune_implied:
            bodies = prune_disjuncts(bodies, frontier)
        candidate = reverse_dependency(sigma, bodies, with_constants=with_constants)
        key = candidate.canonical_form()
        if key not in seen:
            seen.add(key)
            reversed_dependencies.append(candidate)

    return SchemaMapping(
        mapping.target,
        mapping.source,
        tuple(reversed_dependencies),
        name=name or (f"QuasiInverse({mapping.name})" if mapping.name else ""),
    )


def lav_quasi_inverse(
    mapping: SchemaMapping,
    *,
    with_constants: bool = True,
    name: str = "",
) -> SchemaMapping:
    """A disjunction-free quasi-inverse of a LAV mapping (Theorem 4.7).

    The construction is the Inverse algorithm's omega(Sigma, I_alpha)
    step, relaxed to allow existential quantification: for every prime
    atom alpha of every source relation, emit

        psi_alpha(x', y) ∧ Constant(x'_i)... ∧ x'_i != x'_j...
            ->  exists (x \\ x') alpha(x)

    where psi_alpha is the chase of the prime instance I_alpha (nulls
    renamed to universally quantified y's) and x' are the variables of
    alpha that survive into the chase; the lost ones are existentially
    quantified in the conclusion (so no constant-propagation property
    is required).

    Why this works for LAV mappings: each source fact fires its tgds
    independently of all others, so (a) whenever some rule's premise
    matches in chase(I), re-exchanging the recovered fact reproduces
    exactly the matched facts — soundness, per rule, by construction —
    and (b) for every original fact alpha·theta of I, universality of
    the chase embeds chase(I_alpha)·theta into chase(I), so the rule
    for theta's equality pattern fires and the fact is recovered up to
    its non-exported positions — faithfulness.  (The conference paper
    does not print Theorem 4.7's construction; the test suite
    validates this one with bounded quasi-inverse checks and
    soundness/faithfulness sweeps.)

    For Projection this yields ``Q(x) ∧ Constant(x) -> exists y P(x, y)``
    (the paper's quasi-inverse); for Union the conjunctive variant
    ``S(x) -> P(x)`` plus ``S(x) -> Q(x)`` (the paper notes
    ``S(x) -> P(x) ∧ Q(x)`` is a quasi-inverse); and for Decomposition
    the join-style reverse of Example 3.10's M' (with constants and
    inequalities), one rule per equality pattern.  On an invertible
    LAV mapping it coincides with the Inverse algorithm's output.
    """
    if not mapping.is_lav():
        raise MappingError("lav_quasi_inverse requires a LAV mapping")
    from repro.core.inverse import omega, prime_atoms

    reversed_dependencies: List[Dependency] = []
    seen = set()
    for relation, arity in mapping.source.relations:
        for alpha in prime_atoms(relation, arity):
            candidate = omega(
                mapping,
                alpha,
                with_constants=with_constants,
                allow_existentials=True,
            )
            if candidate is None:
                continue  # the relation exports nothing; ∼M ignores it
            key = candidate.canonical_form()
            if key not in seen:
                seen.add(key)
                reversed_dependencies.append(candidate)

    return SchemaMapping(
        mapping.target,
        mapping.source,
        tuple(reversed_dependencies),
        name=name or (f"LavQuasiInverse({mapping.name})" if mapping.name else ""),
    )
