"""Skolemized mappings and syntactic composition (the paper's [5]).

The composition operator (Section 2) is defined semantically; the
paper's reference [5] (Fagin, Kolaitis, Popa, Tan — "Composing Schema
Mappings: Second-Order Dependencies to the Rescue") shows that
compositions of tgd mappings are expressible once existential
quantifiers are *skolemized*: each existential variable y of a tgd
``phi(x) -> exists y psi(x, y)`` becomes a function term ``f(x)``
over the tgd's frontier.

This module implements the skolemized fragment sufficient for this
library's purposes:

* :func:`skolemize` turns a tgd mapping into :class:`SkolemMapping`
  rules whose conclusions may contain :class:`SkolemTerm`s;
* :func:`skolem_exchange` evaluates a skolemized mapping directly —
  function terms are interpreted over the term algebra, memoized into
  labeled nulls (one null per function and argument tuple: the
  semi-oblivious chase, homomorphically equivalent to the restricted
  chase for s-t tgds);
* :func:`compose_skolem` composes two tgd mappings syntactically: the
  second mapping's premises are resolved against the first's
  skolemized conclusions by first-order unification.  Unification
  failures between distinct function terms correspond exactly to
  premise matches that would require two distinct labeled nulls to be
  equal — impossible in the two-step chase — so dropping them is
  sound, and the composed rules reproduce the two-step exchange up to
  homomorphic equivalence.

Unlike :func:`repro.core.composition.compose_full`, the first mapping
need not be full.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.chase.homomorphism import all_homomorphisms
from repro.chase.standard import NullFactory
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.dependencies.dependency import Dependency
from repro.core.mapping import MappingError, SchemaMapping


@dataclass(frozen=True)
class SkolemTerm:
    """A function term f(t1, …, tk) over variables/constants/terms."""

    function: str
    args: Tuple[object, ...]  # Term or SkolemTerm

    def sort_key(self):
        return (3, self.function, tuple(_arg_key(a) for a in self.args))

    def variables(self) -> Tuple[Variable, ...]:
        collected: List[Variable] = []
        for arg in self.args:
            if isinstance(arg, Variable):
                if arg not in collected:
                    collected.append(arg)
            elif isinstance(arg, SkolemTerm):
                for variable in arg.variables():
                    if variable not in collected:
                        collected.append(variable)
        return tuple(collected)

    def substitute(self, mapping: Dict) -> "SkolemTerm":
        return SkolemTerm(
            self.function,
            tuple(_substitute_arg(arg, mapping) for arg in self.args),
        )

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.function}({rendered})"


def _arg_key(arg) -> Tuple:
    if isinstance(arg, SkolemTerm):
        return arg.sort_key()
    return arg.sort_key()


def _substitute_arg(arg, mapping: Dict):
    if isinstance(arg, SkolemTerm):
        return arg.substitute(mapping)
    return mapping.get(arg, arg)


def _substitute_atom(atom: Atom, mapping: Dict) -> Atom:
    return Atom(
        atom.relation, tuple(_substitute_arg(arg, mapping) for arg in atom.args)
    )


@dataclass(frozen=True)
class SkolemRule:
    """premise(x) -> conclusion, with function terms in the conclusion."""

    premise: Tuple[Atom, ...]
    conclusion: Tuple[Atom, ...]

    def __str__(self) -> str:
        left = " ∧ ".join(str(a) for a in self.premise)
        right = " ∧ ".join(str(a) for a in self.conclusion)
        return f"{left} → {right}"


@dataclass(frozen=True)
class SkolemMapping:
    """A schema mapping in skolemized form."""

    source: Schema
    target: Schema
    rules: Tuple[SkolemRule, ...]
    name: str = ""

    def __str__(self) -> str:
        rendered = "; ".join(str(rule) for rule in self.rules)
        return f"{self.name or 'SkM'}: {{{rendered}}}"


def skolemize(mapping: SchemaMapping, *, prefix: str = "f") -> SkolemMapping:
    """Replace each existential variable by a fresh function of the
    frontier (one function symbol per tgd and variable)."""
    if not mapping.is_tgd_mapping():
        raise MappingError("skolemize requires a tgd mapping")
    rules: List[SkolemRule] = []
    counter = 0
    for dependency in mapping.dependencies:
        frontier = dependency.frontier()
        substitution: Dict[Variable, SkolemTerm] = {}
        for variable in dependency.existential_variables(0):
            counter += 1
            substitution[variable] = SkolemTerm(
                f"{prefix}{counter}", tuple(frontier)
            )
        conclusion = tuple(
            _substitute_atom(atom, substitution)
            for atom in dependency.disjuncts[0]
        )
        rules.append(SkolemRule(dependency.premise.atoms, conclusion))
    return SkolemMapping(
        mapping.source,
        mapping.target,
        tuple(rules),
        name=f"Sk({mapping.name})" if mapping.name else "",
    )


# ----------------------------------------------------------------------
# Evaluation (the semi-oblivious chase over the term algebra).
# ----------------------------------------------------------------------

def skolem_exchange(
    mapping: SkolemMapping, instance: Instance
) -> Instance:
    """Evaluate a skolemized mapping on a source instance.

    Function terms are memoized into labeled nulls: equal function and
    equal (evaluated) arguments yield the same null, so value sharing
    between conclusion atoms — including across rules produced by
    composition — is preserved.
    """
    memo: Dict[Tuple, Null] = {}
    factory = NullFactory(
        prefix="S", taken=(null.name for null in instance.nulls())
    )

    def evaluate(arg, assignment: Dict[Term, Term]) -> Term:
        if isinstance(arg, SkolemTerm):
            evaluated = tuple(evaluate(a, assignment) for a in arg.args)
            key = (arg.function, evaluated)
            if key not in memo:
                memo[key] = factory.fresh(hint=arg.function)
            return memo[key]
        if isinstance(arg, Variable):
            return assignment[arg]
        return arg

    facts: List[Atom] = []
    for rule in mapping.rules:
        for assignment in all_homomorphisms(rule.premise, instance):
            for atom in rule.conclusion:
                facts.append(
                    Atom(
                        atom.relation,
                        tuple(evaluate(arg, assignment) for arg in atom.args),
                    )
                )
    return Instance.of(facts).restrict_to(mapping.target)


# ----------------------------------------------------------------------
# Unification and composition.
# ----------------------------------------------------------------------

def _walk(term, bindings: Dict):
    while isinstance(term, Variable) and term in bindings:
        term = bindings[term]
    return term


def _occurs(variable: Variable, term, bindings: Dict) -> bool:
    term = _walk(term, bindings)
    if term == variable:
        return True
    if isinstance(term, SkolemTerm):
        return any(_occurs(variable, arg, bindings) for arg in term.args)
    return False


def _unify(left, right, bindings: Dict) -> bool:
    """Robinson unification over variables, constants, skolem terms."""
    left = _walk(left, bindings)
    right = _walk(right, bindings)
    if left == right:
        return True
    if isinstance(left, Variable):
        if _occurs(left, right, bindings):
            return False
        bindings[left] = right
        return True
    if isinstance(right, Variable):
        return _unify(right, left, bindings)
    if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return False
        return all(
            _unify(a, b, bindings) for a, b in zip(left.args, right.args)
        )
    return False  # distinct constants, or constant vs skolem term


def _resolve_bindings(term, bindings: Dict):
    term = _walk(term, bindings)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(
            term.function,
            tuple(_resolve_bindings(arg, bindings) for arg in term.args),
        )
    return term


def _rename_rule(rule: SkolemRule, suffix: str) -> SkolemRule:
    variables = {
        v
        for atom in rule.premise + rule.conclusion
        for v in _atom_variables(atom)
    }
    renaming = {v: Variable(f"{v.name}#{suffix}") for v in variables}
    return SkolemRule(
        tuple(_substitute_atom(a, renaming) for a in rule.premise),
        tuple(_substitute_atom(a, renaming) for a in rule.conclusion),
    )


def _atom_variables(atom: Atom) -> Tuple[Variable, ...]:
    collected: List[Variable] = []

    def visit(arg) -> None:
        if isinstance(arg, Variable):
            if arg not in collected:
                collected.append(arg)
        elif isinstance(arg, SkolemTerm):
            for inner in arg.args:
                visit(inner)

    for arg in atom.args:
        visit(arg)
    return tuple(collected)


def compose_skolem(
    first: SchemaMapping,
    second: SchemaMapping,
    *,
    name: str = "",
) -> SkolemMapping:
    """Compose two tgd mappings into skolemized rules over (S1, S3).

    Each premise atom of each second-mapping tgd is resolved against
    every conclusion atom of the first mapping's skolemized rules; the
    global unifier instantiates the collected first-mapping premises
    (the composed premise, over S1) and the second mapping's
    skolemized conclusion (which may now contain nested function
    terms).  The result evaluates — via :func:`skolem_exchange` — to
    the same target instances as the two-step exchange, up to
    homomorphic equivalence.
    """
    if not first.is_tgd_mapping() or not second.is_tgd_mapping():
        raise MappingError("compose_skolem requires tgd mappings")
    if first.target.relations != second.source.relations:
        raise MappingError(
            f"middle schemas differ: {first.target} vs {second.source}"
        )
    first_rules = skolemize(first, prefix="f").rules
    second_rules = skolemize(second, prefix="g").rules

    composed: List[SkolemRule] = []
    for rule_index, rule in enumerate(second_rules):
        # For each premise atom, the compatible (first-rule, atom) pairs.
        options_per_atom: List[List[Tuple[SkolemRule, int]]] = []
        for atom in rule.premise:
            options = []
            for candidate in first_rules:
                for conclusion_index, conclusion_atom in enumerate(
                    candidate.conclusion
                ):
                    if (
                        conclusion_atom.relation == atom.relation
                        and conclusion_atom.arity == atom.arity
                    ):
                        options.append((candidate, conclusion_index))
            options_per_atom.append(options)
        if any(not options for options in options_per_atom):
            continue  # some premise atom can never be produced

        for choice in product(*options_per_atom):
            bindings: Dict = {}
            premises: List[Atom] = []
            feasible = True
            for atom_index, (candidate, conclusion_index) in enumerate(choice):
                renamed = _rename_rule(
                    candidate, f"{rule_index}.{atom_index}"
                )
                goal_atom = rule.premise[atom_index]
                conclusion_atom = renamed.conclusion[conclusion_index]
                for left, right in zip(goal_atom.args, conclusion_atom.args):
                    if not _unify(left, right, bindings):
                        feasible = False
                        break
                if not feasible:
                    break
                premises.extend(renamed.premise)
            if not feasible:
                continue
            resolved_premise = tuple(
                sorted(
                    {
                        Atom(
                            a.relation,
                            tuple(
                                _resolve_bindings(arg, bindings)
                                for arg in a.args
                            ),
                        )
                        for a in premises
                    }
                )
            )
            # A source-side position bound to a function term would
            # require a ground source value to equal a labeled null —
            # impossible — so the rule can never fire: drop it.
            if any(
                isinstance(arg, SkolemTerm)
                for atom in resolved_premise
                for arg in atom.args
            ):
                continue
            resolved_conclusion = tuple(
                Atom(
                    a.relation,
                    tuple(_resolve_bindings(arg, bindings) for arg in a.args),
                )
                for a in rule.conclusion
            )
            composed.append(SkolemRule(resolved_premise, resolved_conclusion))

    return SkolemMapping(
        first.source,
        second.target,
        tuple(composed),
        name=name
        or (
            f"{first.name}∘{second.name}"
            if first.name and second.name
            else ""
        ),
    )
