"""Data exchange with quasi-inverses (Section 6): forward exchange,
reverse disjunctive exchange, soundness and faithfulness, recovery,
and certain-answer query evaluation."""

from repro.dataexchange.exchange import (
    RoundTrip,
    exchange,
    reverse_exchange,
    round_trip,
)
from repro.dataexchange.recovery import (
    RecoveryReport,
    analyze_round_trip,
    faithful_on,
    is_faithful,
    is_sound,
    recover,
    sound_on,
)
from repro.dataexchange.queries import (
    ConjunctiveQuery,
    certain_answers,
    evaluate,
    parse_query,
)
from repro.dataexchange.worlds import (
    certain_answers_over_worlds,
    possible_answers_over_worlds,
    recovered_certain_answers,
    recovered_possible_answers,
)

__all__ = [
    "ConjunctiveQuery",
    "RecoveryReport",
    "RoundTrip",
    "analyze_round_trip",
    "certain_answers",
    "certain_answers_over_worlds",
    "evaluate",
    "possible_answers_over_worlds",
    "recovered_certain_answers",
    "recovered_possible_answers",
    "exchange",
    "faithful_on",
    "is_faithful",
    "is_sound",
    "parse_query",
    "recover",
    "reverse_exchange",
    "round_trip",
    "sound_on",
]
