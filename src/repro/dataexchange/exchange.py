"""Forward and reverse data exchange (Section 6's setting).

* Forward: U = chase_Sigma(I), the universal solution.
* Reverse: V = chase_Sigma'(U), the set of source instances obtained
  as the leaves of the disjunctive chase of (U, ∅) with the reverse
  mapping's dependencies (Definition 6.4).
* Round trip: U' = chase_Sigma(V), the set of re-exchanged targets —
  the objects in terms of which soundness and faithfulness
  (Definition 6.5) are phrased, and exactly the data flow of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.chase.disjunctive import disjunctive_chase
from repro.chase.standard import NullFactory, chase
from repro.datamodel.instances import Instance
from repro.core.mapping import MappingError, SchemaMapping, universal_solution
from repro.engine.parallel import ParallelUniverseRunner, get_shared


def exchange(mapping: SchemaMapping, instance: Instance) -> Instance:
    """U = chase_Sigma(I): forward data exchange with a tgd mapping.

    The chase itself goes through the engine's content-addressed
    cache (via :func:`~repro.core.mapping.universal_solution`), so
    re-exchanging an instance the checkers have already chased is a
    lookup.
    """
    if not mapping.is_tgd_mapping():
        raise MappingError("forward exchange requires a tgd mapping")
    instance.validate(mapping.source)
    return universal_solution(mapping, instance)


def _exchange_task(instance: Instance) -> Instance:
    return exchange(get_shared(), instance)


def exchange_many(
    mapping: SchemaMapping,
    instances: Iterable[Instance],
    *,
    workers: Optional[int] = None,
) -> Tuple[Instance, ...]:
    """Exchange a stream of source instances, optionally in parallel.

    Results come back in input order regardless of worker count; with
    ``workers=1`` (the default) this is a plain cached loop.
    """
    runner = ParallelUniverseRunner(workers)
    return tuple(runner.map(_exchange_task, instances, shared=mapping))


def reverse_exchange(
    reverse_mapping: SchemaMapping, target_instance: Instance
) -> Tuple[Instance, ...]:
    """V = chase_Sigma'(U): reverse exchange via the disjunctive chase.

    *reverse_mapping* goes from the target schema back to the source
    schema and may use the full dependency language.  Returns the set
    of source instances (the leaves' source parts), deduplicated,
    in deterministic order.
    """
    target_instance.validate(reverse_mapping.source)
    tree = disjunctive_chase(target_instance, reverse_mapping.dependencies)
    source_parts = []
    seen = set()
    for leaf in tree.leaves():
        part = leaf.restrict_to(reverse_mapping.target)
        if part not in seen:
            seen.add(part)
            source_parts.append(part)
    return tuple(source_parts)


@dataclass(frozen=True)
class RoundTrip:
    """The full Figure-1 data flow for one ground instance."""

    source: Instance
    exported: Instance
    recovered: Tuple[Instance, ...]
    re_exported: Tuple[Instance, ...]

    def pretty(self) -> str:
        """A multi-line rendering in the shape of Figure 1."""
        lines = [
            "I:",
            self.source.pretty(indent="  "),
            "U = chase_Σ(I):",
            self.exported.pretty(indent="  "),
        ]
        for index, (recovered, re_exported) in enumerate(
            zip(self.recovered, self.re_exported), start=1
        ):
            lines.append(f"V{index} = chase_Σ'(U) [branch {index}]:")
            lines.append(recovered.pretty(indent="  "))
            lines.append(f"chase_Σ(V{index}):")
            lines.append(re_exported.pretty(indent="  "))
        return "\n".join(lines)


def round_trip(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> RoundTrip:
    """I → U → V → U': the bidirectional exchange of Section 6."""
    exported = exchange(mapping, instance)
    recovered = reverse_exchange(reverse_mapping, exported)
    re_exported = tuple(exchange(mapping, v.restrict_to(mapping.source)) for v in recovered)
    return RoundTrip(instance, exported, recovered, re_exported)
