"""Conjunctive queries, naive evaluation, and certain answers.

Data-exchange query answering (from the paper's reference [4], Fagin,
Kolaitis, Miller, Popa — "Data Exchange: Semantics and Query
Answering"): the certain answers of a conjunctive query q over the
solutions of I can be computed by evaluating q naively on a universal
solution and discarding tuples containing nulls.  This is the
machinery that makes "data-exchange equivalent" recovery useful: a
recovered instance yields the same certain answers as the original.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.chase.homomorphism import all_homomorphisms
from repro.datamodel.atoms import Atom, atoms_variables
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term, Variable
from repro.dependencies.parser import ParseError, _Parser
from repro.core.mapping import SchemaMapping, universal_solution


@dataclass(frozen=True)
class ConjunctiveQuery:
    """q(head_vars) :- atoms."""

    head: Tuple[Variable, ...]
    atoms: Tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        body_vars = set(atoms_variables(self.atoms))
        for variable in self.head:
            if variable not in body_vars:
                raise ValueError(
                    f"head variable {variable} does not occur in the body"
                )

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.name}({head}) :- {body}"


_HEAD_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*:-\s*(.*)$")


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``q(x, y) :- P(x, z), Q(z, y)``."""
    match = _HEAD_RE.match(text.strip())
    if match is None:
        raise ParseError(f"not a conjunctive query: {text!r}")
    name, head_text, body_text = match.groups()
    head = tuple(
        Variable(token.strip())
        for token in head_text.split(",")
        if token.strip()
    )
    parser = _Parser(body_text)
    atoms: List[Atom] = [parser._parse_atom()]
    while parser._accept("comma") or parser._accept("and"):
        atoms.append(parser._parse_atom())
    if parser._peek() is not None:
        token = parser._peek()
        raise ParseError(f"trailing input {token.text!r} in query body {body_text!r}")
    return ConjunctiveQuery(head, tuple(atoms), name=name)


def evaluate(query: ConjunctiveQuery, instance: Instance) -> FrozenSet[Tuple[Term, ...]]:
    """Naive evaluation: nulls are treated as ordinary values."""
    answers: Set[Tuple[Term, ...]] = set()
    for assignment in all_homomorphisms(query.atoms, instance):
        answers.add(tuple(assignment[v] for v in query.head))
    return frozenset(answers)


def certain_answers(
    query: ConjunctiveQuery, mapping: SchemaMapping, instance: Instance
) -> FrozenSet[Tuple[Constant, ...]]:
    """The certain answers of *query* over the solutions for *instance*.

    Evaluates naively on the universal solution chase(I) and keeps the
    all-constant tuples — correct for conjunctive queries per [4].
    """
    solution = universal_solution(mapping, instance)
    return frozenset(
        answer
        for answer in evaluate(query, solution)
        if all(isinstance(value, Constant) for value in answer)
    )
