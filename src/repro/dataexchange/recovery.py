"""Soundness and faithfulness (Definition 6.5) and recovery.

Let M be specified by s-t tgds and M' be a reverse mapping in the
disjunctive language.  For a ground instance I with U = chase_Sigma(I),
V = chase_Sigma'(U) and U' = chase_Sigma(V):

* M' is *sound* w.r.t. M when some member of U' maps homomorphically
  into U — the round trip invents no facts beyond U;
* M' is *faithful* w.r.t. M when some member of U' is homomorphically
  equivalent to U — no exported information is lost either, and the
  corresponding member of V is "data-exchange equivalent" to I.

Theorem 6.7: every quasi-inverse specified by disjunctive tgds with
constants and inequalities among constants is sound.  Theorem 6.8:
the output of algorithm QuasiInverse is faithful.  The experiments
validate both over the catalog and random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from repro.chase.homomorphism import instance_homomorphism
from repro.datamodel.instances import Instance
from repro.dataexchange.exchange import RoundTrip, round_trip
from repro.core.mapping import SchemaMapping
from repro.engine.budget import (
    Budget,
    COVERAGE_EXHAUSTIVE,
    SweepVerdict,
    current_budget,
    record_coverage,
    use_budget,
)
from repro.engine.cache import mapping_key
from repro.engine.checkpoint import CheckpointJournal, default_journal, sweep_key
from repro.engine.instrumentation import engine_stats
from repro.engine.kernel import use_backend
from repro.engine.parallel import ParallelUniverseRunner, get_shared
from repro.engine.store import stable_digest
from repro.engine.symmetry import plan_sweep, use_ground_keys
from repro.errors import BudgetExceeded, WorkerFault, governed_coverage


@dataclass(frozen=True)
class RecoveryReport:
    """Per-instance soundness/faithfulness verdicts for a round trip.

    ``trip`` is None exactly when ``coverage`` is not ``"exhaustive"``:
    the governing budget tripped mid-chase, so no verdict exists for
    this instance (``sound`` / ``faithful`` are then vacuously False).
    """

    trip: Optional[RoundTrip]
    sound: bool
    faithful: bool
    faithful_index: Optional[int] = None
    coverage: str = COVERAGE_EXHAUSTIVE

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE

    @property
    def recovered_instance(self) -> Optional[Instance]:
        """The member of V whose re-exchange is equivalent to U."""
        if self.faithful_index is None or self.trip is None:
            return None
        return self.trip.recovered[self.faithful_index]


def analyze_round_trip(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
    *,
    budget: Optional[Budget] = None,
) -> RecoveryReport:
    """Run the Figure-1 flow and judge soundness and faithfulness.

    *budget* (default: the ambient one) bounds the chases; if it trips
    mid-flow the report comes back with ``trip=None`` and a partial
    ``coverage`` instead of raising.
    """
    if budget is None:
        budget = current_budget()
    try:
        with use_budget(budget):
            trip = round_trip(mapping, reverse_mapping, instance)
    except BudgetExceeded as error:
        coverage = governed_coverage(error)
        if coverage is None:
            raise
        record_coverage("check.round_trip", coverage, str(error), 0)
        return RecoveryReport(None, False, False, coverage=coverage)
    sound, faithful, faithful_index = _judge_round_trip(trip)
    return RecoveryReport(trip, sound, faithful, faithful_index)


def _judge_round_trip(trip: RoundTrip) -> Tuple[bool, bool, Optional[int]]:
    """The (sound, faithful, faithful_index) verdict of Definition 6.5."""
    sound = False
    faithful = False
    faithful_index: Optional[int] = None
    for index, re_exported in enumerate(trip.re_exported):
        if instance_homomorphism(re_exported, trip.exported) is not None:
            sound = True
            if instance_homomorphism(trip.exported, re_exported) is not None:
                faithful = True
                faithful_index = index
                break
    return sound, faithful, faithful_index


def is_sound(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
    *,
    budget: Optional[Budget] = None,
) -> bool:
    """Definition 6.5(1) on one ground instance."""
    return analyze_round_trip(
        mapping, reverse_mapping, instance, budget=budget
    ).sound


def is_faithful(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
    *,
    budget: Optional[Budget] = None,
) -> bool:
    """Definition 6.5(2) on one ground instance."""
    return analyze_round_trip(
        mapping, reverse_mapping, instance, budget=budget
    ).faithful


def _round_trip_task(instance: Instance) -> Tuple[bool, bool]:
    # Budget trips propagate out of the task (rather than being folded
    # into the per-instance report) so the surrounding sweep stops with
    # partial coverage instead of mislabeling cut-short instances as
    # violators.
    mapping, reverse_mapping = get_shared()
    trip = round_trip(mapping, reverse_mapping, instance)
    sound, faithful, _ = _judge_round_trip(trip)
    return sound, faithful


def _resolve_budget(budget: Optional[Budget]) -> Optional[Budget]:
    if budget is not None:
        return budget
    ambient = current_budget()
    if ambient is not None:
        return ambient
    return Budget.from_env()


def _sweep(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    keep: Callable[[Tuple[bool, bool]], bool],
    workers: Optional[int],
    *,
    label: str,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> SweepVerdict:
    """Fan the Figure-1 round trip out over *instances* and collect,
    in input order, those whose verdict fails *keep*.

    Returns a :class:`~repro.engine.budget.SweepVerdict` — unpacks as
    the historical ``(ok, violators)`` pair and carries ``coverage`` /
    ``instances_checked``.  A governing *budget* (default: ambient,
    else environment) that trips mid-sweep yields a partial verdict
    over the instances already judged; *checkpoint* (default: the
    ``REPRO_CHECKPOINT`` journal) lets an interrupted sweep resume
    from the verified prefix.

    The per-instance verdict is invariant under constant permutation
    whenever both mappings are (chases commute with renaming, and
    homomorphism existence between renamed instances is unchanged), so
    ``symmetry="orbits"`` sweeps one representative per orbit; listed
    violators are then representatives of violating orbits.
    """
    ordered = list(instances)
    plan = plan_sweep(symmetry, ordered, mappings=(mapping, reverse_mapping))
    budget = _resolve_budget(budget)
    journal = checkpoint if checkpoint is not None else default_journal()
    key = sweep_key(
        label,
        mapping.name or mapping,
        reverse_mapping.name or reverse_mapping,
        len(ordered),
        plan.mode,
    )
    fingerprint = stable_digest(
        [
            label,
            plan.mode,
            mapping_key(mapping),
            mapping_key(reverse_mapping),
            [instance.sorted_facts() for instance in ordered],
        ]
    )[:16]
    start = (
        journal.resume_index(key, len(plan.outer), fingerprint)
        if journal
        else 0
    )
    prior = (
        journal.prior_verdict(key)
        if journal and start
        else {"ok": True, "violations": 0}
    )
    runner = ParallelUniverseRunner(workers)
    coverage = COVERAGE_EXHAUSTIVE
    position = start
    instances_checked = plan.covered_upto(start)
    orbits_checked = start if plan.reduced else 0
    violators: List[Instance] = []

    def note_progress(flush: bool = False) -> None:
        if journal is not None:
            journal.record(
                key,
                verified_upto=position,
                total=len(plan.outer),
                ok=prior["ok"] and not violators,
                violations=prior["violations"] + len(violators),
                fingerprint=fingerprint,
                flush=flush,
            )

    with engine_stats().phase("check.round_trips"), use_budget(
        budget
    ), use_ground_keys(plan.ground_keys), use_backend(backend):
        results = runner.map_iter(
            _round_trip_task,
            plan.outer[start:],
            shared=(mapping, reverse_mapping),
            budget=budget,
        )
        try:
            for instance, verdict in zip(plan.outer[start:], results):
                if not keep(verdict):
                    violators.append(instance)
                instances_checked += plan.weight_of(position)
                position += 1
                if plan.reduced:
                    orbits_checked += 1
                note_progress()
        except (BudgetExceeded, WorkerFault) as error:
            coverage = governed_coverage(error)
            if coverage is None:
                raise
            note_progress(flush=True)
            record_coverage(label, coverage, str(error), instances_checked)
            return SweepVerdict(
                prior["ok"] and not violators,
                tuple(violators),
                coverage=coverage,
                instances_checked=instances_checked,
                orbits_checked=orbits_checked,
            )
    if journal is not None:
        journal.complete(
            key,
            total=len(plan.outer),
            ok=prior["ok"] and not violators,
            violations=prior["violations"] + len(violators),
            fingerprint=fingerprint,
        )
    return SweepVerdict(
        prior["ok"] and not violators,
        tuple(violators),
        coverage=coverage,
        instances_checked=instances_checked,
        orbits_checked=orbits_checked,
    )


def sound_on(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    *,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> Tuple[bool, Tuple[Instance, ...]]:
    """Check soundness over many instances; returns (ok, violators).

    The result is a :class:`~repro.engine.budget.SweepVerdict`, so it
    also exposes ``coverage`` and ``instances_checked``.
    """
    return _sweep(
        mapping,
        reverse_mapping,
        instances,
        lambda verdict: verdict[0],
        workers,
        label="check.sound_on",
        budget=budget,
        checkpoint=checkpoint,
        symmetry=symmetry,
        backend=backend,
    )


def faithful_on(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    *,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
    symmetry: Optional[str] = None,
    backend: Optional[str] = None,
) -> Tuple[bool, Tuple[Instance, ...]]:
    """Check faithfulness over many instances; returns (ok, violators).

    The result is a :class:`~repro.engine.budget.SweepVerdict`, so it
    also exposes ``coverage`` and ``instances_checked``.
    """
    return _sweep(
        mapping,
        reverse_mapping,
        instances,
        lambda verdict: verdict[1],
        workers,
        label="check.faithful_on",
        budget=budget,
        checkpoint=checkpoint,
        symmetry=symmetry,
        backend=backend,
    )


def recover(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> Optional[Instance]:
    """Recover a source instance data-exchange equivalent to *instance*.

    Searches the members of V = chase_Sigma'(chase_Sigma(I)) for one
    whose re-exchange is homomorphically equivalent to the original
    export (the selection procedure described after Definition 6.5).
    Returns None when the reverse mapping is not faithful on I.
    """
    return analyze_round_trip(mapping, reverse_mapping, instance).recovered_instance
