"""Soundness and faithfulness (Definition 6.5) and recovery.

Let M be specified by s-t tgds and M' be a reverse mapping in the
disjunctive language.  For a ground instance I with U = chase_Sigma(I),
V = chase_Sigma'(U) and U' = chase_Sigma(V):

* M' is *sound* w.r.t. M when some member of U' maps homomorphically
  into U — the round trip invents no facts beyond U;
* M' is *faithful* w.r.t. M when some member of U' is homomorphically
  equivalent to U — no exported information is lost either, and the
  corresponding member of V is "data-exchange equivalent" to I.

Theorem 6.7: every quasi-inverse specified by disjunctive tgds with
constants and inequalities among constants is sound.  Theorem 6.8:
the output of algorithm QuasiInverse is faithful.  The experiments
validate both over the catalog and random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from repro.chase.homomorphism import (
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from repro.datamodel.instances import Instance
from repro.dataexchange.exchange import RoundTrip, round_trip
from repro.core.mapping import SchemaMapping
from repro.engine.instrumentation import engine_stats
from repro.engine.parallel import ParallelUniverseRunner, get_shared


@dataclass(frozen=True)
class RecoveryReport:
    """Per-instance soundness/faithfulness verdicts for a round trip."""

    trip: RoundTrip
    sound: bool
    faithful: bool
    faithful_index: Optional[int] = None

    @property
    def recovered_instance(self) -> Optional[Instance]:
        """The member of V whose re-exchange is equivalent to U."""
        if self.faithful_index is None:
            return None
        return self.trip.recovered[self.faithful_index]


def analyze_round_trip(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> RecoveryReport:
    """Run the Figure-1 flow and judge soundness and faithfulness."""
    trip = round_trip(mapping, reverse_mapping, instance)
    sound = False
    faithful = False
    faithful_index: Optional[int] = None
    for index, re_exported in enumerate(trip.re_exported):
        if instance_homomorphism(re_exported, trip.exported) is not None:
            sound = True
            if instance_homomorphism(trip.exported, re_exported) is not None:
                faithful = True
                faithful_index = index
                break
    return RecoveryReport(trip, sound, faithful, faithful_index)


def is_sound(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> bool:
    """Definition 6.5(1) on one ground instance."""
    return analyze_round_trip(mapping, reverse_mapping, instance).sound


def is_faithful(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> bool:
    """Definition 6.5(2) on one ground instance."""
    return analyze_round_trip(mapping, reverse_mapping, instance).faithful


def _round_trip_task(instance: Instance) -> Tuple[bool, bool]:
    mapping, reverse_mapping = get_shared()
    report = analyze_round_trip(mapping, reverse_mapping, instance)
    return report.sound, report.faithful


def _sweep(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    keep: Callable[[Tuple[bool, bool]], bool],
    workers: Optional[int],
) -> Tuple[bool, Tuple[Instance, ...]]:
    """Fan the Figure-1 round trip out over *instances* and collect,
    in input order, those whose verdict fails *keep*."""
    ordered = list(instances)
    runner = ParallelUniverseRunner(workers)
    with engine_stats().phase("check.round_trips"):
        verdicts = runner.map(
            _round_trip_task, ordered, shared=(mapping, reverse_mapping)
        )
    violators = tuple(
        instance
        for instance, verdict in zip(ordered, verdicts)
        if not keep(verdict)
    )
    return (not violators, violators)


def sound_on(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    *,
    workers: Optional[int] = None,
) -> Tuple[bool, Tuple[Instance, ...]]:
    """Check soundness over many instances; returns (ok, violators)."""
    return _sweep(
        mapping, reverse_mapping, instances, lambda verdict: verdict[0], workers
    )


def faithful_on(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Iterable[Instance],
    *,
    workers: Optional[int] = None,
) -> Tuple[bool, Tuple[Instance, ...]]:
    """Check faithfulness over many instances; returns (ok, violators)."""
    return _sweep(
        mapping, reverse_mapping, instances, lambda verdict: verdict[1], workers
    )


def recover(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instance: Instance,
) -> Optional[Instance]:
    """Recover a source instance data-exchange equivalent to *instance*.

    Searches the members of V = chase_Sigma'(chase_Sigma(I)) for one
    whose re-exchange is homomorphically equivalent to the original
    export (the selection procedure described after Definition 6.5).
    Returns None when the reverse mapping is not faithful on I.
    """
    return analyze_round_trip(mapping, reverse_mapping, instance).recovered_instance
