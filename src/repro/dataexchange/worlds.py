"""Possible-worlds reasoning over disjunctive recovery.

When the reverse mapping is disjunctive, chase_Sigma'(U) is a *set*
of source instances (the leaves of the disjunctive chase) — the
possible worlds consistent with the exported data.  This module
answers conjunctive queries across that set:

* *certain* answers hold in every world (skeptical semantics);
* *possible* answers hold in at least one world (brave semantics).

Answers containing nulls are discarded, mirroring the certain-answer
semantics of data exchange.  For a faithful quasi-inverse and a
source-schema query q, every certain answer over the worlds is a
certain answer of q over sources ∼M-equivalent to the original — the
information the exported data still determines.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Tuple

from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant
from repro.dataexchange.exchange import exchange, reverse_exchange
from repro.dataexchange.queries import ConjunctiveQuery, evaluate
from repro.core.mapping import SchemaMapping

Answer = Tuple[Constant, ...]


def _constant_answers(
    query: ConjunctiveQuery, world: Instance
) -> FrozenSet[Answer]:
    return frozenset(
        answer
        for answer in evaluate(query, world)
        if all(isinstance(value, Constant) for value in answer)
    )


def certain_answers_over_worlds(
    query: ConjunctiveQuery, worlds: Sequence[Instance]
) -> FrozenSet[Answer]:
    """Answers that hold in *every* world (skeptical semantics).

    The empty world set yields no certain answers (there is nothing to
    be certain about), matching the convention that an empty
    disjunctive chase result carries no information.
    """
    worlds = tuple(worlds)
    if not worlds:
        return frozenset()
    result = _constant_answers(query, worlds[0])
    for world in worlds[1:]:
        if not result:
            break
        result = result & _constant_answers(query, world)
    return result


def possible_answers_over_worlds(
    query: ConjunctiveQuery, worlds: Sequence[Instance]
) -> FrozenSet[Answer]:
    """Answers that hold in *some* world (brave semantics)."""
    result: FrozenSet[Answer] = frozenset()
    for world in worlds:
        result = result | _constant_answers(query, world)
    return result


def recovered_certain_answers(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    source: Instance,
    query: ConjunctiveQuery,
) -> FrozenSet[Answer]:
    """Skeptical answers to a source query after a full round trip.

    Exchanges *source* forward, recovers the possible worlds with the
    reverse mapping, and returns the answers certain across them —
    what a downstream consumer can still assert about the original
    source using only the exported data.
    """
    exported = exchange(mapping, source)
    worlds = reverse_exchange(reverse_mapping, exported)
    return certain_answers_over_worlds(query, worlds)


def recovered_possible_answers(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    source: Instance,
    query: ConjunctiveQuery,
) -> FrozenSet[Answer]:
    """Brave answers to a source query after a full round trip."""
    exported = exchange(mapping, source)
    worlds = reverse_exchange(reverse_mapping, exported)
    return possible_answers_over_worlds(query, worlds)
