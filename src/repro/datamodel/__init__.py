"""Relational data model: terms, atoms, schemas, and instances.

This package implements the basic objects of the paper's Section 2:

* three disjoint kinds of term — constants (``Const``), labeled nulls
  (the paper's ``Var``), and logic variables (used in dependencies and
  in canonical instances such as the prime instances of Section 5);
* atoms and facts over a relational schema;
* schemas (finite sequences of relation symbols with fixed arities);
* immutable relational instances with per-relation indexes.
"""

from repro.datamodel.terms import Constant, Null, Term, Variable, constants, nulls, variables
from repro.datamodel.atoms import Atom, atom
from repro.datamodel.schemas import Schema, SchemaError
from repro.datamodel.instances import Instance

__all__ = [
    "Atom",
    "Constant",
    "Instance",
    "Null",
    "Schema",
    "SchemaError",
    "Term",
    "Variable",
    "atom",
    "constants",
    "nulls",
    "variables",
]
