"""Atoms and facts over a relational schema.

An atom is a relation symbol applied to a tuple of terms.  A *fact*
is an atom containing no logic variables (constants and nulls only);
atoms with variables appear in dependencies and in canonical
instances (the paper's ``I_alpha`` / prime instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Tuple, Union

from repro.datamodel.terms import Constant, Null, Term, Variable


@dataclass(frozen=True, order=False)
class Atom:
    """A relational atom ``relation(args...)``."""

    relation: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        # atoms live inside the frozensets every cache key and
        # instance is built from; precomputing the hash makes those
        # constructions (and dict probes) O(1) per atom
        object.__setattr__(self, "_hash", hash((self.relation, self.args)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_fact(self) -> bool:
        """True when the atom contains no logic variables."""
        return not any(isinstance(arg, Variable) for arg in self.args)

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    def terms(self) -> Iterator[Term]:
        return iter(self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def nulls(self) -> Iterator[Null]:
        for arg in self.args:
            if isinstance(arg, Null):
                yield arg

    def constants(self) -> Iterator[Constant]:
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply *mapping* to every argument (identity where absent)."""
        return Atom(self.relation, tuple(mapping.get(arg, arg) for arg in self.args))

    def sort_key(self):
        # computed once per atom: sorting facts is the hot path of
        # instance construction and canonicalization
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self.relation, tuple(arg.sort_key() for arg in self.args))
            object.__setattr__(self, "_sort_key", key)
        return key

    def __lt__(self, other: "Atom") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation}({rendered})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.args!r})"


RawTerm = Union[Term, str, int]


def atom(relation: str, *raw_args: RawTerm) -> Atom:
    """Convenience constructor coercing raw values to terms.

    Strings and integers become constants; ``Term`` instances pass
    through unchanged.  Use explicit :class:`Variable`/:class:`Null`
    objects for non-constant arguments.
    """
    return Atom(relation, tuple(_coerce(arg) for arg in raw_args))


def _coerce(value: RawTerm) -> Term:
    if isinstance(value, (Constant, Null, Variable)):
        return value
    if isinstance(value, (str, int)):
        return Constant(value)
    raise TypeError(f"cannot coerce {value!r} to a term")


def atoms_terms(atoms: Iterable[Atom]) -> Iterator[Term]:
    """Yield every term occurring in *atoms*, with repetitions."""
    for current in atoms:
        yield from current.args


def atoms_variables(atoms: Iterable[Atom]) -> Tuple[Variable, ...]:
    """The distinct variables of *atoms*, in order of first occurrence."""
    seen = {}
    for current in atoms:
        for variable in current.variables():
            seen.setdefault(variable, None)
    return tuple(seen)
