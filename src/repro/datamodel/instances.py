"""Immutable relational instances.

An :class:`Instance` is a finite set of atoms, indexed by relation
symbol.  Ground instances contain constants only; target instances
may contain labeled nulls; *canonical* instances (the paper's
``I_alpha``, whose "facts" are instantiated atoms) may additionally
contain logic variables.  One class covers all three, with predicates
(:meth:`is_ground`, :meth:`has_variables`) to discriminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.datamodel.atoms import Atom, RawTerm, atom as make_atom
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Term, Variable


@dataclass(frozen=True)
class Instance:
    """An immutable set of atoms with a per-relation index."""

    facts: FrozenSet[Atom]
    _by_relation: Mapping[str, Tuple[Atom, ...]] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        grouped: Dict[str, List[Atom]] = {}
        for fact in self.facts:
            grouped.setdefault(fact.relation, []).append(fact)
        index = {
            name: tuple(sorted(atoms, key=Atom.sort_key))
            for name, atoms in grouped.items()
        }
        object.__setattr__(self, "_by_relation", index)
        object.__setattr__(self, "_hash", hash(self.facts))

    def __hash__(self) -> int:
        return self._hash

    # -- construction -------------------------------------------------

    @classmethod
    def of(cls, atoms: Iterable[Atom]) -> "Instance":
        return cls(frozenset(atoms))

    @classmethod
    def empty(cls) -> "Instance":
        return _EMPTY

    @classmethod
    def build(cls, rows: Mapping[str, Iterable[Sequence[RawTerm]]]) -> "Instance":
        """Build from ``{"P": [("a", "b"), ...]}`` with raw-value coercion.

        Strings and integers become constants; pass explicit
        :class:`Null`/:class:`Variable` objects for other terms.
        """
        atoms = [
            make_atom(relation, *row)
            for relation, tuples in rows.items()
            for row in tuples
        ]
        return cls.of(atoms)

    # -- basic queries -------------------------------------------------

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.sorted_facts())

    def __len__(self) -> int:
        return len(self.facts)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.facts

    def __bool__(self) -> bool:
        return bool(self.facts)

    def sorted_facts(self) -> Tuple[Atom, ...]:
        return tuple(sorted(self.facts))

    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_relation))

    def facts_for(self, relation: str) -> Tuple[Atom, ...]:
        return self._by_relation.get(relation, ())

    def active_domain(self) -> FrozenSet[Term]:
        return frozenset(term for fact in self.facts for term in fact.args)

    def constants(self) -> FrozenSet[Constant]:
        return frozenset(t for t in self.active_domain() if isinstance(t, Constant))

    def nulls(self) -> FrozenSet[Null]:
        return frozenset(t for t in self.active_domain() if isinstance(t, Null))

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(t for t in self.active_domain() if isinstance(t, Variable))

    def is_ground(self) -> bool:
        """True when every term is a constant (a *ground instance*)."""
        return all(fact.is_ground() for fact in self.facts)

    def has_variables(self) -> bool:
        return any(not fact.is_fact() for fact in self.facts)

    # -- set operations -------------------------------------------------

    def union(self, other: Union["Instance", Iterable[Atom]]) -> "Instance":
        extra = other.facts if isinstance(other, Instance) else frozenset(other)
        return Instance(self.facts | extra)

    def difference(self, other: "Instance") -> "Instance":
        return Instance(self.facts - other.facts)

    def issubset(self, other: "Instance") -> bool:
        return self.facts <= other.facts

    def restrict_to(self, schema: Union[Schema, Iterable[str]]) -> "Instance":
        """Keep only facts whose relation belongs to *schema*."""
        names = set(schema.names()) if isinstance(schema, Schema) else set(schema)
        return Instance(frozenset(f for f in self.facts if f.relation in names))

    def substitute(self, mapping: Mapping[Term, Term]) -> "Instance":
        """The homomorphic image under *mapping* (identity where absent)."""
        return Instance(frozenset(fact.substitute(mapping) for fact in self.facts))

    # -- validation and rendering ---------------------------------------

    def validate(self, schema: Schema) -> "Instance":
        """Raise unless every fact conforms to *schema*; returns self."""
        for fact in self.facts:
            schema.validate_atom(fact)
        return self

    def to_rows(self) -> Dict[str, List[Tuple[str, ...]]]:
        """Per-relation rows of rendered terms (for tabular display)."""
        return {
            relation: [tuple(str(arg) for arg in fact.args) for fact in facts]
            for relation, facts in sorted(self._by_relation.items())
        }

    def pretty(self, indent: str = "") -> str:
        """A stable multi-line rendering, one relation block per line."""
        if not self.facts:
            return f"{indent}(empty)"
        lines = []
        for relation in self.relations():
            rendered = ", ".join(str(fact) for fact in self.facts_for(relation))
            lines.append(f"{indent}{rendered}")
        return "\n".join(lines)

    def __str__(self) -> str:
        rendered = ", ".join(str(fact) for fact in self.sorted_facts())
        return f"{{{rendered}}}"


_EMPTY = Instance(frozenset())


def rename_apart(
    instance: Instance, taken: Iterable[Term], prefix: str = "N"
) -> Tuple[Instance, Dict[Term, Term]]:
    """Rename nulls of *instance* so they avoid the terms in *taken*.

    Returns the renamed instance and the applied mapping.  Useful when
    combining chase results produced by independent null factories.
    """
    taken_names = {t.name for t in taken if isinstance(t, Null)}
    mapping: Dict[Term, Term] = {}
    counter = 0
    for null in sorted(instance.nulls()):
        if null.name not in taken_names:
            continue
        while True:
            candidate = f"{prefix}{counter}"
            counter += 1
            if candidate not in taken_names:
                break
        fresh = Null(candidate)
        taken_names.add(candidate)
        mapping[null] = fresh
    if not mapping:
        return instance, {}
    return instance.substitute(mapping), mapping
