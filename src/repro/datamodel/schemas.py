"""Relational schemas: finite sets of relation symbols with arities.

A schema mapping is a triple (S, T, Sigma); this module provides the
S and T parts, including the *replica* construction the paper uses to
define the identity mapping (Section 2) and the source-augmentation
construction from the Introduction's robustness discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.datamodel.atoms import Atom


class SchemaError(ValueError):
    """Raised for malformed schemas or atoms not conforming to one."""


@dataclass(frozen=True)
class Schema:
    """An immutable relational schema.

    Stored as a sorted tuple of (name, arity) pairs so schemas are
    hashable and deterministically ordered.
    """

    relations: Tuple[Tuple[str, int], ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        index: Dict[str, int] = {}
        for name, arity in self.relations:
            if not name:
                raise SchemaError("relation names must be non-empty")
            if arity < 0:
                raise SchemaError(f"relation {name!r} has negative arity {arity}")
            if name in index and index[name] != arity:
                raise SchemaError(
                    f"relation {name!r} declared with arities {index[name]} and {arity}"
                )
            index[name] = arity
        canonical = tuple(sorted(index.items()))
        object.__setattr__(self, "relations", canonical)
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, spec: Union[Mapping[str, int], Iterable[Tuple[str, int]]]) -> "Schema":
        """Build a schema from ``{"P": 2, "Q": 1}`` or (name, arity) pairs."""
        if isinstance(spec, Mapping):
            return cls(tuple(spec.items()))
        return cls(tuple(spec))

    def arity(self, relation: str) -> int:
        try:
            return self._index[relation]
        except KeyError:
            raise SchemaError(f"relation {relation!r} is not in the schema") from None

    def __contains__(self, relation: str) -> bool:
        return relation in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.relations)

    def validate_atom(self, current: Atom) -> None:
        """Raise :class:`SchemaError` unless *current* fits this schema."""
        expected = self.arity(current.relation)
        if current.arity != expected:
            raise SchemaError(
                f"atom {current} has arity {current.arity}, "
                f"schema declares {current.relation}/{expected}"
            )

    def is_disjoint_from(self, other: "Schema") -> bool:
        return not set(self._index) & set(other._index)

    def union(self, other: "Schema") -> "Schema":
        """The union schema; arities must agree on shared names."""
        merged = dict(self.relations)
        for name, arity in other.relations:
            if name in merged and merged[name] != arity:
                raise SchemaError(
                    f"relation {name!r} has arity {merged[name]} in one schema "
                    f"and {arity} in the other"
                )
            merged[name] = arity
        return Schema.of(merged)

    def augment(self, relation: str, arity: int) -> "Schema":
        """Add a fresh relation symbol (the Introduction's S ∪ {R})."""
        if relation in self._index:
            raise SchemaError(f"relation {relation!r} already in schema")
        return Schema.of(dict(self.relations) | {relation: arity})

    def __str__(self) -> str:
        rendered = ", ".join(f"{name}/{arity}" for name, arity in self.relations)
        return f"{{{rendered}}}"
