"""Terms: constants, labeled nulls, and logic variables.

The paper fixes an infinite set ``Const`` of constants and an infinite
set ``Var`` of nulls disjoint from ``Const``.  Ground (source)
instances use constants only; target instances produced by the chase
may also contain labeled nulls.  Dependencies and canonical instances
(the paper's I_alpha) additionally use logic variables.

All three kinds are immutable, hashable, and totally ordered (first by
kind, then by name), which keeps every algorithm in the library
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union


@dataclass(frozen=True, order=False)
class Constant:
    """A constant value from ``Const``.

    Values are strings or integers; two constants are equal exactly
    when their values are equal.
    """

    value: Union[str, int]

    _KIND_RANK = 0

    def __post_init__(self) -> None:
        # terms are hashed millions of times per sweep (every fact
        # set, cache key, and substitution); pay for it once
        object.__setattr__(self, "_hash", hash((self._KIND_RANK, self.value)))

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> Tuple[int, str]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self._KIND_RANK, _value_key(self.value))
            object.__setattr__(self, "_sort_key", key)
        return key

    def __lt__(self, other: "Term") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, order=False)
class Null:
    """A labeled null (an element of the paper's ``Var``).

    Nulls are produced by the chase for existentially quantified
    variables.  Their identity is their label.
    """

    name: str

    _KIND_RANK = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self._KIND_RANK, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> Tuple[int, str]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self._KIND_RANK, _value_key(self.name))
            object.__setattr__(self, "_sort_key", key)
        return key

    def __lt__(self, other: "Term") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return f"⊥{self.name}"

    def __repr__(self) -> str:
        return f"Null({self.name!r})"


@dataclass(frozen=True, order=False)
class Variable:
    """A logic variable, used in dependencies and canonical instances."""

    name: str

    _KIND_RANK = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self._KIND_RANK, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> Tuple[int, str]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self._KIND_RANK, _value_key(self.name))
            object.__setattr__(self, "_sort_key", key)
        return key

    def __lt__(self, other: "Term") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


Term = Union[Constant, Null, Variable]


def _value_key(value: Union[str, int]) -> str:
    """A string key giving a stable total order over mixed values.

    Integers sort before strings and numerically among themselves.
    """
    if isinstance(value, int):
        return f"0:{value:020d}"
    return f"1:{value}"


def is_constant(term: Term) -> bool:
    """Return True when *term* is a constant (satisfies Constant(x))."""
    return isinstance(term, Constant)


def constants(terms: Iterable[Term]) -> Iterator[Constant]:
    """Yield the constants among *terms*, in input order."""
    for term in terms:
        if isinstance(term, Constant):
            yield term


def nulls(terms: Iterable[Term]) -> Iterator[Null]:
    """Yield the labeled nulls among *terms*, in input order."""
    for term in terms:
        if isinstance(term, Null):
            yield term


def variables(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the logic variables among *terms*, in input order."""
    for term in terms:
        if isinstance(term, Variable):
            yield term
