"""The dependency language of the paper (Definition 2.1).

Source-to-target tgds, full tgds, LAV tgds, and the richer classes
needed to express inverses and quasi-inverses: (disjunctive) tgds with
``Constant(x)`` conjuncts and inequalities in the left-hand side.
"""

from repro.dependencies.dependency import (
    Dependency,
    DependencyError,
    LanguageFeatures,
    Premise,
    tgd,
)
from repro.dependencies.parser import ParseError, parse_dependencies, parse_dependency
from repro.dependencies.descriptions import (
    complete_descriptions,
    set_partitions,
    sigma_star,
)
from repro.dependencies.rendering import render_dependency

__all__ = [
    "Dependency",
    "DependencyError",
    "LanguageFeatures",
    "ParseError",
    "Premise",
    "complete_descriptions",
    "parse_dependencies",
    "parse_dependency",
    "render_dependency",
    "set_partitions",
    "sigma_star",
    "tgd",
]
