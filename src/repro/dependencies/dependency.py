"""Dependencies: tgds and disjunctive tgds with constants/inequalities.

One class, :class:`Dependency`, covers the whole language of the
paper's Definition 2.1:

    forall x ( phi(x)  ->  OR_i  exists y_i  psi_i(x_i, y_i) )

where the premise ``phi`` is a conjunction of atoms, ``Constant(x)``
conjuncts and inequalities, and each disjunct ``psi_i`` is a
conjunction of atoms.  Plain s-t tgds are the special case with a
single disjunct and no premise constraints.

Existential variables are implicit: a disjunct variable not occurring
in the premise is existentially quantified in that disjunct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.datamodel.atoms import Atom, atoms_variables
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Term, Variable


class DependencyError(ValueError):
    """Raised for malformed dependencies."""


def _normalize_inequality(pair: Sequence[Variable]) -> Tuple[Variable, Variable]:
    left, right = pair
    if not isinstance(left, Variable) or not isinstance(right, Variable):
        raise DependencyError("inequalities must relate two variables")
    if left == right:
        raise DependencyError(f"inequality {left} != {right} relates a variable to itself")
    if right < left:
        left, right = right, left
    return (left, right)


@dataclass(frozen=True)
class Premise:
    """The left-hand side of a dependency.

    ``atoms`` is a conjunction of relational atoms; ``constant_vars``
    are the variables x with a ``Constant(x)`` conjunct; and
    ``inequalities`` is a set of unordered variable pairs x != x'.
    """

    atoms: Tuple[Atom, ...]
    constant_vars: FrozenSet[Variable] = frozenset()
    inequalities: FrozenSet[Tuple[Variable, Variable]] = frozenset()

    def __post_init__(self) -> None:
        normalized = frozenset(_normalize_inequality(pair) for pair in self.inequalities)
        object.__setattr__(self, "inequalities", normalized)
        object.__setattr__(self, "atoms", tuple(self.atoms))
        atom_vars = set(atoms_variables(self.atoms))
        for variable in self.constant_vars:
            if variable not in atom_vars:
                raise DependencyError(
                    f"Constant({variable}) refers to a variable absent from the premise atoms"
                )
        for left, right in normalized:
            if left not in atom_vars or right not in atom_vars:
                raise DependencyError(
                    f"inequality {left} != {right} refers to a variable absent "
                    "from the premise atoms"
                )

    def variables(self) -> Tuple[Variable, ...]:
        """Distinct premise variables, in order of first occurrence."""
        return atoms_variables(self.atoms)

    def is_plain(self) -> bool:
        """True when there are no Constant() conjuncts or inequalities."""
        return not self.constant_vars and not self.inequalities

    def inequalities_among_constants(self) -> bool:
        """Definition 2.1(2): every inequality is between Constant() vars."""
        return all(
            left in self.constant_vars and right in self.constant_vars
            for left, right in self.inequalities
        )

    def substitute(self, mapping: Mapping[Term, Term]) -> "Premise":
        """Apply a variable renaming (must stay variable-to-variable)."""

        def map_var(variable: Variable) -> Variable:
            image = mapping.get(variable, variable)
            if not isinstance(image, Variable):
                raise DependencyError(
                    f"premise substitution must map variables to variables, "
                    f"got {variable} -> {image}"
                )
            return image

        atoms = tuple(current.substitute(mapping) for current in self.atoms)
        constant_vars = frozenset(map_var(v) for v in self.constant_vars)
        inequalities = []
        for left, right in self.inequalities:
            new_left, new_right = map_var(left), map_var(right)
            if new_left == new_right:
                raise DependencyError(
                    f"substitution collapses inequality {left} != {right}"
                )
            inequalities.append((new_left, new_right))
        return Premise(atoms, constant_vars, frozenset(inequalities))


@dataclass(frozen=True)
class LanguageFeatures:
    """Which extensions of plain full tgds a dependency (set) uses.

    Mirrors the features whose necessity Section 4.1 establishes:
    ``Constant()`` in the premise, inequalities in the premise,
    disjunctions in the conclusion, existential quantifiers in the
    conclusion.
    """

    constants: bool = False
    inequalities: bool = False
    disjunctions: bool = False
    existentials: bool = False

    def __or__(self, other: "LanguageFeatures") -> "LanguageFeatures":
        return LanguageFeatures(
            self.constants or other.constants,
            self.inequalities or other.inequalities,
            self.disjunctions or other.disjunctions,
            self.existentials or other.existentials,
        )

    def describe(self) -> str:
        used = [
            name
            for name, flag in (
                ("constants", self.constants),
                ("inequalities", self.inequalities),
                ("disjunctions", self.disjunctions),
                ("existentials", self.existentials),
            )
            if flag
        ]
        return "+".join(used) if used else "plain full tgds"


@dataclass(frozen=True)
class Dependency:
    """A (disjunctive) tgd with constants and inequalities."""

    premise: Premise
    disjuncts: Tuple[Tuple[Atom, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "disjuncts", tuple(tuple(d) for d in self.disjuncts)
        )
        if not self.premise.atoms:
            raise DependencyError("a dependency needs at least one premise atom")
        if not self.disjuncts:
            raise DependencyError("a dependency needs at least one disjunct")
        for disjunct in self.disjuncts:
            if not disjunct:
                raise DependencyError("disjuncts must be non-empty conjunctions")

    # -- structure -------------------------------------------------------

    def premise_variables(self) -> Tuple[Variable, ...]:
        return self.premise.variables()

    def frontier(self) -> Tuple[Variable, ...]:
        """Premise variables that also occur in some disjunct (the x)."""
        conclusion_vars = set()
        for disjunct in self.disjuncts:
            conclusion_vars.update(atoms_variables(disjunct))
        return tuple(v for v in self.premise.variables() if v in conclusion_vars)

    def existential_variables(self, index: int) -> Tuple[Variable, ...]:
        """The y_i of disjunct *index*: its variables absent from the premise."""
        premise_vars = set(self.premise.variables())
        return tuple(
            v for v in atoms_variables(self.disjuncts[index]) if v not in premise_vars
        )

    def premise_relations(self) -> FrozenSet[str]:
        return frozenset(current.relation for current in self.premise.atoms)

    def conclusion_relations(self) -> FrozenSet[str]:
        return frozenset(
            current.relation for disjunct in self.disjuncts for current in disjunct
        )

    # -- classification ----------------------------------------------------

    def is_tgd(self) -> bool:
        """A plain tgd: one disjunct, no Constant() or inequalities."""
        return len(self.disjuncts) == 1 and self.premise.is_plain()

    def is_disjunction_free(self) -> bool:
        return len(self.disjuncts) == 1

    def is_full(self) -> bool:
        """No existential quantifiers in any disjunct."""
        return all(
            not self.existential_variables(i) for i in range(len(self.disjuncts))
        )

    def is_lav(self) -> bool:
        """LAV: the premise is a single atom (and the dependency is a tgd)."""
        return self.is_tgd() and len(self.premise.atoms) == 1

    def language_features(self) -> LanguageFeatures:
        return LanguageFeatures(
            constants=bool(self.premise.constant_vars),
            inequalities=bool(self.premise.inequalities),
            disjunctions=len(self.disjuncts) > 1,
            existentials=not self.is_full(),
        )

    # -- validation ---------------------------------------------------------

    def validate(self, source: Schema, target: Schema) -> "Dependency":
        """Check the dependency maps *source* premises to *target* conclusions.

        Raises :class:`DependencyError` for unknown relations and arity
        mismatches alike.
        """
        from repro.datamodel.schemas import SchemaError

        try:
            for current in self.premise.atoms:
                if current.relation not in source:
                    raise DependencyError(
                        f"premise atom {current} uses relation outside the "
                        "source schema"
                    )
                source.validate_atom(current)
            for disjunct in self.disjuncts:
                for current in disjunct:
                    if current.relation not in target:
                        raise DependencyError(
                            f"conclusion atom {current} uses relation outside "
                            "the target schema"
                        )
                    target.validate_atom(current)
        except SchemaError as error:
            raise DependencyError(str(error)) from error
        return self

    # -- transformation -------------------------------------------------------

    def substitute(self, mapping: Mapping[Term, Term]) -> "Dependency":
        """Apply a variable renaming to premise and conclusions."""
        premise = self.premise.substitute(mapping)
        disjuncts = tuple(
            tuple(current.substitute(mapping) for current in disjunct)
            for disjunct in self.disjuncts
        )
        return Dependency(premise, disjuncts)

    def canonical_form(self) -> "Dependency":
        """A renaming-invariant normal form (for dedup and comparison).

        Atoms are sorted, then variables renamed v0, v1, ... in order
        of first occurrence (premise first, then each disjunct).  Two
        dependencies equal up to variable renaming and conjunct order
        get equal canonical forms in the common case; the form is used
        for deduplication, where an occasional miss is harmless.
        """
        sorted_premise_atoms = tuple(sorted(self.premise.atoms))
        sorted_disjuncts = tuple(
            tuple(sorted(disjunct)) for disjunct in self.disjuncts
        )
        renaming: Dict[Term, Term] = {}

        def visit(variable: Variable) -> None:
            if variable not in renaming:
                renaming[variable] = Variable(f"v{len(renaming)}")

        for current in sorted_premise_atoms:
            for variable in current.variables():
                visit(variable)
        for disjunct in sorted_disjuncts:
            for current in disjunct:
                for variable in current.variables():
                    visit(variable)

        premise = Premise(
            tuple(sorted(a.substitute(renaming) for a in sorted_premise_atoms)),
            frozenset(renaming[v] for v in self.premise.constant_vars),
            frozenset(
                _normalize_inequality((renaming[l], renaming[r]))
                for l, r in self.premise.inequalities
            ),
        )
        disjuncts = tuple(
            sorted(
                tuple(sorted(current.substitute(renaming) for current in disjunct))
                for disjunct in sorted_disjuncts
            )
        )
        return Dependency(premise, disjuncts)

    def __str__(self) -> str:
        from repro.dependencies.rendering import render_dependency

        return render_dependency(self)


def tgd(
    premise_atoms: Iterable[Atom],
    conclusion_atoms: Iterable[Atom],
    *,
    constant_vars: Iterable[Variable] = (),
    inequalities: Iterable[Tuple[Variable, Variable]] = (),
) -> Dependency:
    """Build a disjunction-free dependency (optionally with constraints)."""
    premise = Premise(
        tuple(premise_atoms), frozenset(constant_vars), frozenset(inequalities)
    )
    return Dependency(premise, (tuple(conclusion_atoms),))


def language_audit(dependencies: Iterable[Dependency]) -> LanguageFeatures:
    """The union of language features used across *dependencies*."""
    combined = LanguageFeatures()
    for dependency in dependencies:
        combined = combined | dependency.language_features()
    return combined
