"""Complete descriptions and the Sigma* construction (Section 4).

A *complete description* delta(x) over a variable vector x is a
consistent conjunction of equalities and inequalities that completely
determines which variables coincide — i.e., a set partition of x.
For each tgd sigma and each complete description delta of the
variables shared by its two sides, ``f(sigma, delta)`` replaces every
variable by the representative of its equivalence class;
``Sigma* = Sigma ∪ { f(sigma, delta) }`` is logically equivalent to
Sigma and is the starting point of the QuasiInverse algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.datamodel.terms import Term, Variable
from repro.dependencies.dependency import Dependency


def set_partitions(items: Sequence) -> Iterator[Tuple[Tuple, ...]]:
    """All set partitions of *items*, as tuples of blocks.

    Blocks preserve the input order of their elements and the first
    elements of the blocks appear in input order, so the enumeration
    is deterministic.  The number of partitions of n items is the
    n-th Bell number.
    """
    items = list(items)
    if not items:
        yield ()
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        blocks = [tuple(block) for block in partition]
        # Put `first` in its own block (kept in front to preserve order).
        yield tuple([(first,)] + blocks)
        # Or merge `first` into each existing block.
        for index in range(len(blocks)):
            merged = list(blocks)
            merged[index] = (first,) + merged[index]
            yield tuple(merged)


def complete_descriptions(
    variables: Sequence[Variable],
) -> Iterator[Dict[Variable, Variable]]:
    """All complete descriptions of *variables*, as quotient maps.

    Each description is returned as a substitution sending every
    variable to the representative (first element, in input order) of
    its equivalence class.  The identity description (all classes
    singletons) is included.
    """
    for partition in set_partitions(variables):
        mapping: Dict[Variable, Variable] = {}
        for block in partition:
            representative = block[0]
            for variable in block:
                mapping[variable] = representative
        yield mapping


def quotient(dependency: Dependency, description: Dict[Variable, Variable]) -> Dependency:
    """The paper's f(sigma, delta): apply the quotient map to *dependency*."""
    return dependency.substitute(dict(description))


def sigma_star(dependencies: Iterable[Dependency]) -> Tuple[Dependency, ...]:
    """The Sigma* construction.

    For each dependency, add the quotient f(sigma, delta) for every
    complete description delta of the *frontier* (the variables that
    appear in both sides).  Results are deduplicated by canonical
    form; the original dependencies come first, in input order.
    """
    result: List[Dependency] = []
    seen = set()

    def add(candidate: Dependency) -> None:
        key = candidate.canonical_form()
        if key not in seen:
            seen.add(key)
            result.append(candidate)

    dependencies = tuple(dependencies)
    for dependency in dependencies:
        add(dependency)
    for dependency in dependencies:
        frontier = dependency.frontier()
        for description in complete_descriptions(frontier):
            if all(description[v] == v for v in frontier):
                continue  # identity quotient: already added above
            add(quotient(dependency, description))
    return tuple(result)
