"""A small text syntax for dependencies.

Examples::

    P(x,y) -> Q(x)
    Q(x,y) & R(y,z) -> P(x,y,z)
    S(x) -> P(x) | Q(x)
    Q(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)
    S(x1,x2,y) & Constant(x1) & x1 != x2 -> exists x3 . P(x1,x2,x3)

Rules:

* identifiers in argument positions are logic variables; integer
  literals and single-quoted strings are constants;
* ``&`` (or ``∧``) separates premise conjuncts; ``|`` (or ``∨``)
  separates conclusion disjuncts; ``,`` separates conjuncts inside a
  disjunct as well as atom arguments (parenthesis depth decides);
* ``Constant(x)`` and ``x != y`` (or ``x ≠ y``) are premise
  constraints; they may not appear in conclusions;
* an optional ``exists v1, v2 .`` prefix on a disjunct documents its
  existential variables; it is validated against the inferred ones.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.terms import Constant, Term, Variable
from repro.dependencies.dependency import Dependency, DependencyError, Premise
from repro.errors import ParseError


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->|→)
  | (?P<neq>!=|≠)
  | (?P<and>&|∧)
  | (?P<or>\||∨)
  | (?P<exists>exists\b|∃)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<int>-?\d+)
  | (?P<str>'[^']*')
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r} at {token.position} "
                f"in {self.text!r}"
            )
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    # -- grammar ------------------------------------------------------------

    def parse_dependency(self) -> Dependency:
        premise = self._parse_premise()
        self._expect("arrow")
        disjuncts = [self._parse_disjunct(premise)]
        while self._accept("or"):
            disjuncts.append(self._parse_disjunct(premise))
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                f"trailing input {token.text!r} at {token.position} in {self.text!r}"
            )
        return Dependency(premise, tuple(disjuncts))

    def _parse_premise(self) -> Premise:
        atoms: List[Atom] = []
        constant_vars: Set[Variable] = set()
        inequalities: Set[Tuple[Variable, Variable]] = set()
        while True:
            self._parse_premise_conjunct(atoms, constant_vars, inequalities)
            if not (self._accept("and") or self._accept("comma")):
                break
        try:
            return Premise(tuple(atoms), frozenset(constant_vars), frozenset(inequalities))
        except DependencyError as error:
            raise ParseError(str(error)) from error

    def _parse_premise_conjunct(
        self,
        atoms: List[Atom],
        constant_vars: Set[Variable],
        inequalities: Set[Tuple[Variable, Variable]],
    ) -> None:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of premise in {self.text!r}")
        if token.kind == "name":
            after = (
                self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            )
            if after is not None and after.kind == "neq":
                left = self._parse_variable()
                self._expect("neq")
                right = self._parse_variable()
                if left == right:
                    raise ParseError(f"inequality {left} != {right} is trivially false")
                inequalities.add((left, right))
                return
            if token.text == "Constant":
                self._next()
                self._expect("lparen")
                variable = self._parse_variable()
                self._expect("rparen")
                constant_vars.add(variable)
                return
            atoms.append(self._parse_atom())
            return
        raise ParseError(
            f"expected an atom, Constant(x), or inequality at {token.position} "
            f"in {self.text!r}"
        )

    def _parse_disjunct(self, premise: Premise) -> Tuple[Atom, ...]:
        declared: Optional[Tuple[Variable, ...]] = None
        if self._accept("exists"):
            # Variable list: the first name is always a variable, then
            # comma-separated further ones; an optional "." closes the
            # list ("exists z . Q(z)" and "∃z Q(z)" both parse).
            names = [self._parse_variable()]
            while self._accept("comma"):
                names.append(self._parse_variable())
            self._accept("dot")
            declared = tuple(names)
        if self._accept("lparen"):
            # Parenthesized conjunction: "(A ∧ B)".
            atoms = [self._parse_atom()]
            while self._accept("and") or self._accept("comma"):
                atoms.append(self._parse_atom())
            self._expect("rparen")
        else:
            atoms = [self._parse_atom()]
            while self._accept("and") or self._accept("comma"):
                atoms.append(self._parse_atom())
        if declared is not None:
            premise_vars = set(v for a in premise.atoms for v in a.variables())
            inferred = {
                v
                for current in atoms
                for v in current.variables()
                if v not in premise_vars
            }
            if set(declared) != inferred:
                raise ParseError(
                    f"declared existentials {sorted(v.name for v in declared)} do not "
                    f"match inferred {sorted(v.name for v in inferred)} in {self.text!r}"
                )
        return tuple(atoms)

    def _parse_atom(self) -> Atom:
        name = self._expect("name").text
        self._expect("lparen")
        args: List[Term] = []
        if self._peek() is not None and self._peek().kind != "rparen":
            args.append(self._parse_term())
            while self._accept("comma"):
                args.append(self._parse_term())
        self._expect("rparen")
        return Atom(name, tuple(args))

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "name":
            return Variable(token.text)
        if token.kind == "int":
            return Constant(int(token.text))
        if token.kind == "str":
            return Constant(token.text[1:-1])
        raise ParseError(
            f"expected a term but found {token.text!r} at {token.position} "
            f"in {self.text!r}"
        )

    def _parse_variable(self) -> Variable:
        token = self._expect("name")
        return Variable(token.text)


def parse_dependency(text: str) -> Dependency:
    """Parse a single dependency from *text*."""
    return _Parser(text).parse_dependency()


def parse_dependencies(text: str) -> Tuple[Dependency, ...]:
    """Parse dependencies separated by newlines or semicolons.

    Blank lines and ``#`` comments are ignored.
    """
    pieces: List[str] = []
    for line in text.replace(";", "\n").splitlines():
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            pieces.append(stripped)
    return tuple(parse_dependency(piece) for piece in pieces)
