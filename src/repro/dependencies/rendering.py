"""Pretty printing for dependencies (unicode or pure ASCII)."""

from __future__ import annotations

from typing import List

from repro.dependencies import dependency as _dependency


def render_dependency(dep: "_dependency.Dependency", unicode: bool = True) -> str:
    """Render *dep* in the paper's notation.

    Unicode: ``P(x, y) ∧ Constant(x) ∧ x ≠ y → ∃z (Q(x, z)) ∨ Q(x, y)``
    ASCII:   ``P(x, y) & Constant(x) & x != y -> exists z . (Q(x, z)) | Q(x, y)``
    """
    conj = " ∧ " if unicode else " & "
    arrow = " → " if unicode else " -> "
    disj = " ∨ " if unicode else " | "
    neq = "≠" if unicode else "!="

    premise_parts: List[str] = [str(a) for a in dep.premise.atoms]
    premise_parts.extend(
        f"Constant({v})" for v in sorted(dep.premise.constant_vars)
    )
    premise_parts.extend(
        f"{left} {neq} {right}" for left, right in sorted(dep.premise.inequalities)
    )

    rendered_disjuncts: List[str] = []
    for index, disjunct in enumerate(dep.disjuncts):
        existentials = dep.existential_variables(index)
        body = conj.join(str(a) for a in disjunct)
        if existentials:
            names = ",".join(v.name for v in existentials)
            if unicode:
                prefix = f"∃{names} "
            else:
                prefix = f"exists {names} . "
            rendered = f"{prefix}({body})" if len(disjunct) > 1 else f"{prefix}{body}"
        else:
            rendered = f"({body})" if len(disjunct) > 1 and len(dep.disjuncts) > 1 else body
        rendered_disjuncts.append(rendered)

    return conj.join(premise_parts) + arrow + disj.join(rendered_disjuncts)


def render_dependencies(
    dependencies, unicode: bool = True, indent: str = "  "
) -> str:
    """Render a set of dependencies, one per line."""
    return "\n".join(
        f"{indent}{render_dependency(dep, unicode=unicode)}" for dep in dependencies
    )
