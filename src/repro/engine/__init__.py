"""The shared execution layer for all bounded model checking.

Everything the library verifies mechanically — subset properties,
inverse checks, soundness/faithfulness sweeps — reduces to chases
plus homomorphism tests fanned out over bounded instance universes.
This package concentrates the engineering that makes those loops
fast:

* :mod:`repro.engine.indexing` — per-instance fact indexes so the
  homomorphism join probes ``(relation, position, term)`` posting
  lists instead of scanning relation extents;
* :mod:`repro.engine.cache` — content-addressed memoization of chase
  results and verdicts under canonical (isomorphism-respecting)
  instance keys, with hit/miss counters;
* :mod:`repro.engine.parallel` — the :class:`ParallelUniverseRunner`
  that chunks universe streams across a ``multiprocessing`` pool with
  deterministic merge order and a serial fallback;
* :mod:`repro.engine.instrumentation` — per-phase timings and
  throughput counters surfaced by the CLI and benchmarks.

* :mod:`repro.engine.budget` — per-check resource budgets (deadline,
  instance cap, chase-step cap, RSS watermark) that degrade blown-up
  sweeps into partial verdicts instead of lost work;
* :mod:`repro.engine.checkpoint` — a journal of verified instance
  ranges (fingerprint-guarded against stale entries) so interrupted
  sweeps resume where they stopped, plus per-shard lease records for
  multi-process sharded sweeps with work-stealing;
* :mod:`repro.engine.store` — an on-disk, content-addressed
  chase/verdict store (SQLite; the ``--store`` / ``REPRO_STORE``
  knob) backing the memo caches as a write-through second level
  shared across runs, processes, and CI;
* :mod:`repro.engine.symmetry` — canonical forms of ground instances
  under domain permutation, orbit-reduced sweep plans (the
  ``--symmetry orbits`` mode), content-addressed sweep sharding (the
  ``--shards`` mode), and symmetry-aware cache keys;
* :mod:`repro.engine.compile` / :mod:`repro.engine.kernel` — the
  opt-in compiled backend (the ``--backend kernel`` mode): term
  interning, premises compiled once into ordered array join plans,
  and a delta-driven (semi-naive) chase for sweep enumeration, all
  byte-identical to the object backend's results;
* :mod:`repro.engine.sqlbackend` — the SQL backend (the ``--backend
  sql`` mode): instances lowered into SQLite over the intern table
  with labeled nulls in a tagged id-space, the chase run as bulk
  ``INSERT … SELECT … EXCEPT`` rounds, and homomorphism checks
  evaluated as conjunctive queries — the scaling path past what
  in-memory backends can chase, still byte-identical.

The package depends only on :mod:`repro.datamodel` and
:mod:`repro.errors`; the chase, core, analysis, and data-exchange
layers all route through it.
"""

from repro.engine.budget import (
    Budget,
    CoverageEvent,
    SweepVerdict,
    coverage_events,
    coverage_scope,
    current_budget,
    record_coverage,
    reset_coverage_events,
    use_budget,
    worst_coverage,
)
from repro.engine.cache import (
    CacheStats,
    MemoCache,
    active_store,
    all_cache_stats,
    cached_chase_result,
    canonical_key,
    canonicalize_instance,
    chase_cache,
    configured_maxsize,
    flush_active_store,
    install_store,
    mapping_key,
    reset_all_caches,
    resize_caches,
    store_installed,
    uninstall_store,
    verdict_cache,
)
from repro.engine.checkpoint import (
    CheckpointJournal,
    claim_shards,
    default_journal,
    dropped_flush_count,
    reset_dropped_flush_count,
    shard_entry_key,
    sweep_key,
)
from repro.engine.compile import CompiledPremise
from repro.engine.faults import (
    FAULT_POINTS,
    FaultPlane,
    FaultRule,
    active_plane,
    fault_scope,
)
from repro.engine.fsck import FsckReport, fsck_checkpoint, fsck_store
from repro.engine.indexing import FactIndex, fact_index, index_build_count
from repro.engine.kernel import (
    BACKEND_KERNEL,
    BACKEND_MODES,
    BACKEND_OBJECT,
    BACKEND_SQL,
    InternTable,
    KernelInstance,
    active_backend,
    default_backend,
    install_backend,
    intern_table,
    kernel_active,
    kernel_instance,
    resolve_backend,
    sql_active,
    use_backend,
)
from repro.engine.sqlbackend import (
    SqlInstance,
    default_sql_db,
    sql_all_homomorphisms,
    sql_has_homomorphism,
    sql_instance,
    sql_stratified_chase,
)
from repro.engine.instrumentation import (
    EngineStats,
    engine_stats,
    reset_engine_stats,
)
from repro.engine.parallel import (
    ParallelUniverseRunner,
    default_task_timeout,
    default_workers,
    fork_available,
    set_default_workers,
)
from repro.engine.store import (
    ENGINE_VERSION,
    VerdictStore,
    default_store,
    stable_digest,
    use_store,
)
from repro.engine.symmetry import (
    SYMMETRY_FULL,
    SYMMETRY_MODES,
    SYMMETRY_ORBITS,
    GroundCanonicalForm,
    OrbitClass,
    OrbitRepresentative,
    SweepPlan,
    canonical_instances,
    canonical_representative,
    count_orbits,
    decanonicalize,
    default_shards,
    default_symmetry,
    ground_canonical_form,
    ground_keys_active,
    ground_pair_key,
    mapping_permutation_invariant,
    orbit_count_estimate,
    orbit_reduce,
    orbit_transport,
    plan_sweep,
    resolve_shards,
    resolve_symmetry,
    set_symmetry_memo_limit,
    shard_of_facts,
    shard_of_instance,
    use_ground_keys,
)

__all__ = [
    "BACKEND_KERNEL",
    "BACKEND_MODES",
    "BACKEND_OBJECT",
    "BACKEND_SQL",
    "Budget",
    "CacheStats",
    "CheckpointJournal",
    "CompiledPremise",
    "CoverageEvent",
    "ENGINE_VERSION",
    "EngineStats",
    "FAULT_POINTS",
    "FactIndex",
    "FaultPlane",
    "FaultRule",
    "FsckReport",
    "GroundCanonicalForm",
    "InternTable",
    "KernelInstance",
    "MemoCache",
    "OrbitClass",
    "OrbitRepresentative",
    "ParallelUniverseRunner",
    "SYMMETRY_FULL",
    "SYMMETRY_MODES",
    "SYMMETRY_ORBITS",
    "SqlInstance",
    "SweepPlan",
    "SweepVerdict",
    "VerdictStore",
    "active_backend",
    "active_plane",
    "active_store",
    "all_cache_stats",
    "cached_chase_result",
    "canonical_instances",
    "canonical_key",
    "canonical_representative",
    "canonicalize_instance",
    "chase_cache",
    "claim_shards",
    "configured_maxsize",
    "count_orbits",
    "coverage_events",
    "coverage_scope",
    "current_budget",
    "decanonicalize",
    "default_backend",
    "default_journal",
    "default_shards",
    "default_sql_db",
    "default_store",
    "default_symmetry",
    "default_task_timeout",
    "default_workers",
    "dropped_flush_count",
    "engine_stats",
    "fact_index",
    "fault_scope",
    "flush_active_store",
    "fork_available",
    "fsck_checkpoint",
    "fsck_store",
    "ground_canonical_form",
    "ground_keys_active",
    "ground_pair_key",
    "index_build_count",
    "install_backend",
    "install_store",
    "intern_table",
    "kernel_active",
    "kernel_instance",
    "mapping_key",
    "mapping_permutation_invariant",
    "orbit_count_estimate",
    "orbit_reduce",
    "orbit_transport",
    "plan_sweep",
    "record_coverage",
    "reset_all_caches",
    "reset_coverage_events",
    "reset_dropped_flush_count",
    "reset_engine_stats",
    "resize_caches",
    "resolve_backend",
    "resolve_shards",
    "resolve_symmetry",
    "set_default_workers",
    "set_symmetry_memo_limit",
    "shard_entry_key",
    "shard_of_facts",
    "shard_of_instance",
    "sql_active",
    "sql_all_homomorphisms",
    "sql_has_homomorphism",
    "sql_instance",
    "sql_stratified_chase",
    "stable_digest",
    "store_installed",
    "sweep_key",
    "uninstall_store",
    "use_backend",
    "use_budget",
    "use_ground_keys",
    "use_store",
    "verdict_cache",
    "worst_coverage",
]
