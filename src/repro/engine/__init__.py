"""The shared execution layer for all bounded model checking.

Everything the library verifies mechanically — subset properties,
inverse checks, soundness/faithfulness sweeps — reduces to chases
plus homomorphism tests fanned out over bounded instance universes.
This package concentrates the engineering that makes those loops
fast:

* :mod:`repro.engine.indexing` — per-instance fact indexes so the
  homomorphism join probes ``(relation, position, term)`` posting
  lists instead of scanning relation extents;
* :mod:`repro.engine.cache` — content-addressed memoization of chase
  results and verdicts under canonical (isomorphism-respecting)
  instance keys, with hit/miss counters;
* :mod:`repro.engine.parallel` — the :class:`ParallelUniverseRunner`
  that chunks universe streams across a ``multiprocessing`` pool with
  deterministic merge order and a serial fallback;
* :mod:`repro.engine.instrumentation` — per-phase timings and
  throughput counters surfaced by the CLI and benchmarks.

The package depends only on :mod:`repro.datamodel`; the chase, core,
analysis, and data-exchange layers all route through it.
"""

from repro.engine.cache import (
    CacheStats,
    MemoCache,
    all_cache_stats,
    cached_chase_result,
    canonical_key,
    canonicalize_instance,
    chase_cache,
    mapping_key,
    reset_all_caches,
    resize_caches,
    verdict_cache,
)
from repro.engine.indexing import FactIndex, fact_index
from repro.engine.instrumentation import (
    EngineStats,
    engine_stats,
    reset_engine_stats,
)
from repro.engine.parallel import (
    ParallelUniverseRunner,
    default_workers,
    fork_available,
    set_default_workers,
)

__all__ = [
    "CacheStats",
    "EngineStats",
    "FactIndex",
    "MemoCache",
    "ParallelUniverseRunner",
    "all_cache_stats",
    "cached_chase_result",
    "canonical_key",
    "canonicalize_instance",
    "chase_cache",
    "default_workers",
    "engine_stats",
    "fact_index",
    "fork_available",
    "mapping_key",
    "reset_all_caches",
    "reset_engine_stats",
    "resize_caches",
    "set_default_workers",
    "verdict_cache",
]
