"""Resource governance for bounded checks.

The paper's decision procedures are inherently exponential, so every
sweep the library runs *can* blow up; a :class:`Budget` turns "blow up"
into "stop cleanly and report how far we got".  One budget is created
per check (or inherited from the ambient one) and carries:

* a wall-clock **deadline** (absolute, monotonic — comparable across
  forked workers, which share the parent's monotonic clock);
* an **instance cap** (`max_instances`) charged by the universe
  runner as results are merged;
* a **chase-step cap** (`max_chase_steps`) charged deep inside the
  standard and disjunctive chases;
* an optional **RSS watermark** (`max_rss_mb`), sampled from
  ``/proc/self/status`` where available.

Tripping any limit raises :class:`~repro.errors.BudgetExceeded` (the
deadline raises the :class:`~repro.errors.DeadlineExceeded` subclass);
checkers catch these at their merge loop and degrade to a *partial
verdict* whose ``coverage`` field records why the sweep stopped.

The module also hosts the ambient-budget plumbing (workers inherit the
budget through the pool initializer, the chase reads it through
:func:`current_budget`), the process-wide *coverage event* registry the
CLI maps to exit codes, and :class:`SweepVerdict`, a tuple-compatible
verdict that lets legacy ``ok, violators = sweep(...)`` callers coexist
with coverage-aware ones.

Deterministic fault injection (for tests): the ``budget.expire`` point
of the unified fault plane (:mod:`repro.engine.faults`) — or its legacy
``REPRO_FAULT_EXPIRE_AFTER="<instances|chase_steps>:N"`` alias — makes
the budget behave as if its deadline passed after exactly N charges of
that resource, regardless of wall-clock time.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.engine import faults
from repro.errors import BudgetExceeded, DeadlineExceeded

_RSS_CHECK_PERIOD = 256


def _read_rss_mb() -> Optional[float]:
    """Resident set size in MiB from /proc, or None off-Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


class Budget:
    """Mutable per-check resource budget (see module docstring).

    Counters are process-local: a forked worker charges its own copy,
    so ``max_chase_steps`` bounds each worker's chase work while the
    deadline — an absolute monotonic timestamp — expires everywhere
    simultaneously.
    """

    __slots__ = (
        "deadline",
        "deadline_at",
        "started_at",
        "max_instances",
        "max_chase_steps",
        "max_rss_mb",
        "instances_checked",
        "chase_steps",
        "_checks",
        "_expire_resource",
        "_expire_after",
    )

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_instances: Optional[int] = None,
        max_chase_steps: Optional[int] = None,
        max_rss_mb: Optional[float] = None,
    ) -> None:
        self.deadline = deadline
        self.started_at = time.monotonic()
        self.deadline_at = (
            self.started_at + deadline if deadline is not None else None
        )
        self.max_instances = max_instances
        self.max_chase_steps = max_chase_steps
        self.max_rss_mb = max_rss_mb
        self.instances_checked = 0
        self.chase_steps = 0
        self._checks = 0
        self._expire_resource, self._expire_after = faults.expire_rule()

    @classmethod
    def from_env(cls) -> Optional["Budget"]:
        """A budget from ``REPRO_DEADLINE`` / ``REPRO_MAX_INSTANCES`` /
        ``REPRO_MAX_CHASE_STEPS`` / ``REPRO_MAX_RSS_MB``, or None when
        no knob is set (the CLI's ``--deadline`` etc. set these)."""

        def _float(name: str) -> Optional[float]:
            raw = os.environ.get(name)
            if not raw:
                return None
            try:
                return float(raw)
            except ValueError:
                return None

        def _int(name: str) -> Optional[int]:
            value = _float(name)
            return int(value) if value is not None else None

        deadline = _float("REPRO_DEADLINE")
        max_instances = _int("REPRO_MAX_INSTANCES")
        max_chase_steps = _int("REPRO_MAX_CHASE_STEPS")
        max_rss_mb = _float("REPRO_MAX_RSS_MB")
        if all(
            knob is None
            for knob in (deadline, max_instances, max_chase_steps, max_rss_mb)
        ):
            return None
        return cls(
            deadline=deadline,
            max_instances=max_instances,
            max_chase_steps=max_chase_steps,
            max_rss_mb=max_rss_mb,
        )

    # -- probes ------------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining_time(self) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    def _raise_deadline(self) -> None:
        raise DeadlineExceeded(
            f"wall-clock deadline of {self.deadline}s passed "
            f"after {self.elapsed():.3f}s",
            kind="deadline",
            limit=self.deadline,
            consumed=round(self.elapsed(), 3),
        )

    def check(self) -> None:
        """Raise if the deadline passed or the RSS watermark is hit."""
        if self.deadline_at is not None and time.monotonic() > self.deadline_at:
            self._raise_deadline()
        self._checks += 1
        if self.max_rss_mb is not None and self._checks % _RSS_CHECK_PERIOD == 0:
            rss = _read_rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                raise BudgetExceeded(
                    f"RSS {rss:.0f} MiB exceeds watermark {self.max_rss_mb} MiB",
                    kind="rss",
                    limit=self.max_rss_mb,
                    consumed=round(rss, 1),
                )

    # -- charges -----------------------------------------------------

    def charge_instances(self, n: int = 1) -> None:
        """Charge *n* universe instances; raises once over the cap."""
        self.check()
        if (
            self.max_instances is not None
            and self.instances_checked + n > self.max_instances
        ):
            raise BudgetExceeded(
                f"instance cap of {self.max_instances} reached",
                kind="instances",
                limit=self.max_instances,
                consumed=self.instances_checked,
            )
        self.instances_checked += n
        if (
            self._expire_resource == "instances"
            and self.instances_checked >= self._expire_after
        ):
            faults.count_injection("budget.expire")
            self._raise_deadline()

    def charge_chase_steps(self, n: int = 1) -> None:
        """Charge *n* chase firings; raises once over the cap."""
        self.check()
        if (
            self.max_chase_steps is not None
            and self.chase_steps + n > self.max_chase_steps
        ):
            raise BudgetExceeded(
                f"chase-step cap of {self.max_chase_steps} reached",
                kind="chase_steps",
                limit=self.max_chase_steps,
                consumed=self.chase_steps,
            )
        self.chase_steps += n
        if (
            self._expire_resource == "chase_steps"
            and self.chase_steps >= self._expire_after
        ):
            faults.count_injection("budget.expire")
            self._raise_deadline()

    # -- external interruption ---------------------------------------

    def expire_now(self) -> None:
        """Force the deadline into the past, from any thread.

        The next :meth:`check` anywhere this budget is consulted raises
        :class:`~repro.errors.DeadlineExceeded`, so the sweep flushes
        its checkpoint journal and degrades to a partial verdict — the
        same path a real deadline takes.  The service daemon uses this
        to drain in-flight jobs on SIGTERM and to cancel running jobs.
        """
        if self.deadline is None:
            self.deadline = round(self.elapsed(), 3)
        self.deadline_at = time.monotonic() - 1.0

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("deadline", self.deadline),
                ("max_instances", self.max_instances),
                ("max_chase_steps", self.max_chase_steps),
                ("max_rss_mb", self.max_rss_mb),
            )
            if value is not None
        )
        return f"Budget({limits or 'unlimited'})"


# -- the ambient budget ---------------------------------------------------
#
# Both the ambient budget and the coverage-event registry are scoped
# per *thread*: the service daemon runs concurrent jobs on worker
# threads, each with its own budget, and one job's partial verdict must
# not leak into another job's exit code.  Single-threaded callers (the
# CLI, forked pool workers) see the exact pre-thread-local behaviour.


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.budget: Optional[Budget] = None
        self.events: List["CoverageEvent"] = []


_STATE = _ThreadState()


def current_budget() -> Optional[Budget]:
    """The budget installed by the innermost checker (or pool worker)."""
    return _STATE.budget


def install_budget(budget: Optional[Budget]) -> None:
    """Set the ambient budget unconditionally (pool worker startup)."""
    _STATE.budget = budget


@contextmanager
def use_budget(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install *budget* as the ambient budget for the enclosed check.

    A ``None`` budget leaves the ambient one untouched, so nested
    checkers inherit their caller's budget by default.
    """
    if budget is None:
        yield _STATE.budget
        return
    previous = _STATE.budget
    _STATE.budget = budget
    try:
        yield budget
    finally:
        _STATE.budget = previous


# -- coverage events (partial-verdict registry) ---------------------------

COVERAGE_EXHAUSTIVE = "exhaustive"
COVERAGE_ORDER = ("exhaustive", "budget", "deadline", "faulted")


def worst_coverage(*statuses: str) -> str:
    """Combine per-phase coverage statuses (later in order = worse)."""
    return max(statuses, key=COVERAGE_ORDER.index, default=COVERAGE_EXHAUSTIVE)


@dataclass(frozen=True)
class CoverageEvent:
    """One checker's non-exhaustive outcome, for CLI exit codes."""

    phase: str
    coverage: str
    detail: str = ""
    instances_checked: int = 0


def record_coverage(
    phase: str, coverage: str, detail: str = "", instances_checked: int = 0
) -> None:
    """Register a partial verdict (no-op for exhaustive coverage)."""
    if coverage != COVERAGE_EXHAUSTIVE:
        _STATE.events.append(
            CoverageEvent(phase, coverage, detail, instances_checked)
        )


def coverage_events() -> Tuple[CoverageEvent, ...]:
    """This thread's coverage events, in recording order."""
    return tuple(_STATE.events)


def reset_coverage_events() -> None:
    _STATE.events.clear()


@contextmanager
def coverage_scope() -> Iterator[List[CoverageEvent]]:
    """Collect the enclosed block's coverage events in isolation.

    Yields the live list the block appends into; on exit the previous
    registry is restored, so concurrent jobs on different threads (and
    nested scopes on the same thread) never see each other's partial
    verdicts.
    """
    previous = _STATE.events
    _STATE.events = []
    try:
        yield _STATE.events
    finally:
        _STATE.events = previous


# -- tuple-compatible sweep verdicts --------------------------------------


def _rebuild_sweep_verdict(
    ok: bool,
    violators: Any,
    coverage: str,
    instances_checked: int,
    orbits_checked: int = 0,
) -> "SweepVerdict":
    return SweepVerdict(
        ok,
        violators,
        coverage=coverage,
        instances_checked=instances_checked,
        orbits_checked=orbits_checked,
    )


class SweepVerdict(tuple):
    """``(ok, violators)`` plus coverage metadata.

    Unpacks exactly like the 2-tuples the sweep checkers have always
    returned (``ok, violators = sound_on(...)``) while carrying the
    ``coverage`` status and ``instances_checked`` counter of the
    fault-tolerance layer as attributes.

    ``orbits_checked`` is non-zero only for symmetry-reduced sweeps:
    the number of orbit representatives actually examined, while
    ``instances_checked`` counts the universe instances those
    representatives stand for (their summed orbit weights).
    """

    coverage: str
    instances_checked: int
    orbits_checked: int

    def __new__(
        cls,
        ok: bool,
        violators: Any,
        *,
        coverage: str = COVERAGE_EXHAUSTIVE,
        instances_checked: int = 0,
        orbits_checked: int = 0,
    ) -> "SweepVerdict":
        self = super().__new__(cls, (ok, violators))
        self.coverage = coverage
        self.instances_checked = instances_checked
        self.orbits_checked = orbits_checked
        return self

    @property
    def ok(self) -> bool:
        return self[0]

    @property
    def violators(self) -> Any:
        return self[1]

    @property
    def exhaustive(self) -> bool:
        return self.coverage == COVERAGE_EXHAUSTIVE

    def __reduce__(self):
        return (
            _rebuild_sweep_verdict,
            (
                self[0],
                self[1],
                self.coverage,
                self.instances_checked,
                self.orbits_checked,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"SweepVerdict(ok={self[0]!r}, violators={self[1]!r}, "
            f"coverage={self.coverage!r}, "
            f"instances_checked={self.instances_checked}, "
            f"orbits_checked={self.orbits_checked})"
        )


__all__ = [
    "Budget",
    "COVERAGE_EXHAUSTIVE",
    "COVERAGE_ORDER",
    "CoverageEvent",
    "SweepVerdict",
    "coverage_events",
    "coverage_scope",
    "current_budget",
    "install_budget",
    "record_coverage",
    "reset_coverage_events",
    "use_budget",
    "worst_coverage",
]
