"""Content-addressed memoization for chase results and verdicts.

Bounded checkers issue thousands of near-identical chase and
homomorphism calls: ``subset_property`` alone asks for ``chase(I)``
and for ∼M verdicts on the same instance pairs over and over while
sweeping a universe.  The caches here key those calls by *content* —
a canonical form of the instance in which labeled nulls and logic
variables are renamed to position-derived placeholders — so that

* repeated calls on the same instance hit regardless of which object
  identity carries it, and
* isomorphic instances (equal up to null/variable renaming) share one
  entry, while genuinely distinct instances never collide: the
  canonical renaming is a bijection, so equal canonical forms always
  certify an isomorphism (the key is sound by construction; it is
  complete for renamings that preserve the relative order of facts).

Every cache registers itself for the instrumentation layer, which
reports hits, misses, and evictions.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.engine.symmetry import (
    clear_symmetry_memos,
    ground_canonical_form,
    ground_keys_active,
    mapping_permutation_invariant,
    set_symmetry_memo_limit,
)


@dataclass
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, int]:
        """Machine-readable counters under the canonical
        ``<name>_cache_{hits,misses,evictions}`` keys.

        This is the single source of counter names: the human-readable
        render and :meth:`EngineStats.counters
        <repro.engine.instrumentation.EngineStats.counters>` both read
        these keys, so reports can never drift apart on naming (the
        old ad-hoc scheme had ``chase_hits`` in one place and
        ``chase_cache_hits`` in another)."""
        prefix = f"{self.name}_cache"
        return {
            f"{prefix}_hits": self.hits,
            f"{prefix}_misses": self.misses,
            f"{prefix}_evictions": self.evictions,
        }

    def render(self) -> str:
        counters = self.counters()
        prefix = f"{self.name}_cache"
        return (
            f"cache {self.name:<16} {counters[f'{prefix}_hits']:>8} hits  "
            f"{counters[f'{prefix}_misses']:>8} misses  "
            f"({self.hit_rate:>6.1%})  size {self.size}/{self.maxsize}"
        )


_REGISTRY: List["MemoCache"] = []

#: The CLI's --cache-size knob.  ``None`` means "each cache uses its
#: construction-time default"; an int overrides the default for every
#: cache, *including ones constructed after the knob was set* (the
#: kernel backend and future subsystems build MemoCaches lazily).
_CONFIGURED_MAXSIZE: Optional[int] = None


def configured_maxsize(fallback: int) -> int:
    """The engine-wide cache capacity: the --cache-size override when
    one is set, else *fallback* (a cache's construction default)."""
    return fallback if _CONFIGURED_MAXSIZE is None else _CONFIGURED_MAXSIZE


# The on-disk second level (a repro.engine.store.VerdictStore) behind
# every persistent MemoCache.  Held here — not in store.py — so this
# module never imports the store (which imports serialization, which
# imports the core layers built on these caches).
_STORE: Optional[Any] = None

# Distinguishes the pristine state (no install_store call yet — the
# REPRO_STORE environment knob may install a store) from an explicit
# ``install_store(None)``, which pins the caches store-free and must
# not be overridden by the environment (use_store(None)'s
# guaranteed-cold contract).
_STORE_SET: bool = False


def install_store(store: Optional[Any]) -> None:
    """Install (or with ``None`` remove) the ambient on-disk store the
    memo caches consult as their second level.  Either way the choice
    is *pinned*: ``default_store`` will not override it from the
    ``REPRO_STORE`` environment knob (see :func:`uninstall_store`)."""
    global _STORE, _STORE_SET
    _STORE = store
    _STORE_SET = True


def uninstall_store() -> None:
    """Forget any installed store, returning to the pristine state in
    which ``REPRO_STORE`` (via ``default_store``) may install one."""
    global _STORE, _STORE_SET
    _STORE = None
    _STORE_SET = False


def store_installed() -> bool:
    """Has a store (possibly an explicit ``None``) been installed?"""
    return _STORE_SET


def active_store() -> Optional[Any]:
    """The installed on-disk store, or ``None``."""
    return _STORE


def flush_active_store() -> None:
    """Flush the ambient store's buffered writes (no-op without one)."""
    if _STORE is not None:
        _STORE.flush()


class MemoCache:
    """A bounded LRU map with hit/miss/eviction counters.

    When an on-disk store is installed (:func:`install_store`), a
    memory miss falls through to the store: a store hit is promoted
    back into memory and returned as a hit (the memory ``misses``
    counter still advances; the store keeps its own counters), and
    every ``put`` writes through to the store.  Only caches the store
    has a value codec for persist; others are untouched.
    """

    def __init__(self, name: str, maxsize: int = 65_536) -> None:
        self.name = name
        self.default_maxsize = maxsize
        self.maxsize = configured_maxsize(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _REGISTRY.append(self)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            if _STORE is not None:
                hit, value = _STORE.load(self.name, key)
                if hit:
                    self._insert(key, value)
                    return True, value
            return False, None
        self._data.move_to_end(key)
        self.hits += 1
        return True, value

    def _insert(self, key: Hashable, value: Any) -> None:
        """Memory-only insert (promotion of a store hit: no
        write-through, the entry is already on disk)."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def put(self, key: Hashable, value: Any) -> None:
        self._insert(key, value)
        if _STORE is not None:
            _STORE.save(self.name, key, value)

    def memoize(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            self.name,
            self.hits,
            self.misses,
            self.evictions,
            len(self._data),
            self.maxsize,
        )


def all_cache_stats() -> List[CacheStats]:
    return [cache.stats() for cache in _REGISTRY]


_RESET_HOOKS: List[Callable[[], None]] = []


def register_reset_hook(hook: Callable[[], None]) -> None:
    """Run *hook* on every :func:`reset_all_caches` call.

    For engine state that memoizes outside a :class:`MemoCache` (the
    kernel backend's per-instance memos, for example) and must drop
    with the caches so cold benchmark runs are genuinely cold.
    """
    _RESET_HOOKS.append(hook)


def reset_all_caches() -> None:
    for cache in _REGISTRY:
        cache.clear()
    clear_symmetry_memos()
    for hook in _RESET_HOOKS:
        hook()


def resize_caches(maxsize: Optional[int]) -> None:
    """Set every engine cache's capacity (the CLI's --cache-size knob).

    The size also becomes the configured default for caches built
    *afterwards* (:func:`configured_maxsize`) and is pushed into the
    symmetry layer's canonical-form memos, so the knob applies
    uniformly instead of only to the caches that happened to exist
    when the CLI parsed its flags.  ``None`` clears the override:
    existing caches return to their construction-time defaults.
    """
    global _CONFIGURED_MAXSIZE
    _CONFIGURED_MAXSIZE = maxsize
    set_symmetry_memo_limit(maxsize)
    for cache in _REGISTRY:
        cache.maxsize = cache.default_maxsize if maxsize is None else maxsize
        while len(cache._data) > cache.maxsize:
            cache._data.popitem(last=False)
            cache.evictions += 1


# -- canonical forms ------------------------------------------------------

_CANON_PREFIX = "__c"


def canonicalize_instance(
    instance: Instance,
) -> Tuple[Instance, Dict[Term, Term]]:
    """Rename nulls and variables of *instance* to canonical placeholders.

    Facts are ordered by their constant *shape* (relation plus the
    pattern of rigid constants), and mappable terms are numbered by
    first occurrence in that order.  Returns the canonical instance
    and the forward renaming; for ground instances the renaming is
    empty and the instance is returned unchanged.
    """
    if instance.is_ground():
        return instance, {}

    def shape(fact: Atom) -> Tuple:
        pattern = tuple(
            (0, arg.sort_key()) if isinstance(arg, Constant) else (1,)
            for arg in fact.args
        )
        return (fact.relation, pattern, fact.sort_key())

    forward: Dict[Term, Term] = {}
    for fact in sorted(instance.facts, key=shape):
        for arg in fact.args:
            if isinstance(arg, Constant) or arg in forward:
                continue
            label = f"{_CANON_PREFIX}{len(forward)}"
            forward[arg] = (
                Null(label) if isinstance(arg, Null) else Variable(label)
            )
    return instance.substitute(forward), forward


def canonical_key(instance: Instance) -> FrozenSet[Atom]:
    """The content-addressed key of *instance* (its canonical fact set)."""
    canonical, _ = canonicalize_instance(instance)
    return canonical.facts


# -- mapping keys ---------------------------------------------------------

_MAPPING_KEYS: "weakref.WeakKeyDictionary[Any, Hashable]" = (
    weakref.WeakKeyDictionary()
)


def mapping_key(mapping: Any) -> Hashable:
    """A content key for a schema mapping: canonical dependencies plus
    the target relations (which bound the chase output restriction).

    Staged pipelines (:class:`repro.core.mapping.StagedMapping`) key by
    their stages' content keys instead — they carry no dependencies of
    their own, and two pipelines over content-equal stages must share
    chase/verdict cache entries."""
    key = _MAPPING_KEYS.get(mapping)
    if key is None:
        stages = getattr(mapping, "stages", None)
        if stages:
            key = (
                "staged",
                tuple(mapping_key(stage) for stage in stages),
                tuple(mapping.target.relations),
            )
        else:
            key = (
                tuple(dep.canonical_form() for dep in mapping.dependencies),
                tuple(mapping.target.relations),
            )
        _MAPPING_KEYS[mapping] = key
    return key


_MAPPING_INVARIANT: "weakref.WeakKeyDictionary[Any, bool]" = (
    weakref.WeakKeyDictionary()
)


def symmetry_keys_apply(mapping: Any) -> bool:
    """Should this call key ground instances by constant-canonical form?

    True only when an orbit-mode sweep installed the ground-key
    context *and* the mapping is permutation-invariant (no literal
    constants in its dependencies) — the condition under which
    ``chase(π(I)) = π(chase(I))`` holds for every constant bijection π.
    """
    if not ground_keys_active():
        return False
    invariant = _MAPPING_INVARIANT.get(mapping)
    if invariant is None:
        invariant = mapping_permutation_invariant(mapping)
        _MAPPING_INVARIANT[mapping] = invariant
    return invariant


# -- the chase cache ------------------------------------------------------

chase_cache = MemoCache("chase", maxsize=16_384)
verdict_cache = MemoCache("verdict", maxsize=262_144)


def _translate_back(
    cached: Instance, instance: Instance, forward: Dict[Term, Term]
) -> Instance:
    """Rename a cached chase result to fit the original *instance*.

    Canonical placeholders map back through the inverse of *forward*;
    fresh nulls invented by the chase are renamed apart from the
    original instance's null and variable names when they clash.
    """
    substitution: Dict[Term, Term] = {
        canonical: original for original, canonical in forward.items()
    }
    taken = {
        term.name
        for term in instance.active_domain()
        if isinstance(term, (Null, Variable))
    }
    counter = 0
    for null in sorted(cached.nulls()):
        if null in substitution:
            continue
        if null.name in taken:
            while f"N{counter}" in taken:
                counter += 1
            fresh = Null(f"N{counter}")
            taken.add(fresh.name)
            substitution[null] = fresh
        else:
            taken.add(null.name)
    return cached.substitute(substitution)


def cached_chase_result(
    mapping: Any,
    instance: Instance,
    compute: Callable[[Instance], Instance],
) -> Instance:
    """Memoize ``compute(instance)`` under the canonical content key.

    *compute* must be a pure function of the instance (given the
    mapping) returning an instance whose nulls either come from the
    input or are chase-fresh.  On an isomorphic hit the cached result
    is renamed back onto the caller's terms, so the returned instance
    is always one *compute* could have produced directly.

    Under an orbit-mode sweep (:func:`symmetry_keys_apply`), ground
    instances additionally key by their canonical form under constant
    permutation, so the chases of *every* member of an instance orbit
    share one entry.  The caching is two-level: the exact fact set
    first (so repeat calls skip canonicalization entirely), then the
    canonical form; on a canonical hit the cached result's placeholder
    constants are renamed back through the canonical bijection once
    and the translation stored under the exact key.
    """
    if instance.is_ground() and symmetry_keys_apply(mapping):
        exact_key = (mapping_key(mapping), instance.facts)
        hit, cached = chase_cache.get(exact_key)
        if hit:
            return cached
        form = ground_canonical_form(instance)
        sym_key = ("sym", mapping_key(mapping), form.key())
        hit, canonical_result = chase_cache.get(sym_key)
        if not hit:
            canonical_result = compute(form.canonical)
            chase_cache.put(sym_key, canonical_result)
        result = (
            canonical_result
            if not form.forward
            else _translate_back(canonical_result, instance, form.forward)
        )
        chase_cache.put(exact_key, result)
        return result
    canonical, forward = canonicalize_instance(instance)
    key = (mapping_key(mapping), canonical.facts)
    hit, cached = chase_cache.get(key)
    if not hit:
        cached = compute(canonical)
        chase_cache.put(key, cached)
    if not forward:
        return cached
    return _translate_back(cached, instance, forward)
