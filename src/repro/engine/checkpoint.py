"""Checkpoint journal: resumable, shardable sweeps over instance universes.

Every sweep the checkers run is a deterministic fold over an ordered
universe, so progress is fully described by *how far the fold got*.
A :class:`CheckpointJournal` persists, per check key:

* ``verified_upto`` — the number of leading universe items whose
  verdicts are final;
* ``ok`` and ``violations`` — the verdict accumulated over that
  prefix (violator *instances* are not serialized, only their count;
  a resumed report's violator tuple therefore lists post-resume
  violators only, which the report's ``resumed_from`` note records);
* ``total`` and ``fingerprint`` — sanity guards: a journal entry is
  only honoured when the sweep being resumed has the same length and
  derivation key (the fingerprint digests the sweep's actual content
  — mapping dependencies, universe, mode), otherwise it is discarded
  and the sweep restarts.  A journal from a different mapping or
  universe that happens to have the same length can never be
  silently honoured.

The journal file is JSON, rewritten atomically (temp file + rename)
every ``interval`` recorded items and at completion/interruption, so
a SIGKILL of the whole process loses at most one interval of work.
Flushing is best-effort: a failed rewrite never breaks the sweep, but
it is *counted* (:func:`dropped_flush_count`, surfaced by
``--engine-stats``) and its temp file is cleaned up.

Integrity: every entry is written with a ``sig`` field — a SHA-256
signature over the entry's content, its key, and the engine version
(:func:`entry_signature`) — and the file carries a ``__meta__`` record
with a whole-file checksum.  On reload, a torn or truncated file, a
mismatched file checksum, or an entry whose signature fails (bit flip,
hand edit, another engine version) is *dropped and counted*
(:func:`corrupt_entry_count`, ``checkpoint_corrupt_entries`` in
``--engine-stats``): the sweep restarts that prefix instead of
resuming onto corrupt progress.  ``python -m repro.cli fsck
--checkpoint PATH`` audits and repairs offline.

Sharded sweeps extend the journal with per-shard entries
(:func:`shard_entry_key`) and *lease records*: sidecar lock files
through which cooperating processes claim disjoint shards
(:meth:`CheckpointJournal.claim_shard`).  A lease expires after its
TTL, so the shard of a straggler or a dead worker can be *stolen* and
re-run by whoever notices — re-running is safe because shard sweeps
are deterministic and their chase/verdict traffic is deduplicated by
the content-addressed store.

The CLI wires this up through ``REPRO_CHECKPOINT`` (journal path) and
``REPRO_RESUME`` (honour previous entries instead of restarting);
checkers pick the ambient journal up via :func:`default_journal`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.engine import faults

#: Reserved journal key for the file-level integrity record; never a
#: sweep entry.  Readers (including the service's journal_progress)
#: must skip it.
JOURNAL_META_KEY = "__meta__"


def entry_signature(key: str, entry: Dict[str, Any]) -> str:
    """The per-entry integrity signature stored in ``entry["sig"]``.

    Covers the entry's content (minus the signature itself), the
    journal key it is filed under, and the engine version — so a
    flipped bit, a transplanted entry, or progress recorded by an
    incompatible engine all fail verification and the prefix restarts.
    """
    from repro.engine.store import ENGINE_VERSION

    material = json.dumps(
        {k: v for k, v in entry.items() if k != "sig"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(
        f"{key}\x1f{material}\x1f{ENGINE_VERSION}".encode()
    ).hexdigest()


def state_checksum(state: Dict[str, Dict[str, Any]]) -> str:
    """Whole-file checksum over the journal's sweep entries (the
    ``__meta__`` record is excluded — it carries this value)."""
    material = json.dumps(
        {k: v for k, v in state.items() if k != JOURNAL_META_KEY},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def sweep_key(*parts: Any) -> str:
    """A stable content key for one sweep (checker name, mapping
    names, universe size, ...).  Stable across processes and runs —
    no reliance on randomized ``hash()``."""
    digest = hashlib.sha1("\x1f".join(str(part) for part in parts).encode())
    return digest.hexdigest()[:16]


def shard_entry_key(base_key: str, shard_id: int, shards: int) -> str:
    """The journal key of one shard of a sharded sweep."""
    return f"{base_key}:s{shard_id}of{shards}"


#: Best-effort journal flushes that failed (and were dropped) in this
#: process.  Surfaced by ``--engine-stats`` so silently-failing
#: checkpointing is visible instead of discovered at resume time.
_DROPPED_FLUSHES = 0


def dropped_flush_count() -> int:
    return _DROPPED_FLUSHES


def reset_dropped_flush_count() -> None:
    global _DROPPED_FLUSHES
    _DROPPED_FLUSHES = 0


#: Journal entries (or whole files) dropped on reload because their
#: integrity signature / checksum failed or the JSON was torn.
#: Surfaced by ``--engine-stats`` as ``checkpoint_corrupt_entries``.
_CORRUPT_ENTRIES = 0


def corrupt_entry_count() -> int:
    return _CORRUPT_ENTRIES


def reset_corrupt_entry_count() -> None:
    global _CORRUPT_ENTRIES
    _CORRUPT_ENTRIES = 0


#: Default shard-lease time to live.  A worker that holds a shard
#: longer than this without completing it is treated as a straggler
#: and its shard becomes stealable.
DEFAULT_LEASE_TTL = 300.0


class CheckpointJournal:
    """Records verified prefixes of deterministic sweeps (see module
    docstring)."""

    def __init__(
        self, path: str, *, interval: int = 64, resume: bool = True
    ) -> None:
        self.path = path
        self.interval = max(1, int(interval))
        self.resume = resume
        self._state: Dict[str, Dict[str, Any]] = {}
        self._pending = 0
        if resume and os.path.exists(path):
            self.reload()

    def reload(self) -> None:
        """Re-read the journal file (peers may have flushed shard
        entries since we loaded).

        A missing file reads as empty; a torn/truncated file, a failed
        whole-file checksum, or an entry with a bad signature is
        *dropped and counted* — resuming onto corrupt progress would
        risk trusting a prefix that was never verified."""
        global _CORRUPT_ENTRIES
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return
        try:
            loaded = json.loads(raw)
        except ValueError:
            # Torn or truncated mid-write: nothing on disk is trusted.
            _CORRUPT_ENTRIES += 1
            return
        if not isinstance(loaded, dict):
            _CORRUPT_ENTRIES += 1
            return
        meta = loaded.pop(JOURNAL_META_KEY, None)
        if (
            isinstance(meta, dict)
            and meta.get("checksum") is not None
            and meta["checksum"] != state_checksum(loaded)
        ):
            # The file-level checksum catches edits that keep every
            # entry internally consistent (e.g. a deleted entry).
            _CORRUPT_ENTRIES += 1
            return
        fresh: Dict[str, Dict[str, Any]] = {}
        for key, entry in loaded.items():
            if not isinstance(entry, dict):
                continue
            if entry.get("sig") != entry_signature(key, entry):
                _CORRUPT_ENTRIES += 1
                continue
            fresh[key] = entry
        # Our own unflushed records win over what is on disk.
        fresh.update(self._state)
        self._state = fresh

    # -- resume ------------------------------------------------------

    def resume_index(
        self, key: str, total: int, fingerprint: Optional[str] = None
    ) -> int:
        """How many leading items of this sweep are already verified.

        An entry is honoured only when both sanity guards match: the
        sweep length *and* (when the caller supplies one) the sweep
        fingerprint.  An entry without a fingerprint never matches a
        fingerprinted resume — journals written before fingerprinting
        restart rather than risk resuming the wrong sweep.
        """
        entry = self._state.get(key)
        if not self.resume or entry is None:
            return 0
        if entry.get("total") != total:
            return 0  # the universe changed; the entry is stale
        if fingerprint is not None and entry.get("fingerprint") != fingerprint:
            return 0  # same length, different sweep: never honour it
        return min(int(entry.get("verified_upto", 0)), total)

    def prior_verdict(self, key: str) -> Dict[str, Any]:
        """The accumulated verdict over the resumed prefix."""
        entry = self._state.get(key, {})
        return {
            "ok": bool(entry.get("ok", True)),
            "violations": int(entry.get("violations", 0)),
        }

    def entry_complete(
        self, key: str, total: int, fingerprint: Optional[str] = None
    ) -> bool:
        """Is this sweep recorded as run to completion (with matching
        sanity guards)?"""
        entry = self._state.get(key)
        if entry is None or not entry.get("complete"):
            return False
        if entry.get("total") != total:
            return False
        if fingerprint is not None and entry.get("fingerprint") != fingerprint:
            return False
        return True

    # -- record ------------------------------------------------------

    def record(
        self,
        key: str,
        *,
        verified_upto: int,
        total: int,
        ok: bool,
        violations: int,
        fingerprint: Optional[str] = None,
        flush: bool = False,
    ) -> None:
        """Update a sweep's verified prefix; persists every
        ``interval`` calls or when *flush* is set."""
        entry = {
            "verified_upto": verified_upto,
            "total": total,
            "ok": ok,
            "violations": violations,
            "complete": verified_upto >= total,
            "fingerprint": fingerprint,
        }
        entry["sig"] = entry_signature(key, entry)
        self._state[key] = entry
        self._pending += 1
        if flush or self._pending >= self.interval:
            self.flush()

    def complete(
        self,
        key: str,
        *,
        total: int,
        ok: bool,
        violations: int,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.record(
            key,
            verified_upto=total,
            total=total,
            ok=ok,
            violations=violations,
            fingerprint=fingerprint,
            flush=True,
        )

    def flush(self) -> None:
        """Atomically rewrite the journal file.

        Best-effort by design — checkpointing must never break the
        sweep — but a failed flush is counted and its temp file
        removed, so repeated failures are visible in --engine-stats
        instead of silently littering the journal directory.
        """
        global _DROPPED_FLUSHES
        self._pending = 0
        if faults.fire("journal.flush") is not None:
            _DROPPED_FLUSHES += 1
            return
        from repro.engine.store import ENGINE_VERSION

        payload: Dict[str, Any] = dict(self._state)
        payload[JOURNAL_META_KEY] = {
            "engine": ENGINE_VERSION,
            "checksum": state_checksum(self._state),
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        handle = None
        try:
            handle = tempfile.NamedTemporaryFile(
                "w",
                dir=directory,
                prefix=".repro-ckpt-",
                suffix=".tmp",
                delete=False,
                encoding="utf-8",
            )
            with handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(handle.name, self.path)
        except OSError:
            _DROPPED_FLUSHES += 1
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass

    # -- shard leases ------------------------------------------------

    def _lease_path(self, base_key: str, shard_id: int, shards: int) -> str:
        return f"{self.path}.lease-{sweep_key(base_key)}-{shard_id}of{shards}"

    def claim_shard(
        self,
        base_key: str,
        shard_id: int,
        shards: int,
        *,
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> bool:
        """Try to claim one shard of a sharded sweep.

        A claim is an exclusive-create of the shard's lease file (the
        atomic primitive every shared filesystem provides).  It
        succeeds when no lease exists, when we already hold the lease,
        or when the incumbent's lease has expired — the work-stealing
        path: the shard of a straggler or dead worker is re-claimed by
        whoever gets here first.
        """
        path = self._lease_path(base_key, shard_id, shards)
        payload = json.dumps(
            {"owner": owner, "expires": time.time() + max(0.0, ttl)}
        )
        for _ in range(2):  # initial attempt + one retry after a steal
            try:
                descriptor = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                lease = self._read_lease(path)
                if lease is not None and lease.get("owner") == owner:
                    return True  # re-entrant: we already hold it
                if lease is not None and lease.get("expires", 0) > time.time():
                    return False  # live lease held by a peer
                if not self._steal_lease(path, owner):
                    return False
                continue  # retry the exclusive create
            except OSError:
                return False
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                return True
            except OSError:
                return False
        return False

    def _steal_lease(self, path: str, owner: str) -> bool:
        """Remove an expired lease so the exclusive create can retry.

        A blind ``unlink`` here would be a TOCTOU hole: between reading
        the expired lease and unlinking it, a peer can complete its own
        steal and write a fresh live lease, which the unlink would then
        destroy — two workers end up holding the same shard.  Instead
        the lease is renamed aside (atomic: exactly one racing stealer
        wins) and its payload re-checked *after* the rename; a lease
        that turned live in the window is put back and the steal lost.
        """
        aside = f"{path}.steal-{sweep_key(owner)}"
        try:
            os.replace(path, aside)
        except OSError:
            return False  # a racing stealer won the rename
        stolen = self._read_lease(aside)
        if (
            stolen is not None
            and stolen.get("owner") != owner
            and stolen.get("expires", 0) > time.time()
        ):
            # The lease changed hands between our read and the rename:
            # it is live and a peer's.  Restore it and lose the steal.
            try:
                os.replace(aside, path)
            except OSError:
                pass
            return False
        try:
            os.unlink(aside)
        except OSError:
            pass
        return True

    def release_shard(
        self, base_key: str, shard_id: int, shards: int, *, owner: str
    ) -> None:
        """Drop our lease on a shard (best effort; only our own)."""
        path = self._lease_path(base_key, shard_id, shards)
        lease = self._read_lease(path)
        if lease is not None and lease.get("owner") != owner:
            return
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def _read_lease(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lease = json.load(handle)
        except (OSError, ValueError):
            return None
        return lease if isinstance(lease, dict) else None

    def shard_states(
        self,
        base_key: str,
        shards: int,
        total_of: Any = None,
        fingerprint: Optional[str] = None,
    ) -> List[str]:
        """Per-shard status: ``"complete"`` | ``"leased"`` | ``"open"``."""
        states = []
        for shard_id in range(shards):
            key = shard_entry_key(base_key, shard_id, shards)
            entry = self._state.get(key)
            if entry is not None and entry.get("complete") and (
                fingerprint is None or entry.get("fingerprint") == fingerprint
            ):
                states.append("complete")
                continue
            lease = self._read_lease(
                self._lease_path(base_key, shard_id, shards)
            )
            if lease is not None and lease.get("expires", 0) > time.time():
                states.append("leased")
            else:
                states.append("open")
        return states


def claim_shards(
    journal: Optional[CheckpointJournal],
    base_key: str,
    shards: int,
    *,
    owner: str,
    fingerprint: Optional[str] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.05,
) -> Iterator[int]:
    """Yield the shard ids this worker should run, with work-stealing.

    Without a journal every shard is ours.  With one, the claim loop
    keeps going until every shard is *complete* in the journal:
    unclaimed shards are claimed and yielded; shards leased by live
    peers are left alone (their owners' journal entries count them);
    a lease that expires before its shard completes — a straggler or
    a dead worker — is stolen and the shard re-run here.  The caller
    must mark each yielded shard complete in the journal (the sharded
    checkers do, via their per-shard entries) before the loop can
    terminate.

    A shard is yielded to this worker **at most once**.  A shard sweep
    that trips a budget/deadline or loses a worker records an
    *incomplete* journal entry and returns a partial report; since the
    exhausted budget is shared across this worker's shard runs,
    re-claiming such a shard could never advance it.  Once every
    outstanding shard has already been tried here, the loop returns
    instead of spinning, and the caller's merge reports partial
    coverage for the unfinished shards — exactly like the serial path.
    """
    if journal is None:
        yield from range(shards)
        return
    yielded: set = set()
    while True:
        journal.reload()
        states = journal.shard_states(base_key, shards, fingerprint=fingerprint)
        if all(state == "complete" for state in states):
            return
        progressed = False
        stalled = False
        for shard_id, state in enumerate(states):
            if state == "complete":
                continue
            if shard_id in yielded:
                # We already ran this shard and its entry never reached
                # complete (partial coverage); re-running makes no
                # progress against the same exhausted budget.
                stalled = True
                continue
            if journal.claim_shard(
                base_key, shard_id, shards, owner=owner, ttl=ttl
            ):
                progressed = True
                yielded.add(shard_id)
                try:
                    yield shard_id
                finally:
                    journal.release_shard(
                        base_key, shard_id, shards, owner=owner
                    )
        if progressed:
            continue
        if stalled:
            # Every shard still open is one this worker already tried
            # and could not finish: return what completed.
            return
        # Everything unfinished is leased to live peers; wait for
        # them to finish (their entries complete) or for their
        # leases to expire (we steal).
        time.sleep(poll_interval)


# -- the ambient journal --------------------------------------------------

_DEFAULT: Optional[CheckpointJournal] = None
_DEFAULT_PATH: Optional[str] = None


def default_journal() -> Optional[CheckpointJournal]:
    """The journal named by ``REPRO_CHECKPOINT``, honouring previous
    entries only when ``REPRO_RESUME`` is truthy; None when unset."""
    global _DEFAULT, _DEFAULT_PATH
    path = os.environ.get("REPRO_CHECKPOINT")
    if not path:
        _DEFAULT, _DEFAULT_PATH = None, None
        return None
    resume = os.environ.get("REPRO_RESUME", "") not in ("", "0", "false")
    if _DEFAULT is None or _DEFAULT_PATH != path or _DEFAULT.resume != resume:
        _DEFAULT = CheckpointJournal(path, resume=resume)
        _DEFAULT_PATH = path
    return _DEFAULT


__all__ = [
    "CheckpointJournal",
    "DEFAULT_LEASE_TTL",
    "JOURNAL_META_KEY",
    "claim_shards",
    "corrupt_entry_count",
    "default_journal",
    "dropped_flush_count",
    "entry_signature",
    "reset_corrupt_entry_count",
    "reset_dropped_flush_count",
    "shard_entry_key",
    "state_checksum",
    "sweep_key",
]
