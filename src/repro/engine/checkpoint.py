"""Checkpoint journal: resumable sweeps over instance universes.

Every sweep the checkers run is a deterministic fold over an ordered
universe, so progress is fully described by *how far the fold got*.
A :class:`CheckpointJournal` persists, per check key:

* ``verified_upto`` — the number of leading universe items whose
  verdicts are final;
* ``ok`` and ``violations`` — the verdict accumulated over that
  prefix (violator *instances* are not serialized, only their count;
  a resumed report's violator tuple therefore lists post-resume
  violators only, which the report's ``resumed_from`` note records);
* ``total`` and ``fingerprint`` — sanity guards: a journal entry is
  only honoured when the sweep being resumed has the same length and
  derivation key, otherwise it is discarded and the sweep restarts.

The journal file is JSON, rewritten atomically (temp file + rename)
every ``interval`` recorded items and at completion/interruption, so
a SIGKILL of the whole process loses at most one interval of work.

The CLI wires this up through ``REPRO_CHECKPOINT`` (journal path) and
``REPRO_RESUME`` (honour previous entries instead of restarting);
checkers pick the ambient journal up via :func:`default_journal`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional


def sweep_key(*parts: Any) -> str:
    """A stable content key for one sweep (checker name, mapping
    names, universe size, ...).  Stable across processes and runs —
    no reliance on randomized ``hash()``."""
    digest = hashlib.sha1("\x1f".join(str(part) for part in parts).encode())
    return digest.hexdigest()[:16]


class CheckpointJournal:
    """Records verified prefixes of deterministic sweeps (see module
    docstring)."""

    def __init__(
        self, path: str, *, interval: int = 64, resume: bool = True
    ) -> None:
        self.path = path
        self.interval = max(1, int(interval))
        self.resume = resume
        self._state: Dict[str, Dict[str, Any]] = {}
        self._pending = 0
        if resume and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    loaded = json.load(handle)
                if isinstance(loaded, dict):
                    self._state = {
                        key: entry
                        for key, entry in loaded.items()
                        if isinstance(entry, dict)
                    }
            except (OSError, ValueError):
                self._state = {}

    # -- resume ------------------------------------------------------

    def resume_index(self, key: str, total: int) -> int:
        """How many leading items of this sweep are already verified."""
        entry = self._state.get(key)
        if not self.resume or entry is None:
            return 0
        if entry.get("total") != total:
            return 0  # the universe changed; the entry is stale
        return min(int(entry.get("verified_upto", 0)), total)

    def prior_verdict(self, key: str) -> Dict[str, Any]:
        """The accumulated verdict over the resumed prefix."""
        entry = self._state.get(key, {})
        return {
            "ok": bool(entry.get("ok", True)),
            "violations": int(entry.get("violations", 0)),
        }

    # -- record ------------------------------------------------------

    def record(
        self,
        key: str,
        *,
        verified_upto: int,
        total: int,
        ok: bool,
        violations: int,
        flush: bool = False,
    ) -> None:
        """Update a sweep's verified prefix; persists every
        ``interval`` calls or when *flush* is set."""
        self._state[key] = {
            "verified_upto": verified_upto,
            "total": total,
            "ok": ok,
            "violations": violations,
            "complete": verified_upto >= total,
        }
        self._pending += 1
        if flush or self._pending >= self.interval:
            self.flush()

    def complete(
        self, key: str, *, total: int, ok: bool, violations: int
    ) -> None:
        self.record(
            key,
            verified_upto=total,
            total=total,
            ok=ok,
            violations=violations,
            flush=True,
        )

    def flush(self) -> None:
        """Atomically rewrite the journal file."""
        self._pending = 0
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        try:
            handle = tempfile.NamedTemporaryFile(
                "w",
                dir=directory,
                prefix=".repro-ckpt-",
                suffix=".tmp",
                delete=False,
                encoding="utf-8",
            )
            with handle:
                json.dump(self._state, handle, indent=1, sort_keys=True)
            os.replace(handle.name, self.path)
        except OSError:
            pass  # checkpointing is best-effort; never break the sweep


# -- the ambient journal --------------------------------------------------

_DEFAULT: Optional[CheckpointJournal] = None
_DEFAULT_PATH: Optional[str] = None


def default_journal() -> Optional[CheckpointJournal]:
    """The journal named by ``REPRO_CHECKPOINT``, honouring previous
    entries only when ``REPRO_RESUME`` is truthy; None when unset."""
    global _DEFAULT, _DEFAULT_PATH
    path = os.environ.get("REPRO_CHECKPOINT")
    if not path:
        _DEFAULT, _DEFAULT_PATH = None, None
        return None
    resume = os.environ.get("REPRO_RESUME", "") not in ("", "0", "false")
    if _DEFAULT is None or _DEFAULT_PATH != path or _DEFAULT.resume != resume:
        _DEFAULT = CheckpointJournal(path, resume=resume)
        _DEFAULT_PATH = path
    return _DEFAULT


__all__ = ["CheckpointJournal", "default_journal", "sweep_key"]
