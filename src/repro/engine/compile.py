"""Premise compilation: conjunctive patterns as ordered array join plans.

The object-backend homomorphism search re-derives the same facts about
a premise on every call: which terms are mappable, where each occurs,
how the atoms should be ordered.  A :class:`CompiledPremise` does that
analysis exactly once per distinct ``(atoms, constant_vars,
inequalities)`` pattern and lowers it to integer form:

* every mappable term (null or logic variable) becomes a dense *slot*
  index, so a partial assignment is a flat ``list[int]`` (``-1`` =
  unbound) instead of a term-keyed dict;
* every atom argument becomes an op — ``(position, is_const,
  constant_id_or_slot)`` — over the engine-wide intern table of
  :mod:`repro.engine.kernel`;
* ``Constant(x)`` conjuncts and inequalities become per-slot check
  lists evaluated at bind time;
* the greedy join order (most-bound first, then smallest relation,
  then lexicographic — byte-for-byte the order
  :func:`repro.chase.homomorphism._order_atoms` produces) is computed
  per ``(relation extents, bound-slot mask)`` signature and cached, so
  repeated searches against same-shaped targets skip the ordering
  entirely.

Compilation touches no instance data: plans bind to a concrete
:class:`~repro.engine.kernel.KernelInstance` only at search time,
which is what lets one compiled premise serve every target in a sweep.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.terms import Constant, Term, Variable


class CompiledAtom:
    """One premise atom lowered to interned ops.

    ``ops`` holds one ``(position, is_const, value)`` triple per
    argument: a rigid constant's intern id, or the slot of a mappable
    term.  ``mappable_occurrences`` lists the slot of every mappable
    argument *with repetitions, in argument order* — the exact
    sequence the object backend's ordering heuristic walks.
    """

    __slots__ = ("relation", "arity", "ops", "mappable_occurrences")

    def __init__(
        self,
        relation: str,
        arity: int,
        ops: Tuple[Tuple[int, bool, int], ...],
        mappable_occurrences: Tuple[int, ...],
    ) -> None:
        self.relation = relation
        self.arity = arity
        self.ops = ops
        self.mappable_occurrences = mappable_occurrences


class CompiledPremise:
    """A conjunctive pattern compiled to slots, ops, and plan cache."""

    __slots__ = (
        "atoms",
        "catoms",
        "keys",
        "slots",
        "slot_terms",
        "nslots",
        "occurrences",
        "const_slots",
        "const_slot_set",
        "ineq_pairs",
        "ineq_of",
        "_plans",
    )

    def __init__(
        self,
        atoms: Tuple[Atom, ...],
        constant_vars: FrozenSet[Variable],
        inequalities: FrozenSet[Tuple[Variable, Variable]],
        intern,
    ) -> None:
        # Atoms sorted exactly as the object backend's `remaining`.
        self.atoms: Tuple[Atom, ...] = tuple(sorted(atoms, key=Atom.sort_key))
        self.keys = [atom.sort_key() for atom in self.atoms]

        # Slot allocation: first occurrence in sorted-atom order, with
        # extra slots for constraint variables that never occur in an
        # atom (reachable only through `fixed`).
        slots: Dict[Term, int] = {}
        for atom in self.atoms:
            for arg in atom.args:
                if not isinstance(arg, Constant) and arg not in slots:
                    slots[arg] = len(slots)
        for variable in sorted(constant_vars):
            if variable not in slots:
                slots[variable] = len(slots)
        for left, right in sorted(inequalities):
            for variable in (left, right):
                if variable not in slots:
                    slots[variable] = len(slots)
        self.slots = slots
        self.slot_terms: List[Term] = [None] * len(slots)  # type: ignore[list-item]
        for term, slot in slots.items():
            self.slot_terms[slot] = term
        self.nslots = len(slots)

        catoms: List[CompiledAtom] = []
        occurrences: Dict[int, List[int]] = {}
        for index, atom in enumerate(self.atoms):
            ops: List[Tuple[int, bool, int]] = []
            mappable: List[int] = []
            for position, arg in enumerate(atom.args):
                if isinstance(arg, Constant):
                    ops.append((position, True, intern(arg)))
                else:
                    slot = slots[arg]
                    ops.append((position, False, slot))
                    mappable.append(slot)
                    occurrences.setdefault(slot, []).append(index)
            catoms.append(
                CompiledAtom(
                    atom.relation, atom.arity, tuple(ops), tuple(mappable)
                )
            )
        self.catoms = catoms
        self.occurrences = occurrences

        self.const_slots = tuple(slots[v] for v in sorted(constant_vars))
        self.const_slot_set = frozenset(self.const_slots)
        self.ineq_pairs = tuple(
            (slots[left], slots[right]) for left, right in sorted(inequalities)
        )
        ineq_of: Dict[int, List[int]] = {}
        for left_slot, right_slot in self.ineq_pairs:
            ineq_of.setdefault(left_slot, []).append(right_slot)
            ineq_of.setdefault(right_slot, []).append(left_slot)
        self.ineq_of: Dict[int, Tuple[int, ...]] = {
            slot: tuple(others) for slot, others in ineq_of.items()
        }
        self._plans: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}

    def plan(
        self, extents: Tuple[int, ...], bound_mask: int
    ) -> Tuple[int, ...]:
        """The join order (indices into ``catoms``) for targets with
        the given relation *extents* and pre-bound slot mask.

        Replicates :func:`repro.chase.homomorphism._order_atoms`
        exactly — greedy minimum of ``(unbound count, extent,
        sort key)`` with incremental unbound maintenance — so the
        kernel search visits atoms in the object backend's order.
        """
        cache_key = (extents, bound_mask)
        cached = self._plans.get(cache_key)
        if cached is not None:
            return cached
        count = len(self.catoms)
        bound = bound_mask
        unbound_counts = []
        for catom in self.catoms:
            unbound = 0
            for slot in catom.mappable_occurrences:
                if not (bound >> slot) & 1:
                    unbound += 1
            unbound_counts.append(unbound)
        alive = [True] * count
        keys = self.keys
        ordered: List[int] = []
        for _ in range(count):
            best = min(
                (i for i in range(count) if alive[i]),
                key=lambda i: (unbound_counts[i], extents[i], keys[i]),
            )
            alive[best] = False
            ordered.append(best)
            for slot in self.catoms[best].mappable_occurrences:
                if not (bound >> slot) & 1:
                    bound |= 1 << slot
                    for position in self.occurrences[slot]:
                        if alive[position]:
                            unbound_counts[position] -= 1
        plan = tuple(ordered)
        self._plans[cache_key] = plan
        return plan

    def extents_for(self, rows: Dict[str, Sequence]) -> Tuple[int, ...]:
        """Per-atom relation extents in a concrete target."""
        return tuple(
            len(rows.get(catom.relation, ())) for catom in self.catoms
        )


def compile_premise(
    atoms: Sequence[Atom],
    constant_vars: FrozenSet[Variable],
    inequalities: FrozenSet[Tuple[Variable, Variable]],
    intern,
) -> CompiledPremise:
    """Compile one conjunctive pattern (no memoization here — the
    kernel layer owns the cache so stats and resets stay unified)."""
    return CompiledPremise(
        tuple(atoms), frozenset(constant_vars), frozenset(inequalities), intern
    )
