"""The unified fault-injection plane.

Fault tolerance you cannot rehearse is fault tolerance you do not
have.  Earlier PRs grew three ad-hoc injection knobs in three parsers
(``REPRO_FAULT_KILL_TASK`` / ``REPRO_FAULT_DELAY_TASK`` in
:mod:`repro.engine.parallel`, ``REPRO_FAULT_EXPIRE_AFTER`` in
:mod:`repro.engine.budget`); this module replaces them with one
registry of named **fault points** — places in the engine and the
service that agree to ask "should I fail here?" — driven by one spec.

Fault points (see :data:`FAULT_POINTS`)::

    store.read      a verdict-store read fails (counted, served as a miss)
    store.write     a verdict-store flush fails (counted, entries re-buffered)
    journal.flush   a checkpoint-journal flush is dropped (counted)
    worker.kill     a pool worker SIGKILLs itself picking up a task
    worker.delay    a pool worker sleeps before a task
    budget.expire   a Budget behaves as if its deadline passed
    daemon.kill     the service daemon SIGKILLs itself at a job boundary
    client.drop     the service client's connection fails before sending
    client.reset    the connection drops after the server acted (response lost)
    sql.exec        a SQL-backend statement fails (counted, retried once)

Configuration is a single ``REPRO_FAULTS`` spec — semicolon-separated
clauses of ``point:key=value,...`` — or the programmatic
:func:`fault_scope`::

    REPRO_FAULTS="store.read:p=0.25,seed=7;worker.kill:task=3"

    with fault_scope("journal.flush:every=2"):
        ...

Trigger parameters (all optional; a bare point always fires):

``at=N``
    fire on exactly the N-th occurrence of the point (1-based);
``every=N``
    fire on every N-th occurrence;
``p=F`` (+ ``seed=N``)
    fire with probability *F* per occurrence, from a dedicated
    :class:`random.Random` seeded by ``seed`` and the point name —
    the schedule is deterministic and replayable;
``after=N``
    fire on every occurrence past the N-th;
``times=N``
    stop after N injections regardless of trigger.

Point-specific parameters: ``task=I|*`` restricts ``worker.*`` points
to one dispatch index (the legacy kill/delay semantics), ``seconds=F``
sets the ``worker.delay`` sleep, and ``resource=instances|chase_steps``
names the counter ``budget.expire`` watches (with ``after=N`` as its
threshold).

Malformed specs — unknown points or keys, bad numbers, probabilities
outside [0, 1] — raise :class:`~repro.errors.FaultSpecError` the first
time the plane is consulted, so a typo in a chaos schedule aborts the
run instead of silently injecting nothing.  The legacy env vars keep
working as aliases (and are now validated just as strictly); a
``REPRO_FAULTS`` clause for the same point overrides its alias.

Every injection bumps ``faults_injected`` and a per-point
``fault_<point>`` counter on :func:`~repro.engine.instrumentation.engine_stats`,
so chaos runs can assert that the schedule actually executed.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import FaultSpecError

#: Every named fault point the engine and service agree to consult.
FAULT_POINTS: Dict[str, str] = {
    "store.read": "a verdict-store read fails and is served as a miss",
    "store.write": "a verdict-store flush fails and entries stay buffered",
    "journal.flush": "a checkpoint-journal flush is dropped",
    "worker.kill": "a pool worker SIGKILLs itself when picking up a task",
    "worker.delay": "a pool worker sleeps before running a task",
    "budget.expire": "a Budget behaves as if its deadline passed",
    "daemon.kill": "the service daemon SIGKILLs itself at a job boundary",
    "client.drop": "the client connection fails before the request is sent",
    "client.reset": "the connection resets after the server acted",
    "sql.exec": "a SQL-backend statement fails and is retried once",
}

_TRIGGER_KEYS = ("at", "every", "p", "after")
_PARAM_KEYS = frozenset(
    {"at", "every", "p", "after", "seed", "times", "task", "seconds", "resource"}
)
_RESOURCES = ("instances", "chase_steps")

#: Env vars the plane is built from; a change to any rebuilds it.
ENV_VARS = (
    "REPRO_FAULTS",
    "REPRO_FAULT_KILL_TASK",
    "REPRO_FAULT_DELAY_TASK",
    "REPRO_FAULT_EXPIRE_AFTER",
)


def _bad(spec: str, clause: str, why: str, **context: object) -> FaultSpecError:
    return FaultSpecError(
        f"invalid fault spec {clause!r}: {why}", spec=spec, clause=clause, **context
    )


class FaultRule:
    """One configured fault point: trigger parameters plus the mutable
    occurrence/fire counters that implement the schedule."""

    __slots__ = (
        "point",
        "at",
        "every",
        "p",
        "after",
        "seed",
        "times",
        "task",
        "seconds",
        "resource",
        "occurrences",
        "fires",
        "_rng",
    )

    def __init__(
        self,
        point: str,
        *,
        at: Optional[int] = None,
        every: Optional[int] = None,
        p: Optional[float] = None,
        after: Optional[int] = None,
        seed: int = 0,
        times: Optional[int] = None,
        task: Union[int, str, None] = None,
        seconds: float = 0.0,
        resource: Optional[str] = None,
    ) -> None:
        self.point = point
        self.at = at
        self.every = every
        self.p = p
        self.after = after
        self.seed = seed
        self.times = times
        self.task = task
        self.seconds = seconds
        self.resource = resource
        self.occurrences = 0
        self.fires = 0
        # Seeding with a string derived from (seed, point) keeps the
        # schedule deterministic across processes and python versions
        # while decorrelating the points that share one seed.
        self._rng = random.Random(f"{seed}:{point}")

    def decide(self, index: Optional[int] = None) -> bool:
        """Count one occurrence of the point and decide whether to fire."""
        if self.task is not None:
            if index is None:
                return False
            if self.task != "*" and index != self.task:
                return False
        self.occurrences += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.at is not None:
            fire = self.occurrences == self.at
        elif self.every is not None:
            fire = self.occurrences % self.every == 0
        elif self.p is not None:
            fire = self._rng.random() < self.p
        elif self.after is not None:
            fire = self.occurrences > self.after
        else:
            fire = True
        if fire:
            self.fires += 1
        return fire

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={getattr(self, key)!r}"
            for key in ("at", "every", "p", "after", "times", "task", "seconds", "resource")
            if getattr(self, key) not in (None, 0.0)
        )
        return f"FaultRule({self.point!r}{', ' + params if params else ''})"


def _parse_params(
    spec: str, clause: str, point: str, raw_params: List[str]
) -> FaultRule:
    params: Dict[str, object] = {}
    for raw in raw_params:
        raw = raw.strip()
        if not raw:
            continue
        key, sep, value = raw.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise _bad(spec, clause, f"parameter {raw!r} is not key=value", point=point)
        if key not in _PARAM_KEYS:
            raise _bad(
                spec,
                clause,
                f"unknown parameter {key!r} (known: {', '.join(sorted(_PARAM_KEYS))})",
                point=point,
            )
        if key in ("at", "every", "after", "seed", "times"):
            try:
                number = int(value)
            except ValueError:
                raise _bad(spec, clause, f"{key}={value!r} is not an integer", point=point)
            if number < 0 or (key in ("at", "every", "times") and number < 1):
                raise _bad(spec, clause, f"{key}={number} is out of range", point=point)
            params[key] = number
        elif key in ("p", "seconds"):
            try:
                number = float(value)
            except ValueError:
                raise _bad(spec, clause, f"{key}={value!r} is not a number", point=point)
            if key == "p" and not 0.0 <= number <= 1.0:
                raise _bad(spec, clause, f"p={number} must be within [0, 1]", point=point)
            if key == "seconds" and number < 0:
                raise _bad(spec, clause, f"seconds={number} must be >= 0", point=point)
            params[key] = number
        elif key == "task":
            if value == "*":
                params[key] = "*"
            else:
                try:
                    params[key] = int(value)
                except ValueError:
                    raise _bad(
                        spec, clause, f"task={value!r} is not an index or '*'", point=point
                    )
        else:  # resource
            if value not in _RESOURCES:
                raise _bad(
                    spec,
                    clause,
                    f"resource={value!r} is not one of {', '.join(_RESOURCES)}",
                    point=point,
                )
            params[key] = value
    if sum(1 for key in _TRIGGER_KEYS if key in params) > 1:
        raise _bad(
            spec,
            clause,
            "at=/every=/p=/after= are mutually exclusive triggers",
            point=point,
        )
    return FaultRule(point, **params)  # type: ignore[arg-type]


def parse_spec(spec: str) -> Dict[str, FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec into ``{point: rule}``.

    Raises :class:`~repro.errors.FaultSpecError` on any malformed
    clause; a later clause for the same point overrides an earlier one.
    """
    rules: Dict[str, FaultRule] = {}
    for chunk in spec.replace("\n", ";").split(";"):
        clause = chunk.strip()
        if not clause:
            continue
        point, _, params = clause.partition(":")
        point = point.strip()
        if point not in FAULT_POINTS:
            raise _bad(
                spec,
                clause,
                f"unknown fault point {point!r} "
                f"(known: {', '.join(sorted(FAULT_POINTS))})",
            )
        rules[point] = _parse_params(spec, clause, point, params.split(","))
    return rules


def _legacy_rules() -> Dict[str, FaultRule]:
    """Rules from the pre-plane ``REPRO_FAULT_*`` aliases, validated."""
    rules: Dict[str, FaultRule] = {}
    kill = os.environ.get("REPRO_FAULT_KILL_TASK", "").strip()
    if kill:
        try:
            rules["worker.kill"] = FaultRule("worker.kill", task=int(kill))
        except ValueError:
            raise FaultSpecError(
                f"REPRO_FAULT_KILL_TASK={kill!r} is not a task index",
                spec=kill,
                point="worker.kill",
            )
    delay = os.environ.get("REPRO_FAULT_DELAY_TASK", "").strip()
    if delay:
        task_raw, sep, seconds_raw = delay.partition(":")
        try:
            if not sep:
                raise ValueError(delay)
            task: Union[int, str] = "*" if task_raw == "*" else int(task_raw)
            seconds = float(seconds_raw)
            if seconds < 0:
                raise ValueError(seconds_raw)
        except ValueError:
            raise FaultSpecError(
                f"REPRO_FAULT_DELAY_TASK={delay!r} is not '<index|*>:<seconds>'",
                spec=delay,
                point="worker.delay",
            )
        rules["worker.delay"] = FaultRule("worker.delay", task=task, seconds=seconds)
    expire = os.environ.get("REPRO_FAULT_EXPIRE_AFTER", "").strip()
    if expire:
        resource, sep, count = expire.partition(":")
        if not sep or resource not in _RESOURCES or not count.isdigit():
            raise FaultSpecError(
                f"REPRO_FAULT_EXPIRE_AFTER={expire!r} is not "
                f"'<instances|chase_steps>:<count>'",
                spec=expire,
                point="budget.expire",
            )
        rules["budget.expire"] = FaultRule(
            "budget.expire", resource=resource, after=int(count)
        )
    return rules


class FaultPlane:
    """An installed set of fault rules, one per configured point."""

    __slots__ = ("rules",)

    def __init__(self, rules: Optional[Mapping[str, FaultRule]] = None) -> None:
        self.rules: Dict[str, FaultRule] = dict(rules or {})

    @classmethod
    def from_env(cls) -> "FaultPlane":
        """Legacy aliases first, then ``REPRO_FAULTS`` clauses on top."""
        rules = _legacy_rules()
        spec = os.environ.get("REPRO_FAULTS", "")
        if spec.strip():
            rules.update(parse_spec(spec))
        return cls(rules)

    @classmethod
    def from_spec(
        cls, spec: Union[str, Mapping[str, Mapping[str, object]], None]
    ) -> "FaultPlane":
        if spec is None:
            return cls()
        if isinstance(spec, str):
            return cls(parse_spec(spec))
        rules: Dict[str, FaultRule] = {}
        for point, params in spec.items():
            if point not in FAULT_POINTS:
                raise FaultSpecError(
                    f"unknown fault point {point!r}", spec=str(spec), point=point
                )
            rules[point] = FaultRule(point, **dict(params))
        return cls(rules)

    def rule(self, point: str) -> Optional[FaultRule]:
        return self.rules.get(point)

    def fire(self, point: str, index: Optional[int] = None) -> Optional[FaultRule]:
        """Consult the plane at *point*; the rule when it fires, else None."""
        rule = self.rules.get(point)
        if rule is None or not rule.decide(index):
            return None
        count_injection(point)
        return rule

    def __repr__(self) -> str:
        return f"FaultPlane({sorted(self.rules)!r})"


# -- the active plane ------------------------------------------------------
#
# Programmatic scopes (a module-level stack, inherited by forked
# workers) win over the env-built plane, mirroring how programmatic
# store installs beat REPRO_STORE.  The env plane is cached on a
# fingerprint of the fault env vars so per-rule occurrence counters
# survive across fire() calls within one schedule, yet monkeypatched
# env changes in tests rebuild (and so reset) it immediately.

_SCOPED: List[FaultPlane] = []
_ENV_PLANE = FaultPlane()
_ENV_FINGERPRINT: Optional[Tuple[Optional[str], ...]] = None


def active_plane() -> FaultPlane:
    """The fault plane governing this process right now."""
    if _SCOPED:
        return _SCOPED[-1]
    global _ENV_PLANE, _ENV_FINGERPRINT
    fingerprint = tuple(os.environ.get(name) for name in ENV_VARS)
    if fingerprint != _ENV_FINGERPRINT:
        _ENV_PLANE = FaultPlane.from_env()
        _ENV_FINGERPRINT = fingerprint
    return _ENV_PLANE


@contextmanager
def fault_scope(
    spec: Union[str, Mapping[str, Mapping[str, object]], None],
) -> Iterator[FaultPlane]:
    """Install a fault schedule for the enclosed block.

    *spec* is a ``REPRO_FAULTS``-style string, a ``{point: {param:
    value}}`` mapping, or None (no faults — useful to mask the env).
    Each entry gets fresh occurrence counters, so the same scope
    replays the same schedule.
    """
    plane = FaultPlane.from_spec(spec)
    _SCOPED.append(plane)
    try:
        yield plane
    finally:
        _SCOPED.remove(plane)


def fire(point: str, index: Optional[int] = None) -> Optional[FaultRule]:
    """Consult the active plane at *point*.

    Returns the matched :class:`FaultRule` when the fault should be
    injected (so callers can read e.g. ``rule.seconds``) and None
    otherwise.  *index* is the dispatch index for task-scoped
    ``worker.*`` rules.
    """
    if point not in FAULT_POINTS:
        raise KeyError(f"unknown fault point {point!r}")
    plane = active_plane()
    if not plane.rules:
        return None
    return plane.fire(point, index)


def expire_rule() -> Tuple[Optional[str], int]:
    """The ``budget.expire`` configuration as ``(resource, after)``.

    ``(None, 0)`` when unconfigured; the default resource is
    ``"instances"``.  :class:`~repro.engine.budget.Budget` snapshots
    this at construction so each budget counts its own charges.
    """
    rule = active_plane().rule("budget.expire")
    if rule is None:
        return None, 0
    return rule.resource or "instances", rule.after or 0


def count_injection(point: str) -> None:
    """Record one injection at *point* on the engine stats counters."""
    from repro.engine.instrumentation import engine_stats

    stats = engine_stats()
    stats.bump("faults_injected")
    stats.bump("fault_" + point.replace(".", "_"))


__all__ = [
    "ENV_VARS",
    "FAULT_POINTS",
    "FaultPlane",
    "FaultRule",
    "active_plane",
    "count_injection",
    "expire_rule",
    "fault_scope",
    "fire",
    "parse_spec",
]
