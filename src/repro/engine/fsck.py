"""Offline integrity audit and repair for the engine's durable state.

The verdict store and the checkpoint journal both degrade gracefully
*online* — a corrupt row or entry is counted, quarantined, and served
as a miss (see :mod:`repro.engine.store` and
:mod:`repro.engine.checkpoint`).  This module is the *offline*
counterpart: scan everything, report exactly what is damaged, and —
with ``repair=True`` — move the damage out of the way so a warm
restart trusts only verified state.  The CLI exposes it as
``python -m repro.cli fsck --store PATH --checkpoint PATH [--repair]``.

Repair never destroys data: corrupt store rows move to the store's
``quarantine`` table, corrupt journal entries move to a
``<path>.quarantine.json`` sidecar, and a file too damaged to parse at
all is renamed to ``<path>.corrupt`` for post-mortem inspection.
Because both stores are caches of deterministic computations, a
repaired file is always *safe*: anything removed is recomputed, and
recomputation reproduces the identical verdicts.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.engine.checkpoint import (
    JOURNAL_META_KEY,
    entry_signature,
    state_checksum,
)
from repro.engine.store import _CODECS, ENGINE_VERSION, entry_checksum

_BUSY_TIMEOUT_SECONDS = 5.0
_DETAIL_LIMIT = 50


@dataclass
class FsckReport:
    """The outcome of one fsck scan (one store or one journal)."""

    kind: str  # "store" | "checkpoint"
    path: str
    scanned: int = 0
    corrupt: int = 0
    quarantined: int = 0
    repaired: int = 0
    details: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.corrupt == 0

    def note(self, detail: str) -> None:
        if len(self.details) < _DETAIL_LIMIT:
            self.details.append(detail)
        elif len(self.details) == _DETAIL_LIMIT:
            self.details.append("... (further details elided)")

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "path": self.path,
            "scanned": self.scanned,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "repaired": self.repaired,
            "clean": self.clean,
            "details": list(self.details),
        }

    def render(self) -> str:
        status = "clean" if self.clean else "CORRUPT"
        lines = [
            f"fsck {self.kind} {self.path}: {status} — "
            f"{self.scanned} scanned, {self.corrupt} corrupt, "
            f"{self.quarantined} quarantined, {self.repaired} repaired"
        ]
        lines.extend(f"  - {detail}" for detail in self.details)
        return "\n".join(lines)


def _set_aside(path: str, report: FsckReport, why: str, repair: bool) -> None:
    """An unparsable file: report it and (on repair) rename it aside."""
    report.corrupt += 1
    report.note(why)
    if not repair:
        return
    aside = path + ".corrupt"
    try:
        os.replace(path, aside)
    except OSError as error:
        report.note(f"could not set aside {path}: {error}")
        return
    report.repaired += 1
    report.note(f"moved aside to {aside}")


# -- the verdict store -----------------------------------------------------


def fsck_store(path: str, *, repair: bool = False) -> FsckReport:
    """Audit every row of a verdict store against its checksum.

    Detects flipped bits, truncated values, transplanted rows, rows
    stamped by another engine version, and files damaged beyond
    SQLite's ability to read them.  With ``repair=True`` corrupt rows
    are moved to the ``quarantine`` table (same as the online path);
    an unreadable database file is renamed to ``<path>.corrupt``.
    """
    report = FsckReport("store", path)
    try:
        connection = sqlite3.connect(path, timeout=_BUSY_TIMEOUT_SECONDS)
        rows = connection.execute(
            "SELECT cache, key, value, checksum, engine FROM entries"
        ).fetchall()
        meta_row = connection.execute(
            "SELECT v FROM meta WHERE k = 'engine_version'"
        ).fetchone()
    except sqlite3.Error as error:
        _set_aside(path, report, f"unreadable SQLite database: {error}", repair)
        return report
    store_engine = meta_row[0] if meta_row is not None else ENGINE_VERSION
    bad: List[tuple] = []
    for cache_name, digest, payload, checksum, engine in rows:
        report.scanned += 1
        reason = None
        if checksum != entry_checksum(cache_name, digest, payload, engine):
            reason = "checksum mismatch"
        elif engine != store_engine:
            reason = f"engine stamp {engine!r} != store version {store_engine!r}"
        else:
            codec = _CODECS.get(cache_name)
            if codec is not None:
                try:
                    codec[1](payload)
                except Exception as error:
                    reason = f"undecodable payload: {error}"
        if reason is not None:
            report.corrupt += 1
            report.note(f"{cache_name} {digest[:16]}…: {reason}")
            bad.append((reason, cache_name, digest))
    if bad and repair:
        try:
            with connection:
                for reason, cache_name, digest in bad:
                    connection.execute(
                        "INSERT OR REPLACE INTO quarantine"
                        " (cache, key, value, checksum, engine, reason)"
                        " SELECT cache, key, value, checksum, engine, ?"
                        " FROM entries WHERE cache = ? AND key = ?",
                        (reason, cache_name, digest),
                    )
                    connection.execute(
                        "DELETE FROM entries WHERE cache = ? AND key = ?",
                        (cache_name, digest),
                    )
        except sqlite3.Error as error:
            report.note(f"repair failed: {error}")
        else:
            report.quarantined += len(bad)
            report.repaired += len(bad)
    try:
        already = connection.execute(
            "SELECT COUNT(*) FROM quarantine"
        ).fetchone()
        if already and already[0]:
            report.note(f"quarantine table holds {already[0]} row(s)")
    except sqlite3.Error:
        pass
    connection.close()
    return report


# -- the checkpoint journal ------------------------------------------------


def fsck_checkpoint(path: str, *, repair: bool = False) -> FsckReport:
    """Audit a checkpoint journal: torn JSON, file checksum, per-entry
    signatures.

    With ``repair=True`` invalid entries are moved to a
    ``<path>.quarantine.json`` sidecar and the journal rewritten
    (atomically) with only verified entries and a fresh ``__meta__``;
    a file that does not parse at all is renamed to ``<path>.corrupt``.
    """
    report = FsckReport("checkpoint", path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as error:
        report.corrupt += 1
        report.note(f"unreadable journal: {error}")
        return report
    try:
        loaded = json.loads(raw)
        if not isinstance(loaded, dict):
            raise ValueError("journal root is not an object")
    except ValueError as error:
        _set_aside(path, report, f"torn or truncated JSON: {error}", repair)
        return report
    meta = loaded.pop(JOURNAL_META_KEY, None)
    file_checksum_ok = not (
        isinstance(meta, dict)
        and meta.get("checksum") is not None
        and meta["checksum"] != state_checksum(loaded)
    )
    if not file_checksum_ok:
        report.corrupt += 1
        report.note("file checksum mismatch (entries added or removed)")
    valid: Dict[str, Any] = {}
    dropped: Dict[str, Any] = {}
    for key, entry in loaded.items():
        report.scanned += 1
        if not isinstance(entry, dict) or entry.get("sig") != entry_signature(
            key, entry
        ):
            report.corrupt += 1
            report.note(f"entry {key}: bad or missing signature")
            dropped[key] = entry
        else:
            valid[key] = entry
    if repair and (dropped or not file_checksum_ok):
        if dropped:
            sidecar = path + ".quarantine.json"
            try:
                existing: Dict[str, Any] = {}
                if os.path.exists(sidecar):
                    with open(sidecar, "r", encoding="utf-8") as handle:
                        existing = json.load(handle)
                    if not isinstance(existing, dict):
                        existing = {}
                existing.update(dropped)
                with open(sidecar, "w", encoding="utf-8") as handle:
                    json.dump(existing, handle, indent=1, sort_keys=True)
            except (OSError, ValueError) as error:
                report.note(f"could not write quarantine sidecar: {error}")
        payload: Dict[str, Any] = dict(valid)
        payload[JOURNAL_META_KEY] = {
            "engine": ENGINE_VERSION,
            "checksum": state_checksum(valid),
        }
        temporary = path + ".fsck.tmp"
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(temporary, path)
        except OSError as error:
            report.note(f"repair failed: {error}")
        else:
            report.quarantined += len(dropped)
            report.repaired += len(dropped) + (0 if file_checksum_ok else 1)
            report.note(f"rewrote journal with {len(valid)} verified entr(ies)")
    return report


__all__ = ["FsckReport", "fsck_checkpoint", "fsck_store"]
