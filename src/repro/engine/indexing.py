"""Fact indexes for homomorphism search.

The backtracking join in :mod:`repro.chase.homomorphism` repeatedly
asks "which facts of relation R could the pattern atom match, given
the terms bound so far?".  The per-relation tuple on
:class:`~repro.datamodel.instances.Instance` answers that with a
linear scan; a :class:`FactIndex` answers it with a hash probe on the
most selective ``(relation, position, term)`` posting list.

Indexes are built lazily, once per instance, and shared through a
weak-keyed memo so that repeated probes against the same target (the
normal shape of a chase or a bounded checker) pay the build cost once.
Posting lists preserve the sorted fact order of the instance, so a
search driven by the index visits candidate facts in exactly the
order the linear scan would — results and result *order* are
unchanged, only non-matching candidates are skipped.
"""

from __future__ import annotations

import weakref
from typing import Dict, Mapping, Optional, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term

PostingKey = Tuple[str, int, Term]


class FactIndex:
    """An inverted index over one instance's facts.

    ``postings[(relation, position, term)]`` lists, in sorted fact
    order, every fact of *relation* whose argument at *position* is
    *term*.
    """

    __slots__ = ("instance", "postings")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        postings: Dict[PostingKey, list] = {}
        for relation in instance.relations():
            for fact in instance.facts_for(relation):
                for position, argument in enumerate(fact.args):
                    postings.setdefault((relation, position, argument), []).append(
                        fact
                    )
        self.postings: Dict[PostingKey, Tuple[Atom, ...]] = {
            key: tuple(facts) for key, facts in postings.items()
        }

    def candidates(
        self, pattern: Atom, assignment: Mapping[Term, Term]
    ) -> Tuple[Atom, ...]:
        """Facts that could match *pattern* under *assignment*.

        Every position of *pattern* that is already determined — a
        rigid constant, or a mappable term bound by *assignment* —
        names a posting list; the shortest one is returned (the
        remaining positions are verified by the caller's match).  With
        no determined position the full relation extent is returned.
        """
        best: Optional[Tuple[Atom, ...]] = None
        for position, argument in enumerate(pattern.args):
            if isinstance(argument, Constant):
                value: Optional[Term] = argument
            else:
                value = assignment.get(argument)
            if value is None:
                continue
            posting = self.postings.get((pattern.relation, position, value), ())
            if best is None or len(posting) < len(best):
                best = posting
                if not best:
                    return ()
        if best is None:
            return self.instance.facts_for(pattern.relation)
        return best


_INDEXES: "weakref.WeakKeyDictionary[Instance, FactIndex]" = (
    weakref.WeakKeyDictionary()
)


def fact_index(instance: Instance) -> FactIndex:
    """The (memoized) :class:`FactIndex` for *instance*."""
    index = _INDEXES.get(instance)
    if index is None:
        index = FactIndex(instance)
        _INDEXES[instance] = index
    return index
