"""Fact indexes for homomorphism search.

The backtracking join in :mod:`repro.chase.homomorphism` repeatedly
asks "which facts of relation R could the pattern atom match, given
the terms bound so far?".  The per-relation tuple on
:class:`~repro.datamodel.instances.Instance` answers that with a
linear scan; a :class:`FactIndex` answers it with a hash probe on the
most selective ``(relation, position, term)`` posting list.

Indexes are built lazily, once per instance, and shared through a
weak-keyed memo so that repeated probes against the same target (the
normal shape of a chase or a bounded checker) pay the build cost once.
Posting lists preserve the sorted fact order of the instance, so a
search driven by the index visits candidate facts in exactly the
order the linear scan would — results and result *order* are
unchanged, only non-matching candidates are skipped.
"""

from __future__ import annotations

import weakref
from typing import Dict, Mapping, Optional, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term
from repro.engine.cache import register_reset_hook

PostingKey = Tuple[str, int, Term]


class FactIndex:
    """An inverted index over one instance's facts.

    ``postings[(relation, position, term)]`` lists, in sorted fact
    order, every fact of *relation* whose argument at *position* is
    *term*.
    """

    __slots__ = ("instance", "postings")

    def __init__(self, instance: Instance) -> None:
        global _BUILD_COUNT
        _BUILD_COUNT = _BUILD_COUNT + 1
        self.instance = instance
        postings: Dict[PostingKey, list] = {}
        for relation in instance.relations():
            for fact in instance.facts_for(relation):
                for position, argument in enumerate(fact.args):
                    postings.setdefault((relation, position, argument), []).append(
                        fact
                    )
        self.postings: Dict[PostingKey, Tuple[Atom, ...]] = {
            key: tuple(facts) for key, facts in postings.items()
        }

    def candidates(
        self, pattern: Atom, assignment: Mapping[Term, Term]
    ) -> Tuple[Atom, ...]:
        """Facts that could match *pattern* under *assignment*.

        Every position of *pattern* that is already determined — a
        rigid constant, or a mappable term bound by *assignment* —
        names a posting list; the shortest one is returned (the
        remaining positions are verified by the caller's match).  With
        no determined position the full relation extent is returned.
        """
        best: Optional[Tuple[Atom, ...]] = None
        for position, argument in enumerate(pattern.args):
            if isinstance(argument, Constant):
                value: Optional[Term] = argument
            else:
                value = assignment.get(argument)
            if value is None:
                continue
            posting = self.postings.get((pattern.relation, position, value), ())
            if best is None or len(posting) < len(best):
                best = posting
                if not best:
                    return ()
        if best is None:
            return self.instance.facts_for(pattern.relation)
        return best


# Two-level memo: object identity first, then the exact fact set.
# Instances get copied freely (checkpoint replay, worker round-trips,
# orbit decanonicalization), and every copy used to rebuild its index
# from scratch; the facts-keyed fallback lets copies with equal fact
# sets share one build.  Sharing is sound because posting lists and
# the relation-extent fallback are functions of the (sorted) fact set
# alone — candidate order is identical for every copy.
_INDEXES: "weakref.WeakKeyDictionary[Instance, FactIndex]" = (
    weakref.WeakKeyDictionary()
)
_INDEXES_BY_FACTS: Dict[frozenset, FactIndex] = {}
_INDEXES_BY_FACTS_MAX = 16_384

_BUILD_COUNT = 0


def index_build_count() -> int:
    """Process-lifetime count of :class:`FactIndex` constructions.

    A regression hook: tests assert that probing copies of an instance
    (equal facts, distinct objects) does not grow this counter."""
    return _BUILD_COUNT


def _clear_index_memos() -> None:
    _INDEXES.clear()
    _INDEXES_BY_FACTS.clear()


register_reset_hook(_clear_index_memos)


def fact_index(instance: Instance) -> FactIndex:
    """The (memoized) :class:`FactIndex` for *instance*."""
    index = _INDEXES.get(instance)
    if index is not None:
        return index
    index = _INDEXES_BY_FACTS.get(instance.facts)
    if index is None:
        index = FactIndex(instance)
        if len(_INDEXES_BY_FACTS) >= _INDEXES_BY_FACTS_MAX:
            _INDEXES_BY_FACTS.clear()
        _INDEXES_BY_FACTS[instance.facts] = index
    _INDEXES[instance] = index
    return index
