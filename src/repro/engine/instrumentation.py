"""Lightweight engine instrumentation.

Every bounded check in the library decomposes into the same few
phases — chase, homomorphism search, verdict memoization, universe
fan-out — and the engine keeps one global :class:`EngineStats`
accumulator so the CLI and the benchmark harness can report where the
time went without threading a stats object through every call.

The accumulator is process-local by design: parallel workers keep
their own counters, and only the parent's numbers (which include the
fan-out wall-clock) are reported.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class PhaseStats:
    """Accumulated wall-clock and call count for one named phase."""

    calls: int = 0
    seconds: float = 0.0

    def record(self, elapsed: float) -> None:
        self.calls += 1
        self.seconds += elapsed


@dataclass
class EngineStats:
    """Per-process counters for the bounded-checking engine."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    instances_processed: int = 0
    worker_faults: int = 0
    named: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a phase; nests safely (each level accumulates its own)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases.setdefault(name, PhaseStats()).record(elapsed)

    def count_instances(self, n: int = 1) -> None:
        self.instances_processed += n

    def count_worker_fault(self, n: int = 1) -> None:
        """A pool worker died or timed out and recovery kicked in."""
        self.worker_faults += n

    def bump(self, name: str, n: int = 1) -> None:
        """Increment an ad-hoc named counter (e.g. the service layer's
        ``service_dedup_hits``); surfaced by :meth:`counters` and
        :meth:`render` alongside the built-in ones."""
        self.named[name] = self.named.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.named.get(name, 0)

    def instances_per_second(self, phase: str) -> float:
        stats = self.phases.get(phase)
        if stats is None or stats.seconds == 0:
            return 0.0
        return self.instances_processed / stats.seconds

    def reset(self) -> None:
        self.phases.clear()
        self.instances_processed = 0
        self.worker_faults = 0
        self.named.clear()

    def snapshot(self) -> Dict[str, Tuple[int, float]]:
        """``{phase: (calls, seconds)}`` for machine-readable reports."""
        return {name: (s.calls, s.seconds) for name, s in sorted(self.phases.items())}

    def counters(self) -> Dict[str, float]:
        """Every engine counter in one flat machine-readable dict.

        Phase timings appear as ``<phase>_calls`` / ``<phase>_seconds``;
        cache counters appear under the canonical
        ``<name>_cache_{hits,misses,evictions}`` keys defined by
        :meth:`repro.engine.cache.CacheStats.counters` — the same keys
        the rendered report is built from, so the two can never drift
        apart on naming again."""
        from repro.engine.cache import active_store, all_cache_stats
        from repro.engine.checkpoint import (
            corrupt_entry_count,
            dropped_flush_count,
        )

        counters: Dict[str, float] = {}
        for name, stats in sorted(self.phases.items()):
            counters[f"{name}_calls"] = stats.calls
            counters[f"{name}_seconds"] = stats.seconds
        counters["instances_processed"] = self.instances_processed
        counters["worker_faults"] = self.worker_faults
        for name, value in sorted(self.named.items()):
            counters[name] = value
        for cache_stats in all_cache_stats():
            counters.update(cache_stats.counters())
        store = active_store()
        if store is not None:
            counters.update(store.stats().counters())
        counters["checkpoint_dropped_flushes"] = dropped_flush_count()
        counters["checkpoint_corrupt_entries"] = corrupt_entry_count()
        return counters

    def render(self) -> str:
        """A compact multi-line report (phases, caches, store, throughput)."""
        from repro.engine.cache import active_store, all_cache_stats
        from repro.engine.checkpoint import (
            corrupt_entry_count,
            dropped_flush_count,
        )

        lines: List[str] = ["engine stats:"]
        for name, stats in sorted(self.phases.items()):
            lines.append(
                f"  phase {name:<22} {stats.calls:>8} calls  "
                f"{stats.seconds:>9.3f}s"
            )
        if self.instances_processed:
            lines.append(f"  instances processed      {self.instances_processed:>8}")
        if self.worker_faults:
            lines.append(f"  worker faults recovered  {self.worker_faults:>8}")
        for name, value in sorted(self.named.items()):
            lines.append(f"  {name:<24} {value:>8}")
        for cache_stats in all_cache_stats():
            lines.append(f"  {cache_stats.render()}")
        store = active_store()
        if store is not None:
            lines.append(f"  {store.stats().render()}")
        dropped = dropped_flush_count()
        if dropped:
            lines.append(f"  checkpoint flushes dropped {dropped:>6}")
        corrupt = corrupt_entry_count()
        if corrupt:
            lines.append(f"  checkpoint entries corrupt {corrupt:>6}")
        if len(lines) == 1:
            lines.append("  (no engine activity recorded)")
        return "\n".join(lines)


GLOBAL_STATS = EngineStats()


def engine_stats() -> EngineStats:
    """The process-global stats accumulator."""
    return GLOBAL_STATS


def reset_engine_stats() -> None:
    """Clear phase timings, instance counters, and cache counters."""
    from repro.engine.cache import reset_all_caches

    GLOBAL_STATS.reset()
    reset_all_caches()
