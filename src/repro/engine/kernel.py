"""The compiled relational kernel: an opt-in integer execution backend.

The object backend interprets the datamodel in the hot loop: every
homomorphism probe hashes :class:`~repro.datamodel.terms.Term` objects,
every candidate scan compares them, and every premise is re-analysed
per call.  The kernel backend (``backend="kernel"``, CLI ``--backend``,
env ``REPRO_BACKEND``) executes the same searches over dense integers:

* an engine-wide :class:`InternTable` maps every term to a dense id
  (append-only for the life of the process, so ids are stable and
  forked pool workers inherit the whole table);
* a :class:`KernelInstance` stores an instance as per-relation lists
  of id-tuples in sorted-fact order, with ``(relation, position, id)``
  posting lists packed as ``array('q')`` row indexes;
* premises are compiled once (:mod:`repro.engine.compile`) into join
  plans whose atom order matches the object backend's greedy order
  exactly, so results — and result *order* — are byte-identical after
  de-interning;
* premise-match lists for the chase are computed *semi-naively* on the
  sub-instance lattice: the matches of a ground instance are its
  parent's matches (the instance minus its maximal fact) plus the
  matches that use the added fact, enumerated by pinning each premise
  atom to the new fact in turn.  Non-ground instances, and instances
  too large for the parent chain, fall back to a full (still
  compiled) search.

Everything here is exact acceleration: verdicts, witnesses, chase
results, and their deterministic order are identical across backends;
only the representation the work happens in changes.
"""

from __future__ import annotations

import itertools
import os
import weakref
from array import array
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term
from repro.engine.budget import current_budget
from repro.engine.cache import MemoCache, register_reset_hook
from repro.engine.compile import CompiledPremise, compile_premise

BACKEND_OBJECT = "object"
BACKEND_KERNEL = "kernel"
BACKEND_SQL = "sql"
BACKEND_MODES = (BACKEND_OBJECT, BACKEND_KERNEL, BACKEND_SQL)

#: Above this many facts the delta match chain would recurse too deep
#: (and the lattice sharing it exploits no longer applies); fall back
#: to a one-shot full search.
_DELTA_MAX_FACTS = 64


# -- backend selection ----------------------------------------------------


def default_backend() -> str:
    """The engine-wide backend (``REPRO_BACKEND``; the CLI's
    ``--backend`` flag sets it).  Defaults to ``"object"`` — the
    kernel is opt-in.  Unknown values fall back to ``"object"``."""
    value = os.environ.get("REPRO_BACKEND", BACKEND_OBJECT).strip().lower()
    return value if value in BACKEND_MODES else BACKEND_OBJECT


def resolve_backend(backend: Optional[str]) -> str:
    """An explicit backend, else the environment-configured default."""
    if backend is None:
        return default_backend()
    if backend not in BACKEND_MODES:
        raise ValueError(
            f"backend must be one of {BACKEND_MODES}, got {backend!r}"
        )
    return backend


_ACTIVE: Optional[str] = None


def kernel_active() -> bool:
    """Is the kernel backend active for the current (sweep) context?

    True inside ``use_backend("kernel")``, or — with no ambient
    context — when ``REPRO_BACKEND=kernel``.  Forked pool workers
    inherit the ambient context (they fork after it is installed), so
    a sweep runs on one backend end to end.
    """
    if _ACTIVE is not None:
        return _ACTIVE == BACKEND_KERNEL
    return default_backend() == BACKEND_KERNEL


def sql_active() -> bool:
    """Is the SQL backend active for the current (sweep) context?

    True inside ``use_backend("sql")``, or — with no ambient context —
    when ``REPRO_BACKEND=sql``.  The SQL backend
    (:mod:`repro.engine.sqlbackend`) runs the chase and homomorphism
    joins inside SQLite; like the kernel it is exact acceleration, so
    verdicts and their order are identical across backends.
    """
    if _ACTIVE is not None:
        return _ACTIVE == BACKEND_SQL
    return default_backend() == BACKEND_SQL


@contextmanager
def use_backend(backend: Optional[str]) -> Iterator[None]:
    """Install *backend* (resolved against ``REPRO_BACKEND``) for the
    enclosed scope.  Nesting restores the previous choice on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_backend(backend)
    try:
        yield
    finally:
        _ACTIVE = previous


def active_backend() -> str:
    """The backend in effect right now (ambient context, else the
    environment default).  The parallel runner captures this at pool
    creation and re-installs it in each worker."""
    return _ACTIVE if _ACTIVE is not None else default_backend()


def install_backend(backend: Optional[str]) -> None:
    """Process-lifetime backend install (pool worker initializer).

    Unlike :func:`use_backend` there is no scope to restore — workers
    are born into the sweep's backend and die with it."""
    global _ACTIVE
    _ACTIVE = None if backend is None else resolve_backend(backend)


# -- term interning -------------------------------------------------------


class InternTable:
    """A bijection between terms and dense integer ids.

    Append-only: ids are never reused or invalidated, so compiled
    premises, kernel instances, and memo keys built at different times
    all agree.  Forked workers inherit the parent's table; ids they
    allocate afterwards stay process-local, which is safe because
    nothing interned ever crosses a process boundary (workers return
    plain terms and verdicts).
    """

    __slots__ = ("_ids", "_terms", "_is_const")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._is_const: List[bool] = []

    def intern(self, term: Term) -> int:
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
            self._is_const.append(isinstance(term, Constant))
        return tid

    def term(self, tid: int) -> Term:
        return self._terms[tid]

    def is_const(self, tid: int) -> bool:
        return self._is_const[tid]

    def __len__(self) -> int:
        return len(self._terms)


_INTERN = InternTable()


def intern_table() -> InternTable:
    """The process-wide intern table."""
    return _INTERN


# -- kernel instances -----------------------------------------------------

_KID_COUNTER = itertools.count()


class KernelInstance:
    """One instance lowered to interned rows and packed postings.

    ``rows[relation]`` lists the relation's facts as id-tuples in
    sorted-fact order (the order the object backend scans);
    ``postings[(relation, position, id)]`` is an ``array('q')`` of row
    indexes into ``rows[relation]``, ascending.  ``kid`` is a dense
    process-local identity used as a cheap content key by the match
    and verdict memos (two live :class:`KernelInstance` objects never
    share a fact set, so within a process ``kid`` is content-exact).
    """

    __slots__ = (
        "facts",
        "rows",
        "postings",
        "is_ground",
        "nfacts",
        "kid",
        "chase_memo",
        "hom_premise",
        "hom_memo",
        "sol_memo",
        "eq_memo",
        "__weakref__",
    )

    def __init__(self, facts: FrozenSet[Atom]) -> None:
        intern = _INTERN.intern
        grouped: Dict[str, List[Atom]] = {}
        for fact in facts:
            grouped.setdefault(fact.relation, []).append(fact)
        rows: Dict[str, List[Tuple[int, ...]]] = {}
        postings: Dict[Tuple[str, int, int], array] = {}
        ground = True
        for relation, atoms in grouped.items():
            atoms.sort(key=Atom.sort_key)
            relation_rows: List[Tuple[int, ...]] = []
            for row_index, fact in enumerate(atoms):
                if ground and not fact.is_ground():
                    ground = False
                row = tuple(intern(arg) for arg in fact.args)
                relation_rows.append(row)
                for position, tid in enumerate(row):
                    key = (relation, position, tid)
                    posting = postings.get(key)
                    if posting is None:
                        postings[key] = array("q", (row_index,))
                    else:
                        posting.append(row_index)
            rows[relation] = relation_rows
        self.facts = facts
        self.rows = rows
        self.postings = postings
        self.is_ground = ground
        self.nfacts = len(facts)
        self.kid = next(_KID_COUNTER)
        # Per-instance verdict memos, all dying with the kernel
        # instance (and cleared with the caches via the reset hook):
        # chase_memo maps a mapping's small id to its cached
        # (universal solution, solution's kernel instance) pair;
        # hom_memo maps a target kid to hom-existence out of this
        # instance; sol_memo/eq_memo map (mapping small id, other kid)
        # to solution-containment / ∼M verdicts.  Plain dict probes —
        # the verdict hot loop runs on these instead of the LRU caches.
        self.chase_memo: Dict[int, Any] = {}
        self.hom_memo: Dict[int, bool] = {}
        self.sol_memo: Dict[Tuple[int, int], bool] = {}
        self.eq_memo: Dict[Tuple[int, int], bool] = {}
        # the instance's own facts compiled as a match pattern, for
        # homomorphism-existence probes with this instance as source
        self.hom_premise: Optional[CompiledPremise] = None


# Kernel instances are memoized two ways: object identity first (the
# common repeat probe in a sweep's inner loop), then fact content, so
# copies of an instance — and parents synthesized by the delta chain
# that never existed as Instance objects — share one build.  Identity
# memoization uses a plain dict keyed by ``id(instance)`` — a hashless
# probe, roughly 2x cheaper than a WeakKeyDictionary lookup in the
# verdict hot loop — with a weakref finalizer evicting the entry when
# the instance dies so a recycled id can never alias a dead one.
_BY_INSTANCE: Dict[int, Tuple["weakref.ref[Instance]", KernelInstance]] = {}
kinstance_cache = MemoCache("kinstance", maxsize=65_536)
match_cache = MemoCache("matches", maxsize=65_536)


def kernel_instance(instance: Instance) -> KernelInstance:
    """The (memoized) :class:`KernelInstance` for *instance*."""
    entry = _BY_INSTANCE.get(id(instance))
    if entry is not None:
        return entry[1]
    kinst = kernel_instance_for_facts(instance.facts)
    key = id(instance)
    ref = weakref.ref(instance, lambda _r, _k=key: _BY_INSTANCE.pop(_k, None))
    _BY_INSTANCE[key] = (ref, kinst)
    return kinst


def kernel_instance_for_facts(facts: FrozenSet[Atom]) -> KernelInstance:
    """A kernel instance for a bare fact set (no Instance required)."""
    hit, kinst = kinstance_cache.get(facts)
    if not hit:
        kinst = KernelInstance(facts)
        kinstance_cache.put(facts, kinst)
    return kinst


# -- small ids for memo keys ----------------------------------------------

_SMALL_IDS: "weakref.WeakKeyDictionary[Any, int]" = weakref.WeakKeyDictionary()
_SMALL_COUNTER = itertools.count()


def small_id(obj: Any) -> int:
    """A dense process-local id for a (weakrefable) mapping or
    dependency, for compact memo keys.

    Cached directly on the object when it has a ``__dict__`` (the
    frozen dataclasses do — attribute reads beat a weak-dict probe in
    the per-verdict hot path), with the weak table as fallback.  Fork
    inheritance keeps attribute and table consistent: workers inherit
    both from the same process image."""
    try:
        return obj._repro_small_id
    except AttributeError:
        pass
    sid = _SMALL_IDS.get(obj)
    if sid is None:
        sid = next(_SMALL_COUNTER)
        _SMALL_IDS[obj] = sid
        try:
            object.__setattr__(obj, "_repro_small_id", sid)
        except (AttributeError, TypeError):
            pass
    return sid


# -- premise compilation memo ---------------------------------------------

compile_cache = MemoCache("compile", maxsize=16_384)


def compiled_premise(
    atoms: Tuple[Atom, ...],
    constant_vars: FrozenSet,
    inequalities: FrozenSet,
) -> CompiledPremise:
    """The (memoized) compiled form of one conjunctive pattern."""
    key = (atoms, constant_vars, inequalities)
    hit, compiled = compile_cache.get(key)
    if not hit:
        compiled = compile_premise(
            atoms, constant_vars, inequalities, _INTERN.intern
        )
        compile_cache.put(key, compiled)
    return compiled


# -- the compiled search --------------------------------------------------


def _candidate_rows(
    kinst: KernelInstance, catom, assign: List[int]
):
    """Row indexes that could match *catom* under *assign* — the
    shortest posting among determined positions, exactly as
    :meth:`repro.engine.indexing.FactIndex.candidates` selects facts."""
    best = None
    for position, is_const, value in catom.ops:
        if is_const:
            tid = value
        else:
            tid = assign[value]
            if tid < 0:
                continue
        posting = kinst.postings.get((catom.relation, position, tid))
        if posting is None:
            return ()
        if best is None or len(posting) < len(best):
            best = posting
    if best is None:
        return range(len(kinst.rows.get(catom.relation, ())))
    return best


def kernel_all_homomorphisms(
    atoms: Tuple[Atom, ...],
    target: Instance,
    base: Dict[Term, Term],
    constant_vars: FrozenSet,
    inequalities: FrozenSet,
) -> Iterator[Dict[Term, Term]]:
    """The kernel twin of the object backend's backtracking search.

    *base* must already satisfy the constraints (the dispatching
    caller checks it, as the object path does).  Yields assignments in
    the object backend's exact order: *base* entries first, then
    bindings in trail order, de-interned.
    """
    compiled = compiled_premise(atoms, constant_vars, inequalities)
    kinst = kernel_instance(target)
    yield from _search(compiled, kinst, base)


_EMPTY_FROZENSET: FrozenSet = frozenset()


def kernel_has_homomorphism(source: Instance, target: Instance) -> bool:
    """Does an instance homomorphism *source* -> *target* exist?

    The existence half of
    :func:`repro.chase.homomorphism.instance_homomorphism`, computed
    entirely on interned ids: the source's facts are compiled once as
    a match pattern (cached on its :class:`KernelInstance`) and probed
    against the target without materializing an assignment.  Existence
    is search-order independent, so this agrees with the object
    backend by construction.

    Memoized by the *pair of instances* (their dense ids): many
    distinct sources chase to the same universal solution, so verdict
    pairs that are new at the solution-space layer often reduce to a
    hom-existence question already answered here."""
    return kernel_hom_exists(kernel_instance(source), source, kernel_instance(target))


def kernel_hom_exists(
    ksrc: KernelInstance, source: Instance, ktgt: KernelInstance
) -> bool:
    """:func:`kernel_has_homomorphism` for callers that already hold
    the kernel instances (the verdict hot loop)."""
    budget = current_budget()
    if budget is not None:
        budget.check()
    verdict = ksrc.hom_memo.get(ktgt.kid)
    if verdict is not None:
        return verdict
    compiled = ksrc.hom_premise
    if compiled is None:
        compiled = compile_premise(
            tuple(source.sorted_facts()),
            _EMPTY_FROZENSET,
            _EMPTY_FROZENSET,
            _INTERN.intern,
        )
        ksrc.hom_premise = compiled
    verdict = False
    for _ in _search(compiled, ktgt, {}):
        verdict = True
        break
    ksrc.hom_memo[ktgt.kid] = verdict
    return verdict


def _search(
    compiled: CompiledPremise,
    kinst: KernelInstance,
    base: Dict[Term, Term],
) -> Iterator[Dict[Term, Term]]:
    intern = _INTERN.intern
    terms = _INTERN._terms
    is_const = _INTERN._is_const
    assign = [-1] * compiled.nslots
    bound_mask = 0
    slots = compiled.slots
    for term, value in base.items():
        slot = slots.get(term)
        if slot is not None:
            assign[slot] = intern(value)
            bound_mask |= 1 << slot
    plan = compiled.plan(compiled.extents_for(kinst.rows), bound_mask)
    catoms = compiled.catoms
    const_slot_set = compiled.const_slot_set
    ineq_of = compiled.ineq_of
    slot_terms = compiled.slot_terms
    depth = len(plan)
    trail: List[int] = []

    def search(index: int) -> Iterator[Dict[Term, Term]]:
        if index == depth:
            result = dict(base)
            for slot in trail:
                result[slot_terms[slot]] = terms[assign[slot]]
            yield result
            return
        catom = catoms[plan[index]]
        relation_rows = kinst.rows.get(catom.relation, ())
        ops = catom.ops
        arity = catom.arity
        for row_index in _candidate_rows(kinst, catom, assign):
            row = relation_rows[row_index]
            if len(row) != arity:
                continue
            mark = len(trail)
            matched = True
            for position, op_const, value in ops:
                tid = row[position]
                if op_const:
                    if tid != value:
                        matched = False
                        break
                else:
                    current = assign[value]
                    if current < 0:
                        assign[value] = tid
                        trail.append(value)
                    elif current != tid:
                        matched = False
                        break
            if matched:
                # incremental constraint check over the new bindings
                for slot in trail[mark:]:
                    if slot in const_slot_set and not is_const[assign[slot]]:
                        matched = False
                        break
                    for other in ineq_of.get(slot, ()):
                        image = assign[other]
                        if image >= 0 and image == assign[slot]:
                            matched = False
                            break
                    if not matched:
                        break
                if matched:
                    yield from search(index + 1)
            while len(trail) > mark:
                assign[trail.pop()] = -1

    return search(0)


# -- delta-driven premise matching (the semi-naive chase) -----------------


def sorted_premise_matches(dependency, instance: Instance):
    """The chase's sorted premise-match list, computed semi-naively.

    Content-addressed per ``(dependency, instance)``: a ground
    instance's matches are its parent's matches (remove the maximal
    fact) plus the matches using that fact, merged and re-sorted by
    the total per-variable key the object backend sorts by — so the
    returned list is element- and order-identical to
    :func:`repro.chase.standard._sorted_matches`.  Non-ground
    instances and instances beyond the chain bound fall back to a full
    compiled search (still memoized).
    """
    budget = current_budget()
    if budget is not None:
        budget.check()
    premise = dependency.premise
    compiled = compiled_premise(
        premise.atoms, premise.constant_vars, premise.inequalities
    )
    variables = dependency.premise_variables()
    dep_id = small_id(dependency)
    kinst = kernel_instance(instance)
    return _matches_for(dep_id, compiled, variables, kinst)


def _sort_key(variables):
    def key(match: Dict[Term, Term]):
        return tuple(match[variable].sort_key() for variable in variables)

    return key


def _matches_for(
    dep_id: int,
    compiled: CompiledPremise,
    variables,
    kinst: KernelInstance,
):
    key = (dep_id, kinst.kid)
    hit, matches = match_cache.get(key)
    if hit:
        return matches
    if (
        not kinst.is_ground
        or kinst.nfacts == 0
        or kinst.nfacts > _DELTA_MAX_FACTS
    ):
        matches = tuple(
            sorted(_search(compiled, kinst, {}), key=_sort_key(variables))
        )
        match_cache.put(key, matches)
        return matches
    added = max(kinst.facts)
    parent = kernel_instance_for_facts(kinst.facts - {added})
    parent_matches = _matches_for(dep_id, compiled, variables, parent)
    delta = _delta_matches(compiled, kinst, added)
    if delta:
        matches = tuple(
            sorted(
                itertools.chain(parent_matches, delta),
                key=_sort_key(variables),
            )
        )
    else:
        matches = parent_matches
    match_cache.put(key, matches)
    return matches


def _delta_matches(
    compiled: CompiledPremise, kinst: KernelInstance, added: Atom
) -> List[Dict[Term, Term]]:
    """Premise matches that use the fact *added*.

    Pinned decomposition over the compiled atom order: for each atom
    index i, enumerate assignments where atom i maps to *added* and no
    earlier atom does — disjoint by the least atom mapped to the new
    fact, so the union is exact and duplicate-free.  Enumeration order
    here is irrelevant: the caller re-sorts by the total match key.
    """
    relation = added.relation
    relation_rows = kinst.rows.get(relation, ())
    # the added fact is the instance's maximal fact, hence the maximal
    # — last — row of its relation (atoms sort relation-major)
    added_index = len(relation_rows) - 1
    added_row = relation_rows[added_index]
    terms = _INTERN._terms
    is_const = _INTERN._is_const
    catoms = compiled.catoms
    const_slot_set = compiled.const_slot_set
    ineq_of = compiled.ineq_of
    slot_terms = compiled.slot_terms
    count = len(catoms)
    results: List[Dict[Term, Term]] = []

    for pin in range(count):
        pinned = catoms[pin]
        if pinned.relation != relation or pinned.arity != len(added_row):
            continue
        assign = [-1] * compiled.nslots
        trail: List[int] = []
        if not _bind_row(
            pinned, added_row, assign, trail, is_const, const_slot_set, ineq_of
        ):
            for slot in trail:
                assign[slot] = -1
            continue
        remaining = [index for index in range(count) if index != pin]

        def expand(position: int) -> None:
            if position == len(remaining):
                results.append(
                    {slot_terms[slot]: terms[assign[slot]] for slot in trail}
                )
                return
            atom_index = remaining[position]
            catom = catoms[atom_index]
            rows = kinst.rows.get(catom.relation, ())
            exclude = (
                added_index
                if atom_index < pin and catom.relation == relation
                else -1
            )
            for row_index in _candidate_rows(kinst, catom, assign):
                if row_index == exclude:
                    continue
                row = rows[row_index]
                if len(row) != catom.arity:
                    continue
                mark = len(trail)
                if _bind_row(
                    catom, row, assign, trail, is_const, const_slot_set, ineq_of
                ):
                    expand(position + 1)
                while len(trail) > mark:
                    assign[trail.pop()] = -1

        expand(0)
    return results


def _bind_row(
    catom,
    row: Tuple[int, ...],
    assign: List[int],
    trail: List[int],
    is_const: List[bool],
    const_slot_set,
    ineq_of,
) -> bool:
    """Match *catom* onto *row*, extending *assign*/*trail* in place.

    Returns False on mismatch or constraint violation; the caller
    unwinds the trail past its mark either way."""
    mark = len(trail)
    for position, op_const, value in catom.ops:
        tid = row[position]
        if op_const:
            if tid != value:
                return False
        else:
            current = assign[value]
            if current < 0:
                assign[value] = tid
                trail.append(value)
            elif current != tid:
                return False
    for slot in trail[mark:]:
        if slot in const_slot_set and not is_const[assign[slot]]:
            return False
        for other in ineq_of.get(slot, ()):
            image = assign[other]
            if image >= 0 and image == assign[slot]:
                return False
    return True


def _clear_kernel_memos() -> None:
    """Reset-hook body: drop instance-attached kernel state.

    The intern table is deliberately *not* cleared — ids are
    append-only for the life of the process and compiled premises
    embed them.  Everything content-derived (kernel instances, their
    chase memos, match lists) goes, so a benchmark's cold run after
    ``reset_all_caches()`` is genuinely cold."""
    _BY_INSTANCE.clear()


register_reset_hook(_clear_kernel_memos)


__all__ = [
    "BACKEND_KERNEL",
    "BACKEND_MODES",
    "BACKEND_OBJECT",
    "BACKEND_SQL",
    "InternTable",
    "KernelInstance",
    "active_backend",
    "compiled_premise",
    "default_backend",
    "install_backend",
    "intern_table",
    "kernel_active",
    "kernel_all_homomorphisms",
    "kernel_has_homomorphism",
    "kernel_hom_exists",
    "kernel_instance",
    "kernel_instance_for_facts",
    "resolve_backend",
    "small_id",
    "sorted_premise_matches",
    "sql_active",
    "use_backend",
]
