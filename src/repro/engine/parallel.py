"""Deterministic, fault-tolerant parallel fan-out over instance universes.

A :class:`ParallelUniverseRunner` chunks a stream of work items (most
often instances from :func:`repro.workloads.power_instances`, or the
per-instance tasks of a bounded checker) across a ``multiprocessing``
pool and merges results back in input order, so every caller sees
exactly the sequence a serial loop would produce.

Rules that keep this safe and reproducible:

* the pool uses the ``fork`` start method and is created *after* the
  shared context is published, so workers inherit large read-only
  payloads (universes, witness pools, mappings) for free instead of
  pickling them per task;
* work is dispatched as per-chunk ``apply_async`` calls and *supervised*
  from the parent — never a bare ``imap``, which hangs forever when a
  forked worker is OOM-killed.  The supervision loop polls each chunk
  with a short interval and watches for (a) worker death (a pool pid
  vanishing or reporting an exit code), (b) a per-chunk timeout
  (``REPRO_TASK_TIMEOUT``), and (c) budget expiry in the parent;
* when a fault is detected the pool is condemned: chunks that already
  completed cleanly are harvested, and every other chunk — including
  whatever the dead worker was holding — is **re-executed serially in
  the parent**, so the merged result sequence is byte-identical to a
  serial run despite the fault.  With ``on_fault="raise"`` the runner
  raises :class:`~repro.errors.WorkerFault` instead, which checkers
  convert into a ``coverage == "faulted"`` partial verdict;
* a task that *raises* inside a worker is replayed serially in the
  parent at its exact merge position, so exceptions surface with the
  same ordering and type a serial loop would produce;
* with ``workers <= 1``, on platforms without ``fork``, or inside an
  existing worker, the runner degrades to a plain serial loop over
  the same task function, which is how serial/parallel equivalence is
  guaranteed by construction.

Deterministic fault injection (tests only; the ``worker.kill`` and
``worker.delay`` points of the unified fault plane — see
:mod:`repro.engine.faults` — act **inside workers only**, so
parent-side recovery is never itself faulted):

* ``worker.kill`` (legacy alias ``REPRO_FAULT_KILL_TASK=<i>``) — the
  worker that picks up the matching task SIGKILLs itself first
  (simulates the OOM killer);
* ``worker.delay`` (legacy alias ``REPRO_FAULT_DELAY_TASK=<i>:<s>`` or
  ``*:<s>``) — the worker sleeps before running the task (simulates a
  straggler; pair with a small ``REPRO_TASK_TIMEOUT`` to exercise
  timeout recovery).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.engine import faults
from repro.engine.budget import Budget, current_budget, install_budget
from repro.engine.cache import flush_active_store
from repro.engine.instrumentation import engine_stats
from repro.engine.kernel import active_backend, install_backend
from repro.errors import WorkerFault

Item = TypeVar("Item")
Result = TypeVar("Result")


class _RunnerState(threading.local):
    """Per-thread dispatch state.

    Thread-scoped (not process-global) because the service daemon runs
    concurrent jobs on worker threads: each job's fan-out publishes its
    own shared context, and pool tasks always execute on the thread
    that installed theirs (the pool worker's main thread, after
    :func:`_worker_init`), so nothing is ever read across threads.
    """

    def __init__(self) -> None:
        self.shared: Any = None
        self.in_worker = False
        self.task: Optional[Callable[[Any], Any]] = None


_STATE = _RunnerState()

# Forking from a multi-threaded daemon while another thread is mid-way
# through creating its own pool is the classic fork/threads hazard;
# serializing pool construction keeps the supervised fork pool usable
# from concurrent service jobs.  Held only for the (quick) fork+spawn
# of the workers, never while chunks run.
_POOL_CREATE_LOCK = threading.Lock()

_DEFAULT_TASK_TIMEOUT = 300.0
_POLL_INTERVAL = 0.02


def get_shared() -> Any:
    """The context published by the current :meth:`map` call (task
    functions running in workers read their big arguments here)."""
    return _STATE.shared


def _worker_init(
    shared: Any,
    task: Optional[Callable[[Any], Any]] = None,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> None:
    # Forked workers inherit the parent's signal dispositions.  A host
    # that traps SIGTERM (the service daemon's graceful-drain handler)
    # would make Pool.terminate()'s SIGTERM a no-op in the children and
    # hang the terminating join forever — reset to the defaults so the
    # pool can always be torn down, and ignore SIGINT so Ctrl-C is
    # handled once, by the parent.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread or exotic platform
        pass
    _STATE.shared = shared
    _STATE.in_worker = True
    _STATE.task = task
    install_budget(budget)
    # Workers already inherit the ambient backend (fork happens inside
    # the checker's use_backend scope) along with the intern table;
    # installing it explicitly keeps that true even if a start method
    # ever stops forking after the context is published.
    install_backend(backend)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


_WARNED_WORKER_VALUES: set = set()


def default_workers() -> int:
    """The engine-wide default worker count.

    Controlled by ``REPRO_WORKERS`` (the CLI's ``--workers`` flag sets
    it); defaults to 1 — parallelism is opt-in because fork-based
    fan-out only pays off on universes large enough to amortize it.
    An unparsable value falls back to 1 with a one-time warning.
    """
    value = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(value))
    except ValueError:
        if value not in _WARNED_WORKER_VALUES:
            _WARNED_WORKER_VALUES.add(value)
            warnings.warn(
                f"REPRO_WORKERS={value!r} is not an integer; "
                "falling back to 1 worker",
                RuntimeWarning,
                stacklevel=2,
            )
        return 1


def set_default_workers(workers: int) -> None:
    os.environ["REPRO_WORKERS"] = str(max(1, int(workers)))


def default_task_timeout() -> Optional[float]:
    """Per-chunk supervision timeout (``REPRO_TASK_TIMEOUT`` seconds;
    0 or unparsable disables the timeout)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT")
    if not raw:
        return _DEFAULT_TASK_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        return _DEFAULT_TASK_TIMEOUT
    return value if value > 0 else None


def _apply_fault_hooks(index: int) -> None:
    """Worker-side fault injection (see module docstring)."""
    if faults.fire("worker.kill", index=index) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    delay = faults.fire("worker.delay", index=index)
    if delay is not None and delay.seconds > 0:
        time.sleep(delay.seconds)


def _supervised_call(batch: Sequence[Tuple[int, Any]]) -> List[Any]:
    """Pool entry point: run the installed task over one chunk."""
    task = _STATE.task
    assert task is not None
    results: List[Any] = []
    for index, item in batch:
        _apply_fault_hooks(index)
        results.append(task(item))
    # Persist this chunk's chase/verdict traffic before the worker is
    # potentially recycled — the store's writes are multi-process safe.
    flush_active_store()
    return results


class ParallelUniverseRunner:
    """Maps a task function over items with deterministic merge order
    and supervised fault recovery (see module docstring).

    *on_fault* selects the recovery policy for dead/stuck workers:
    ``"retry"`` (default; also via ``REPRO_ON_FAULT``) re-executes
    affected chunks serially in the parent, ``"raise"`` raises
    :class:`WorkerFault` at the first fault.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        task_timeout: Optional[float] = None,
        on_fault: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.chunk_size = chunk_size
        self.task_timeout = (
            default_task_timeout() if task_timeout is None else
            (task_timeout if task_timeout > 0 else None)
        )
        self.on_fault = on_fault or os.environ.get("REPRO_ON_FAULT", "retry")
        if self.on_fault not in ("retry", "raise"):
            raise ValueError(f"on_fault must be 'retry' or 'raise', got {self.on_fault!r}")

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available() and not _STATE.in_worker

    def map(
        self,
        task: Callable[[Item], Result],
        items: Iterable[Item],
        *,
        shared: Any = None,
        budget: Optional[Budget] = None,
    ) -> List[Result]:
        """``[task(item) for item in items]`` with optional fan-out.

        *task* must be a module-level (picklable) callable when the
        runner is parallel; *shared* is published through
        :func:`get_shared` in both modes.  Results always come back in
        input order.
        """
        return list(self.map_iter(task, items, shared=shared, budget=budget))

    def map_iter(
        self,
        task: Callable[[Item], Result],
        items: Iterable[Item],
        *,
        shared: Any = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[Result]:
        """Lazy :meth:`map`: results stream back in input order.

        In serial mode each task runs only when its result is
        consumed, so a caller that stops early (a checker returning at
        the first violation) does no extra work; in parallel mode the
        pool races ahead but abandoning the iterator tears it down.

        *budget* (default: the ambient one) is charged one instance
        per merged result and its deadline/RSS limits are checked
        between results; workers inherit it through the pool
        initializer so chase-step caps apply inside tasks too.
        """
        stats = engine_stats()
        if budget is None:
            budget = current_budget()
        previous = _STATE.shared
        _STATE.shared = shared
        count = 0
        try:
            if not self.parallel:
                with stats.phase("universe.serial"):
                    for item in items:
                        if budget is not None:
                            budget.charge_instances()
                        yield task(item)
                        count += 1
                return
            materialized: Sequence[Item] = (
                items if isinstance(items, (list, tuple)) else list(items)
            )
            with stats.phase("universe.parallel"):
                for result in self._supervised_map(
                    task, materialized, shared, budget
                ):
                    if budget is not None:
                        budget.charge_instances()
                    yield result
                    count += 1
        finally:
            _STATE.shared = previous
            stats.count_instances(count)
            flush_active_store()

    # -- supervised parallel dispatch --------------------------------

    def _supervised_map(
        self,
        task: Callable[[Item], Result],
        materialized: Sequence[Item],
        shared: Any,
        budget: Optional[Budget],
    ) -> Iterator[Result]:
        chunk = self.chunk_size or max(
            1, len(materialized) // (self.workers * 4)
        )
        indexed = list(enumerate(materialized))
        batches: List[List[Tuple[int, Item]]] = [
            indexed[start : start + chunk]
            for start in range(0, len(indexed), chunk)
        ]
        context = multiprocessing.get_context("fork")
        with _POOL_CREATE_LOCK:
            pool = context.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(shared, task, budget, active_backend()),
            )
        pool_alive = True
        condemned = False
        try:
            known_pids = self._worker_pids(pool)
            pending = [
                pool.apply_async(_supervised_call, (batch,)) for batch in batches
            ]
            for batch, async_result in zip(batches, pending):
                batch_results: Optional[List[Result]] = None
                if pool_alive and not condemned:
                    outcome = self._await(async_result, pool, known_pids, budget)
                    if outcome == "ready":
                        try:
                            batch_results = async_result.get()
                        except Exception:
                            # The task genuinely raised inside the worker.
                            # Replay serially below so the exception
                            # surfaces at its exact serial merge position.
                            batch_results = None
                    else:
                        engine_stats().count_worker_fault()
                        if self.on_fault == "raise":
                            raise WorkerFault(
                                f"pool worker fault ({outcome}) while "
                                f"processing tasks "
                                f"{batch[0][0]}..{batch[-1][0]}",
                                kind=outcome,
                                first_task=batch[0][0],
                            )
                        condemned = True
                        pool.terminate()
                        pool.join()
                        pool_alive = False
                if batch_results is None and condemned and not pool_alive:
                    # Harvest chunks that completed before condemnation.
                    if async_result.ready():
                        try:
                            batch_results = async_result.get()
                        except Exception:
                            batch_results = None
                if batch_results is not None:
                    yield from batch_results
                else:
                    # Serial re-execution in the parent: recovers work
                    # lost to dead/stuck workers and replays genuine
                    # task exceptions in serial order.  Fault-injection
                    # hooks are worker-only, so recovery is clean.
                    for _, item in batch:
                        yield task(item)
        finally:
            if pool_alive:
                pool.terminate()
                pool.join()

    def _await(
        self,
        async_result: Any,
        pool: Any,
        known_pids: Optional[set],
        budget: Optional[Budget],
    ) -> str:
        """Wait for one chunk: ``"ready"`` | ``"died"`` | ``"timeout"``."""
        started = time.monotonic()
        while True:
            async_result.wait(_POLL_INTERVAL)
            if async_result.ready():
                return "ready"
            if budget is not None:
                budget.check()  # propagates DeadlineExceeded to the merge
            if known_pids is not None and self._pool_faulted(pool, known_pids):
                return "died"
            if (
                self.task_timeout is not None
                and time.monotonic() - started > self.task_timeout
            ):
                return "timeout"

    @staticmethod
    def _worker_pids(pool: Any) -> Optional[set]:
        processes = getattr(pool, "_pool", None)
        if processes is None:
            return None
        return {process.pid for process in processes}

    @staticmethod
    def _pool_faulted(pool: Any, known_pids: set) -> bool:
        """Did any worker die?  Catches both a just-dead worker (exit
        code set) and one the pool already replaced (pid set drift)."""
        processes = list(getattr(pool, "_pool", ()) or ())
        if any(process.exitcode is not None for process in processes):
            return True
        return {process.pid for process in processes} != known_pids
