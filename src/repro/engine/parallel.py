"""Deterministic parallel fan-out over instance universes.

A :class:`ParallelUniverseRunner` chunks a stream of work items (most
often instances from :func:`repro.workloads.power_instances`, or the
per-instance tasks of a bounded checker) across a ``multiprocessing``
pool and merges results back in input order, so every caller sees
exactly the sequence a serial loop would produce.

Three rules keep this safe and reproducible:

* the pool uses the ``fork`` start method and is created *after* the
  shared context is published, so workers inherit large read-only
  payloads (universes, witness pools, mappings) for free instead of
  pickling them per task;
* results are collected with ``imap`` (ordered) — never
  ``imap_unordered`` — so merge order is the input order regardless
  of worker scheduling;
* with ``workers <= 1``, on platforms without ``fork``, or inside an
  existing worker, the runner degrades to a plain serial loop over
  the same task function, which is how serial/parallel equivalence is
  guaranteed by construction.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.engine.instrumentation import engine_stats

Item = TypeVar("Item")
Result = TypeVar("Result")

_SHARED: Any = None
_IN_WORKER = False


def get_shared() -> Any:
    """The context published by the current :meth:`map` call (task
    functions running in workers read their big arguments here)."""
    return _SHARED


def _worker_init(shared: Any) -> None:
    global _SHARED, _IN_WORKER
    _SHARED = shared
    _IN_WORKER = True


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """The engine-wide default worker count.

    Controlled by ``REPRO_WORKERS`` (the CLI's ``--workers`` flag sets
    it); defaults to 1 — parallelism is opt-in because fork-based
    fan-out only pays off on universes large enough to amortize it.
    """
    value = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def set_default_workers(workers: int) -> None:
    os.environ["REPRO_WORKERS"] = str(max(1, int(workers)))


class ParallelUniverseRunner:
    """Maps a task function over items with deterministic merge order."""

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.chunk_size = chunk_size

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available() and not _IN_WORKER

    def map(
        self,
        task: Callable[[Item], Result],
        items: Iterable[Item],
        *,
        shared: Any = None,
    ) -> List[Result]:
        """``[task(item) for item in items]`` with optional fan-out.

        *task* must be a module-level (picklable) callable when the
        runner is parallel; *shared* is published through
        :func:`get_shared` in both modes.  Results always come back in
        input order.
        """
        return list(self.map_iter(task, items, shared=shared))

    def map_iter(
        self,
        task: Callable[[Item], Result],
        items: Iterable[Item],
        *,
        shared: Any = None,
    ) -> Iterator[Result]:
        """Lazy :meth:`map`: results stream back in input order.

        In serial mode each task runs only when its result is
        consumed, so a caller that stops early (a checker returning at
        the first violation) does no extra work; in parallel mode the
        pool races ahead but abandoning the iterator tears it down.
        """
        global _SHARED
        stats = engine_stats()
        previous = _SHARED
        _SHARED = shared
        count = 0
        try:
            if not self.parallel:
                with stats.phase("universe.serial"):
                    for item in items:
                        yield task(item)
                        count += 1
                return
            materialized: Sequence[Item] = (
                items if isinstance(items, (list, tuple)) else list(items)
            )
            chunk = self.chunk_size or max(
                1, len(materialized) // (self.workers * 4)
            )
            context = multiprocessing.get_context("fork")
            with stats.phase("universe.parallel"):
                with context.Pool(
                    processes=self.workers,
                    initializer=_worker_init,
                    initargs=(shared,),
                ) as pool:
                    for result in pool.imap(task, materialized, chunksize=chunk):
                        yield result
                        count += 1
        finally:
            _SHARED = previous
            stats.count_instances(count)
