"""The SQL execution backend: the chase and homomorphism joins in SQLite.

The object and kernel backends hold every fact in Python memory, which
caps chases at instance sizes where rebuilding a fact-indexed
``Instance`` per firing is affordable.  This backend (``backend="sql"``,
CLI ``--backend sql``, env ``REPRO_BACKEND=sql``) lowers instances into
SQLite tables and runs the hot loops as SQL:

* **Tagged id encoding.**  Every term is interned once in the
  engine-wide :class:`~repro.engine.kernel.InternTable`; its SQL value
  is ``2*id`` for constants and ``2*id + 1`` for labeled nulls and
  logic variables.  The parity bit makes ``Constant(x)`` premises a
  ``% 2 = 0`` predicate and lets *existential* tgds chase inside the
  database — the one thing :mod:`repro.export.sql` (which renders
  nulls as lossy SQL ``NULL``) cannot express.  Decoding is a table
  lookup, so results round-trip exactly.

* **Set-based chase rounds.**  For full tgds the restricted chase's
  final fact set equals the per-conclusion-atom closure — a match
  that does not fire found all its conclusion atoms already present —
  so each dependency becomes ``INSERT INTO target SELECT … EXCEPT
  SELECT …`` over a premise join compiled from the same
  :class:`~repro.engine.compile.CompiledPremise` plans the kernel
  uses.  The exact serial firing count (budget and ``max_steps``
  accounting) is recovered set-wise: a match fires iff it is the
  *first*, in the object backend's sorted match order, to produce
  some fact absent from the initial instance — one ``ROW_NUMBER()``
  window over the match table.  Existential tgds (and traced chases)
  run per match against the live tables, with ``EXISTS`` conclusion
  checks and fresh nulls from the caller's
  :class:`~repro.chase.standard.NullFactory`, so null names — and
  therefore rendered reports — are byte-identical to the other
  backends.

* **Homomorphism checks as conjunctive queries.**  Enumeration runs
  one ``SELECT`` per pattern and re-sorts rows by the join plan's
  image-fact keys, reconstructing the object backend's DFS yield
  order exactly.  Existence (``solutions_contained``) decomposes the
  source into connected components on shared nulls: ground facts
  become one ``EXCEPT``-subset probe per relation, each component an
  ``EXISTS`` query.  Patterns beyond SQLite's join width fall back to
  the (order-identical) kernel search, and so do operations whose
  operands hold fewer than ``REPRO_SQL_MIN_FACTS`` facts — statement
  round-trips dominate tiny searches, and sweeps run millions of
  them.

* **Governance.**  A SQLite progress handler polls the ambient
  :class:`~repro.engine.budget.Budget` every few thousand VM ops, so
  deadlines interrupt mid-statement; chase-step caps are charged from
  the pre-counted firing totals before any insert runs.  Statements
  consult the ``sql.exec`` fault point and retry once on failure.
  Counters (``sql_statements``, ``sql_chase_firings``, …) surface on
  :func:`~repro.engine.instrumentation.engine_stats`.

Connections are per process *and thread* (forked pool workers and the
service daemon's job threads each open their own), against
``:memory:`` by default or the scratch file named by ``REPRO_SQL_DB``
(CLI ``--sql-db``).  Everything here is exact acceleration: verdicts,
witnesses, chase results, and their order are identical across
backends.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Term
from repro.engine import faults
from repro.engine.budget import current_budget
from repro.engine.cache import register_reset_hook
from repro.engine.compile import CompiledPremise
from repro.engine.instrumentation import engine_stats
from repro.engine.kernel import (
    InternTable,
    compiled_premise,
    intern_table,
    kernel_all_homomorphisms,
    kernel_has_homomorphism,
    small_id,
    sorted_premise_matches,
)
from repro.errors import BudgetExceeded, ChaseError

#: Widest pattern compiled to one SQL join (SQLite caps joins at 64
#: tables; match ordering adds one terms-table join per variable).
#: Wider patterns — instance-sized homomorphism sources, mostly — fall
#: back to the kernel search, which yields the same results in the
#: same order.
_MAX_JOIN_ATOMS = 24

#: Below this many rows a table gets no secondary indexes — SQLite's
#: automatic transient indexes beat maintaining real ones for the
#: sweep-sized instances the backend sees by the thousands.
_INDEX_MIN_ROWS = 512

#: VM ops between budget probes of the progress handler.
_PROGRESS_OPS = 4_000

#: Live-table watermark; crossing it between operations recycles the
#: connection so an unbounded sweep cannot grow the schema forever.
_MAX_LIVE_TABLES = 20_000

#: Lowered-instance LRU capacity.  SQLite's CREATE TABLE cost grows
#: with the number of tables already in the schema, so sweeps over
#: thousands of tiny instances must not let the schema grow without
#: bound: past this many cached instances the coldest ones hand their
#: tables back to the per-arity free pool (a DELETE, not a DROP) and
#: are re-lowered on their next use.
_MAX_LIVE_INSTANCES = 1_024


#: Below this many instance facts the SQL plan cannot win: lowering
#: the instance and round-tripping a handful of statements costs more
#: than the whole in-memory search, so tiny operands route to the
#: (order-identical) kernel.  ``REPRO_SQL_MIN_FACTS`` overrides; 0
#: forces every operation through SQL (the property suite does this).
_SQL_MIN_FACTS = 128


def default_sql_db() -> Optional[str]:
    """The scratch database path (``REPRO_SQL_DB``; the CLI's
    ``--sql-db`` flag sets it), or None for per-process ``:memory:``."""
    value = os.environ.get("REPRO_SQL_DB", "").strip()
    return value or None


def sql_min_facts() -> int:
    """The small-operand routing threshold (``REPRO_SQL_MIN_FACTS``)."""
    raw = os.environ.get("REPRO_SQL_MIN_FACTS", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return _SQL_MIN_FACTS


# -- encoding --------------------------------------------------------------


def encode_term(term: Term, intern: InternTable) -> int:
    """The tagged SQL id of *term*: ``2*id`` for constants, ``2*id+1``
    for nulls and variables, over the engine-wide intern table."""
    tid = intern.intern(term)
    return tid * 2 if intern.is_const(tid) else tid * 2 + 1


def decode_id(tagged: int, intern: InternTable) -> Term:
    """The term behind a tagged SQL id."""
    return intern.term(tagged >> 1)


# -- the per-thread runtime ------------------------------------------------

_LOCAL = threading.local()
_GENERATION = 0
_RUNTIME_SEQ = itertools.count()


class _SqlRuntime:
    """One thread's SQLite connection plus its lowered-instance caches.

    Forked workers and daemon job threads never share a connection:
    :func:`_runtime` keys on (pid, thread, cache generation) and
    rebuilds on any mismatch.  All table names carry a per-runtime
    prefix, so several runtimes can share one ``REPRO_SQL_DB`` file.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.generation = _GENERATION
        self.seq = next(_RUNTIME_SEQ)
        self.prefix = f"repro{self.pid}_{self.seq}_"
        self.path = default_sql_db()
        self.conn = sqlite3.connect(
            self.path or ":memory:", cached_statements=512
        )
        self.conn.isolation_level = None  # autocommit; the chase is the journal
        cursor = self.conn
        if self.path is None:
            cursor.execute("PRAGMA journal_mode=OFF")
        else:
            cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=OFF")
        cursor.execute("PRAGMA temp_store=MEMORY")
        cursor.execute("PRAGMA cache_size=-65536")
        if self.path is not None and self.seq == 0:
            self._drop_stale_tables()
        self._budget_error: Optional[BudgetExceeded] = None
        self.conn.set_progress_handler(self._on_progress, _PROGRESS_OPS)
        self.ntables = 0
        self._pins = 0
        self.epoch = 0
        # per-arity free pool of empty tables; reuse beats DDL because
        # CREATE TABLE is O(schema size) while DELETE FROM is O(rows)
        self.pool: Dict[int, List[str]] = {}
        self._table_seq = itertools.count()
        self._sid = itertools.count()
        self.terms_table = f"{self.prefix}terms"
        self.conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self.terms_table} "
            "(tid INTEGER PRIMARY KEY, kind INTEGER, skey TEXT)"
        )
        self._terms_flushed = 0
        # content- and identity-keyed SqlInstance memos (fork/thread
        # local by construction: they live on the runtime); the content
        # memo is LRU-ordered so cold instances can be evicted
        self.instances: "OrderedDict[FrozenSet[Atom], SqlInstance]" = OrderedDict()
        self.by_id: Dict[int, Tuple["weakref.ref[Instance]", "SqlInstance"]] = {}
        self.match_memo: Dict[Tuple[int, int], Tuple[Dict[Term, Term], ...]] = {}

    def _drop_stale_tables(self) -> None:
        """Scratch-file hygiene: drop tables left by a dead process
        that had this pid (pid reuse).  Only the first runtime of a
        process may do this — later ones would nuke live siblings."""
        stale = [
            name
            for (name,) in self.conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name LIKE ?",
                (f"repro{self.pid}_%",),
            )
        ]
        for name in stale:
            self.conn.execute(f"DROP TABLE IF EXISTS {name}")

    # -- governance --------------------------------------------------

    def _on_progress(self) -> int:
        budget = current_budget()
        if budget is None:
            return 0
        try:
            budget.check()
        except BudgetExceeded as error:
            self._budget_error = error
            return 1
        return 0

    def _raise_pending_budget(self) -> None:
        if self._budget_error is not None:
            error, self._budget_error = self._budget_error, None
            raise error from None

    # -- statement execution (fault point + budget rethrow) ----------

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        engine_stats().bump("sql_statements")
        # fire() counts the injection itself; an injected fault stands
        # in for a failed first attempt, so only the retry runs.
        if faults.fire("sql.exec") is None:
            try:
                return self.conn.execute(sql, params)
            except sqlite3.Error:
                self._raise_pending_budget()
        engine_stats().bump("sql_retries")
        try:
            return self.conn.execute(sql, params)
        except sqlite3.Error:
            self._raise_pending_budget()
            raise

    def executemany(self, sql: str, rows: Sequence[Sequence]) -> None:
        engine_stats().bump("sql_statements")
        if faults.fire("sql.exec") is None:
            try:
                self.conn.executemany(sql, rows)
                return
            except sqlite3.Error:
                self._raise_pending_budget()
        engine_stats().bump("sql_retries")
        try:
            self.conn.executemany(sql, rows)
        except sqlite3.Error:
            self._raise_pending_budget()
            raise

    # -- tables ------------------------------------------------------

    def create_table(self, arity: int) -> str:
        free = self.pool.get(arity)
        if free:
            return free.pop()
        name = f"{self.prefix}t{next(self._table_seq)}"
        if arity:
            columns = ", ".join(f"c{i} INTEGER" for i in range(arity))
            key = ", ".join(f"c{i}" for i in range(arity))
            self.execute(
                f"CREATE TABLE {name} ({columns}, "
                f"PRIMARY KEY ({key})) WITHOUT ROWID"
            )
        else:
            self.execute(f"CREATE TABLE {name} (c0 INTEGER PRIMARY KEY)")
        self.ntables += 1
        return name

    def release_table(self, name: str, arity: int) -> None:
        """Hand a table back to the per-arity free pool.

        Housekeeping runs on the raw connection — outside the fault
        plane and the statement counters — so cleanup can neither be
        fault-injected nor mask an in-flight exception with a second
        budget trip.  A table whose DELETE fails is dropped (or, at
        worst, leaked until the next recycle) rather than pooled dirty.
        """
        try:
            self.conn.execute(f"DELETE FROM {name}")
        except sqlite3.Error:
            try:
                self.conn.execute(f"DROP TABLE IF EXISTS {name}")
                self.ntables -= 1
            except sqlite3.Error:
                pass
            return
        self.pool.setdefault(arity, []).append(name)

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {name}")
        self.ntables -= 1

    def insert_rows(
        self, table: str, arity: int, rows: Sequence[Tuple[int, ...]]
    ) -> None:
        holes = ", ".join("?" for _ in range(max(arity, 1)))
        self.executemany(
            f"INSERT OR IGNORE INTO {table} VALUES ({holes})", rows
        )

    def temp_name(self) -> str:
        return f"{self.prefix}m{next(self._table_seq)}"

    # -- the terms side table (for SQL-native match ordering) --------

    def flush_terms(self) -> None:
        intern = intern_table()
        total = len(intern)
        if self._terms_flushed >= total:
            return
        rows = []
        for tid in range(self._terms_flushed, total):
            kind, skey = intern.term(tid).sort_key()
            tagged = tid * 2 if intern.is_const(tid) else tid * 2 + 1
            rows.append((tagged, kind, skey))
        self.executemany(
            f"INSERT OR IGNORE INTO {self.terms_table} VALUES (?, ?, ?)", rows
        )
        self._terms_flushed = total

    # -- lifecycle ---------------------------------------------------

    @contextmanager
    def pinned(self) -> Iterator[None]:
        """Hold the runtime stable across a multi-instance operation.

        Recycling (table-watermark housekeeping) only happens at pin
        acquisition with no pins held, so an operation that loaded one
        instance can safely load a second.  The epoch stamp advances
        here too: instances touched under the current outermost pin
        carry the current epoch and are exempt from LRU eviction."""
        if self._pins == 0:
            self.epoch += 1
            if self.ntables > _MAX_LIVE_TABLES:
                self.recycle()
        self._pins += 1
        try:
            yield
        finally:
            self._pins -= 1

    def recycle(self) -> None:
        """Drop every lowered instance and start from a fresh schema."""
        try:
            if self.path is not None:
                # :memory: dies with the connection; a shared scratch
                # file keeps our tables unless we drop them ourselves
                for (name,) in self.conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table' "
                    "AND name LIKE ?",
                    (f"{self.prefix}%",),
                ).fetchall():
                    self.conn.execute(f"DROP TABLE IF EXISTS {name}")
            self.conn.close()
        except sqlite3.Error:
            pass
        engine_stats().bump("sql_recycles")
        self.__init__()  # re-open with a fresh prefix

    def close(self) -> None:
        try:
            self.conn.close()
        except sqlite3.Error:
            pass


def _runtime() -> _SqlRuntime:
    rt: Optional[_SqlRuntime] = getattr(_LOCAL, "runtime", None)
    if (
        rt is None
        or rt.pid != os.getpid()
        or rt.generation != _GENERATION
        or rt.path != default_sql_db()
    ):
        if rt is not None and rt.pid == os.getpid():
            # same process, stale generation or retargeted REPRO_SQL_DB;
            # a forked child must NOT close the inherited connection
            rt.close()
        rt = _SqlRuntime()
        _LOCAL.runtime = rt
    return rt


def _reset_sql_runtime() -> None:
    """Reset-hook body: invalidate every runtime in the process.

    Other threads' runtimes cannot be closed from here (SQLite
    connections are thread-affine); bumping the generation makes each
    thread rebuild on next use, and this thread's is closed eagerly so
    a benchmark's cold run after ``reset_all_caches()`` is cold."""
    global _GENERATION
    _GENERATION += 1
    rt: Optional[_SqlRuntime] = getattr(_LOCAL, "runtime", None)
    if rt is not None and rt.pid == os.getpid():
        rt.close()
        _LOCAL.runtime = None


register_reset_hook(_reset_sql_runtime)


# -- lowered instances -----------------------------------------------------


class SqlInstance:
    """One instance lowered to per-(relation, arity) SQLite tables.

    Tables are sets (``PRIMARY KEY`` over all columns, ``WITHOUT
    ROWID``) of tagged ids.  ``counts`` holds facts per relation name
    (all arities), feeding the compiled join planner the same extents
    the object backend's ordering heuristic sees.
    """

    __slots__ = ("sid", "tables", "counts", "nfacts", "hom_memo", "epoch")

    def __init__(self, rt: _SqlRuntime, facts: FrozenSet[Atom]) -> None:
        intern = intern_table()
        grouped: Dict[Tuple[str, int], List[Tuple[int, ...]]] = {}
        counts: Dict[str, int] = {}
        for fact in facts:
            key = (fact.relation, fact.arity)
            # arity-0 facts get the sentinel row (0,): the table's one
            # possible row, present iff the nullary fact holds
            grouped.setdefault(key, []).append(
                tuple(encode_term(arg, intern) for arg in fact.args) or (0,)
            )
            counts[fact.relation] = counts.get(fact.relation, 0) + 1
        tables: Dict[Tuple[str, int], str] = {}
        for (relation, arity), rows in grouped.items():
            table = rt.create_table(arity)
            rt.insert_rows(table, arity, rows)
            if len(rows) >= _INDEX_MIN_ROWS:
                for position in range(1, arity):
                    # IF NOT EXISTS: a pool-reused table may carry its
                    # indexes from a previous tenant
                    rt.execute(
                        f"CREATE INDEX IF NOT EXISTS {table}_i{position} "
                        f"ON {table}(c{position})"
                    )
            tables[(relation, arity)] = table
        self.sid = next(rt._sid)
        self.tables = tables
        self.counts = counts
        self.nfacts = len(facts)
        self.hom_memo: Dict[int, bool] = {}
        self.epoch = rt.epoch
        engine_stats().bump("sql_instances_loaded")


def sql_instance(instance: Instance) -> SqlInstance:
    """The (memoized) lowered form of *instance* in this thread's DB."""
    rt = _runtime()
    entry = rt.by_id.get(id(instance))
    if entry is not None:
        sinst = entry[1]
        if sinst.tables is not None:
            rt.instances.move_to_end(instance.facts)
            sinst.epoch = rt.epoch
            return sinst
        rt.by_id.pop(id(instance), None)  # evicted; re-lower below
    sinst = sql_instance_for_facts(instance.facts)
    key = id(instance)
    ref = weakref.ref(instance, lambda _r, _k=key: rt.by_id.pop(_k, None))
    rt.by_id[key] = (ref, sinst)
    return sinst


def sql_instance_for_facts(facts: FrozenSet[Atom]) -> SqlInstance:
    rt = _runtime()
    sinst = rt.instances.get(facts)
    if sinst is None:
        sinst = SqlInstance(rt, facts)
        rt.instances[facts] = sinst
        _evict_cold(rt)
    else:
        rt.instances.move_to_end(facts)
        sinst.epoch = rt.epoch
    return sinst


def _evict_cold(rt: _SqlRuntime) -> None:
    """Release the coldest lowered instances past the LRU capacity.

    Instances stamped with the current pin epoch belong to an
    operation still in flight and are never evicted; everything older
    hands its tables back to the free pool.  An evicted instance's
    ``tables`` is poisoned to ``None`` so any stale identity-memo hit
    fails loudly instead of querying a reassigned table.
    """
    while len(rt.instances) > _MAX_LIVE_INSTANCES:
        facts, sinst = next(iter(rt.instances.items()))
        if sinst.epoch == rt.epoch:
            break  # the whole cold end is pinned by the current op
        del rt.instances[facts]
        for (_, arity), table in sinst.tables.items():
            rt.release_table(table, arity)
        sinst.tables = None
        engine_stats().bump("sql_evictions")


# -- premise joins ---------------------------------------------------------


def _premise_query(
    compiled: CompiledPremise,
    sinst: SqlInstance,
    base_tagged: Dict[int, int],
) -> Optional[Tuple[str, List[str], Dict[int, str]]]:
    """FROM/WHERE for a compiled pattern over *sinst*, or None when an
    atom's (relation, arity) extent is empty (no matches exist).

    Returns ``(from_sql, predicates, slot_expr)``; ``slot_expr`` maps
    each slot occurring in the atoms to its defining column, which is
    how callers project variables out of the join.
    """
    from_parts: List[str] = []
    preds: List[str] = []
    slot_expr: Dict[int, str] = {}
    for index, catom in enumerate(compiled.catoms):
        table = sinst.tables.get((catom.relation, catom.arity))
        if table is None:
            return None
        alias = f"a{index}"
        from_parts.append(f"{table} AS {alias}")
        for position, is_const, value in catom.ops:
            column = f"{alias}.c{position}"
            if is_const:
                preds.append(f"{column} = {value * 2}")
            else:
                expr = slot_expr.get(value)
                if expr is None:
                    slot_expr[value] = column
                    bound = base_tagged.get(value)
                    if bound is not None:
                        preds.append(f"{column} = {bound}")
                else:
                    preds.append(f"{expr} = {column}")
    for slot in compiled.const_slots:
        # parity = constness; pre-bound slots were checked by the caller
        if slot in slot_expr and slot not in base_tagged:
            preds.append(f"{slot_expr[slot]} % 2 = 0")
    for left, right in compiled.ineq_pairs:
        left_expr = slot_expr.get(left) or (
            str(base_tagged[left]) if left in base_tagged else None
        )
        right_expr = slot_expr.get(right) or (
            str(base_tagged[right]) if right in base_tagged else None
        )
        if left_expr is None or right_expr is None:
            continue  # one side unbound: the object backend skips it too
        if left in base_tagged and right in base_tagged:
            continue  # both pre-bound: checked by the caller
        preds.append(f"{left_expr} <> {right_expr}")
    return ", ".join(from_parts), preds, slot_expr


def _select_sql(columns: Sequence[str], from_sql: str, preds: List[str]) -> str:
    sql = f"SELECT {', '.join(columns)} FROM {from_sql}"
    if preds:
        sql += " WHERE " + " AND ".join(preds)
    return sql


# -- homomorphism enumeration (object-order exact) ------------------------


def sql_all_homomorphisms(
    atoms: Tuple[Atom, ...],
    target: Instance,
    base: Dict[Term, Term],
    constant_vars: FrozenSet,
    inequalities: FrozenSet,
) -> Iterator[Dict[Term, Term]]:
    """The SQL twin of the object backend's backtracking search.

    One ``SELECT`` over the lowered target computes the solution set;
    rows are then sorted by the join plan's image-fact keys, which is
    exactly the order the object backend's DFS (sorted candidate scans
    along the greedy plan) yields them in.  *base* must already
    satisfy the constraints — the dispatching caller checks it.
    """
    if not atoms:
        # the empty pattern has exactly one homomorphism: *base* itself
        # (the dispatching caller already checked its constraints)
        yield dict(base)
        return
    compiled = compiled_premise(atoms, constant_vars, inequalities)
    if len(compiled.catoms) > _MAX_JOIN_ATOMS:
        engine_stats().bump("sql_fallbacks")
        yield from kernel_all_homomorphisms(
            atoms, target, base, constant_vars, inequalities
        )
        return
    if len(target.facts) < sql_min_facts():
        engine_stats().bump("sql_small_routed")
        yield from kernel_all_homomorphisms(
            atoms, target, base, constant_vars, inequalities
        )
        return
    rt = _runtime()
    intern = intern_table()
    with rt.pinned():
        sinst = sql_instance(target)
        base_tagged: Dict[int, int] = {}
        bound_mask = 0
        for term, value in base.items():
            slot = compiled.slots.get(term)
            if slot is not None:
                base_tagged[slot] = encode_term(value, intern)
                bound_mask |= 1 << slot
        parts = _premise_query(compiled, sinst, base_tagged)
        if parts is None:
            return
        from_sql, preds, slot_expr = parts
        out_slots = sorted(slot_expr)
        if out_slots:
            columns = [slot_expr[slot] for slot in out_slots]
        else:
            columns = ["1"]  # fully-ground pattern: existence only
        rows = rt.execute(_select_sql(columns, from_sql, preds)).fetchall()
    if not rows:
        return
    extents = tuple(
        sinst.counts.get(catom.relation, 0) for catom in compiled.catoms
    )
    plan = compiled.plan(extents, bound_mask)
    # The DFS yield order is lexicographic in the tuple of image facts
    # along the plan; constants contribute equal components, so sorting
    # by the slot values at each plan position (by term sort key) is
    # the same order.
    key_positions = [
        (out_slots.index(value) if out_slots else 0)
        for atom_index in plan
        for (_p, is_const, value) in compiled.catoms[atom_index].ops
        if not is_const
    ]
    key_cache: Dict[int, Tuple[int, str]] = {}

    def term_key(tagged: int) -> Tuple[int, str]:
        key = key_cache.get(tagged)
        if key is None:
            key = decode_id(tagged, intern).sort_key()
            key_cache[tagged] = key
        return key

    if out_slots:
        rows.sort(
            key=lambda row: tuple(term_key(row[pos]) for pos in key_positions)
        )
    slot_terms = compiled.slot_terms
    for row in rows:
        result = dict(base)
        for position, slot in enumerate(out_slots):
            result[slot_terms[slot]] = decode_id(row[position], intern)
        yield result


# -- sorted premise matches (chase dispatch) -------------------------------


def sql_sorted_premise_matches(dependency, instance: Instance):
    """The chase's sorted premise-match list, computed as one SQL join.

    Element- and order-identical to
    :func:`repro.chase.standard._sorted_matches`: the join computes the
    match set, Python re-sorts by the per-variable image keys the
    object backend sorts by.  Memoized per (dependency, instance
    content) on the runtime.
    """
    budget = current_budget()
    if budget is not None:
        budget.check()
    premise = dependency.premise
    if len(premise.atoms) > _MAX_JOIN_ATOMS:
        engine_stats().bump("sql_fallbacks")
        return sorted_premise_matches(dependency, instance)
    if len(instance.facts) < sql_min_facts():
        engine_stats().bump("sql_small_routed")
        return sorted_premise_matches(dependency, instance)
    rt = _runtime()
    with rt.pinned():
        sinst = sql_instance(instance)
        memo_key = (small_id(dependency), sinst.sid)
        cached = rt.match_memo.get(memo_key)
        if cached is not None:
            return cached
        compiled = compiled_premise(
            premise.atoms, premise.constant_vars, premise.inequalities
        )
        variables = dependency.premise_variables()
        matches = _fetch_matches(rt, compiled, sinst, variables)
        rt.match_memo[memo_key] = matches
        return matches


def _fetch_matches(
    rt: _SqlRuntime,
    compiled: CompiledPremise,
    sinst: SqlInstance,
    variables,
) -> Tuple[Dict[Term, Term], ...]:
    parts = _premise_query(compiled, sinst, {})
    if parts is None:
        return ()
    return _fetch_matches_from_parts(rt, compiled, parts, variables)


# -- homomorphism existence (containment checks) ---------------------------


def sql_has_homomorphism(source: Instance, target: Instance) -> bool:
    """Does an instance homomorphism *source* -> *target* exist?

    Existence is search-order independent, so this decomposes instead
    of enumerating: ground facts reduce to per-relation subset probes
    (``EXCEPT … LIMIT 1``), and the non-ground facts split into
    connected components on shared nulls, each one ``EXISTS`` query —
    which is what keeps chase-result containment affordable when the
    solutions hold thousands of facts.
    """
    budget = current_budget()
    if budget is not None:
        budget.check()
    if max(len(source.facts), len(target.facts)) < sql_min_facts():
        engine_stats().bump("sql_small_routed")
        return kernel_has_homomorphism(source, target)
    rt = _runtime()
    intern = intern_table()
    with rt.pinned():
        ssrc = sql_instance(source)
        stgt = sql_instance(target)
        verdict = ssrc.hom_memo.get(stgt.sid)
        if verdict is not None:
            return verdict
        verdict = _hom_exists(rt, intern, source, ssrc, stgt, target)
        ssrc.hom_memo[stgt.sid] = verdict
        return verdict


def _hom_exists(
    rt: _SqlRuntime,
    intern: InternTable,
    source: Instance,
    ssrc: SqlInstance,
    stgt: SqlInstance,
    target: Instance,
) -> bool:
    # 1. ground facts: every one must be a row of the target
    for (relation, arity), table in sorted(ssrc.tables.items()):
        if arity == 0:
            ground_pred = "1"
        else:
            ground_pred = " AND ".join(f"c{i} % 2 = 0" for i in range(arity))
        columns = ", ".join(f"c{i}" for i in range(max(arity, 1)))
        tgt_table = stgt.tables.get((relation, arity))
        if tgt_table is None:
            sql = f"SELECT 1 FROM {table} WHERE {ground_pred} LIMIT 1"
        else:
            sql = (
                f"SELECT {columns} FROM {table} WHERE {ground_pred} "
                f"EXCEPT SELECT {columns} FROM {tgt_table} LIMIT 1"
            )
        if rt.execute(sql).fetchone() is not None:
            return False
    # 2. non-ground facts: connected components on shared nulls
    components = _null_components(source)
    if any(len(component) > _MAX_JOIN_ATOMS for component in components):
        engine_stats().bump("sql_fallbacks")
        return kernel_has_homomorphism(source, target)
    for component in components:
        compiled = compiled_premise(
            tuple(sorted(component, key=Atom.sort_key)),
            frozenset(),
            frozenset(),
        )
        parts = _premise_query(compiled, stgt, {})
        if parts is None:
            return False
        from_sql, preds, _slot_expr = parts
        sql = _select_sql(["1"], from_sql, preds) + " LIMIT 1"
        if rt.execute(sql).fetchone() is None:
            return False
    return True


def _null_components(source: Instance) -> List[List[Atom]]:
    """Non-ground facts grouped by shared mappable terms (union-find)."""
    parents: Dict[Term, Term] = {}

    def find(term: Term) -> Term:
        root = term
        while parents[root] is not root:
            root = parents[root]
        while parents[term] is not root:
            parents[term], term = root, parents[term]
        return root

    members: List[Tuple[Atom, List[Term]]] = []
    for fact in source.sorted_facts():
        mappable = [
            arg for arg in fact.args if not isinstance(arg, Constant)
        ]
        if not mappable:
            continue  # handled by the ground subset probes
        for term in mappable:
            parents.setdefault(term, term)
        first = mappable[0]
        for term in mappable[1:]:
            parents[find(term)] = find(first)
        members.append((fact, mappable))
    grouped: Dict[Term, List[Atom]] = {}
    for fact, mappable in members:
        grouped.setdefault(find(mappable[0]), []).append(fact)
    return list(grouped.values())


# -- the chase -------------------------------------------------------------


def sql_stratified_chase(
    instance: Instance,
    dependencies: Sequence,
    *,
    null_factory,
    max_steps: int,
    trace: bool,
):
    """The stratified restricted chase, executed inside SQLite.

    Returns the same :class:`~repro.chase.standard.ChaseResult` the
    interpreter produces — same facts, same fresh-null names, and
    (when *trace* is set) the same step list — or None when a premise
    is too wide for one SQL join or the instance sits below the
    small-operand threshold, in which case the caller falls back to
    the interpreted loop.

    Full tgds run set-based (one match table + one ``INSERT … SELECT
    … EXCEPT SELECT`` per conclusion atom) unless a trace was
    requested; existential tgds run per match in the object backend's
    sorted order so fresh nulls are invented — and earlier firings
    satisfy later matches — exactly as the interpreter would.
    """
    from repro.chase.standard import ChaseResult, _apply, _record

    for dependency in dependencies:
        if len(dependency.premise.atoms) > _MAX_JOIN_ATOMS:
            engine_stats().bump("sql_fallbacks")
            return None
    if len(instance.facts) < sql_min_facts():
        # Tiny chases run faster in the interpreted loop (whose match
        # enumeration routes through the same size check).
        engine_stats().bump("sql_small_routed")
        return None
    rt = _runtime()
    budget = current_budget()
    stats = engine_stats()
    intern = intern_table()
    with rt.pinned():
        sinst = sql_instance(instance)
        working: Dict[Tuple[str, int], str] = {}
        # Working tables for every (relation, arity) a conclusion atom
        # can produce, pre-seeded with the instance's own facts there:
        # the satisfaction check runs against the *whole* working
        # instance, initial target-side facts included.
        for dependency in dependencies:
            for atom in dependency.disjuncts[0]:
                key = (atom.relation, atom.arity)
                if key in working:
                    continue
                table = rt.create_table(atom.arity)
                working[key] = table
                rows = [
                    tuple(encode_term(arg, intern) for arg in fact.args)
                    for fact in instance.facts_for(atom.relation)
                    if fact.arity == atom.arity
                ]
                if rows:
                    rt.insert_rows(table, atom.arity, rows)
        steps: List = []
        fired_total = 0
        try:
            for dependency in dependencies:
                if budget is not None:
                    budget.check()
                compiled = compiled_premise(
                    dependency.premise.atoms,
                    dependency.premise.constant_vars,
                    dependency.premise.inequalities,
                )
                parts = _premise_query(compiled, sinst, {})
                if parts is None:
                    continue
                if dependency.is_full() and not trace:
                    fired_total = _bulk_fire(
                        rt,
                        dependency,
                        compiled,
                        parts,
                        working,
                        intern,
                        fired_total,
                        max_steps,
                        budget,
                    )
                else:
                    fired_total = _match_fire(
                        rt,
                        dependency,
                        compiled,
                        parts,
                        working,
                        intern,
                        null_factory,
                        fired_total,
                        max_steps,
                        budget,
                        trace,
                        steps,
                        _apply,
                        _record,
                    )
                stats.bump("sql_chase_rounds")
            facts = set(instance.facts)
            for (relation, arity), table in working.items():
                for row in rt.execute(f"SELECT * FROM {table}"):
                    args = (
                        tuple(decode_id(value, intern) for value in row)
                        if arity
                        else ()  # the sentinel row is the nullary fact
                    )
                    facts.add(Atom(relation, args))
        finally:
            for (_, arity), table in working.items():
                rt.release_table(table, arity)
        final = Instance(frozenset(facts))
        return ChaseResult(final, final.difference(instance), tuple(steps))


def _step_overflow(max_steps: int) -> ChaseError:
    return ChaseError(
        f"chase exceeded {max_steps} steps",
        kind="chase_steps",
        limit=max_steps,
    )


def _bulk_fire(
    rt: _SqlRuntime,
    dependency,
    compiled: CompiledPremise,
    parts,
    working: Dict[Tuple[str, int], str],
    intern: InternTable,
    fired_total: int,
    max_steps: int,
    budget,
) -> int:
    """One full tgd as set operations, with the exact serial firing
    count: a match fires iff it is the first (in sorted match order)
    to produce some fact absent from the initial instance."""
    from_sql, preds, slot_expr = parts
    variables = dependency.premise_variables()
    rt.flush_terms()
    match_table = rt.temp_name()
    select_cols: List[str] = []
    order_cols: List[str] = []
    from_all = [from_sql]
    where_all = list(preds)
    for index, variable in enumerate(variables):
        expr = slot_expr[compiled.slots[variable]]
        select_cols.append(f"{expr} AS s{compiled.slots[variable]}")
        alias = f"k{index}"
        from_all.append(f"{rt.terms_table} AS {alias}")
        where_all.append(f"{alias}.tid = {expr}")
        order_cols.extend((f"{alias}.kind", f"{alias}.skey"))
    if not select_cols:
        select_cols.append("1 AS s_none")
    window = (
        f"ROW_NUMBER() OVER (ORDER BY {', '.join(order_cols)})"
        if order_cols
        else "1"
    )
    sql = (
        f"CREATE TEMP TABLE {match_table} AS "
        f"SELECT {', '.join(select_cols)}, {window} AS rn "
        f"FROM {', '.join(from_all)}"
    )
    if where_all:
        sql += " WHERE " + " AND ".join(where_all)
    rt.execute(sql)
    try:
        # Produced-value expressions per conclusion atom, grouped by
        # the (relation, arity) they land in: a fact's first producer
        # must be the minimum rn across *all* atoms that can produce
        # it, or a later match would wrongly count as novel for a fact
        # an earlier match created through a different atom.
        def value_exprs(atom: Atom) -> List[str]:
            return [
                str(2 * intern.intern(arg))
                if isinstance(arg, Constant)
                else f"s{compiled.slots[arg]}"
                for arg in atom.args
            ] or ["0"]

        produced: Dict[Tuple[str, int], List[List[str]]] = {}
        for atom in dependency.disjuncts[0]:
            produced.setdefault((atom.relation, atom.arity), []).append(
                value_exprs(atom)
            )
        branches: List[str] = []
        for (relation, arity), expr_lists in produced.items():
            table = working[(relation, arity)]
            ncols = max(arity, 1)
            inner = " UNION ALL ".join(
                "SELECT "
                + ", ".join(
                    f"{expr} AS p{i}" for i, expr in enumerate(exprs)
                )
                + f", rn FROM {match_table}"
                for exprs in expr_lists
            )
            missing = " AND ".join(
                f"w.c{i} = p.p{i}" for i in range(ncols)
            )
            group = ", ".join(f"p.p{i}" for i in range(ncols))
            branches.append(
                f"SELECT MIN(p.rn) AS rn FROM ({inner}) AS p "
                f"WHERE NOT EXISTS (SELECT 1 FROM {table} AS w "
                f"WHERE {missing}) GROUP BY {group}"
            )
        # One row per novel fact comes back; a match fires once no
        # matter how many facts it is the first to produce.
        fired = rt.execute(
            "SELECT COUNT(DISTINCT rn) FROM ("
            + " UNION ALL ".join(branches)
            + ")"
        ).fetchone()[0]
        if fired:
            if budget is not None:
                budget.charge_chase_steps(fired)
            fired_total += fired
            engine_stats().bump("sql_chase_firings", fired)
            if fired_total > max_steps:
                raise _step_overflow(max_steps)
            for atom in dependency.disjuncts[0]:
                table = working[(atom.relation, atom.arity)]
                exprs = value_exprs(atom)
                columns = ", ".join(
                    f"c{i}" for i in range(max(atom.arity, 1))
                )
                cursor = rt.execute(
                    f"INSERT INTO {table} "
                    f"SELECT {', '.join(exprs)} FROM {match_table} "
                    f"EXCEPT SELECT {columns} FROM {table}"
                )
                if cursor.rowcount > 0:
                    engine_stats().bump("sql_rows_inserted", cursor.rowcount)
    finally:
        try:
            rt.execute(f"DROP TABLE IF EXISTS temp.{match_table}")
        except sqlite3.Error:
            pass
    return fired_total


def _match_fire(
    rt: _SqlRuntime,
    dependency,
    compiled: CompiledPremise,
    parts,
    working: Dict[Tuple[str, int], str],
    intern: InternTable,
    null_factory,
    fired_total: int,
    max_steps: int,
    budget,
    trace: bool,
    steps: List,
    apply_step,
    record_step,
) -> int:
    """Per-match processing for existential (or traced) dependencies:
    the interpreter's loop, with SQL doing the match enumeration and
    the conclusion-satisfaction probes."""
    variables = dependency.premise_variables()
    sinst_matches = _fetch_matches_from_parts(rt, compiled, parts, variables)
    disjunct = dependency.disjuncts[0]
    for match in sinst_matches:
        if budget is not None:
            budget.check()
        if _conclusion_exists(rt, disjunct, match, working, intern):
            continue
        if budget is not None:
            budget.charge_chase_steps()
        added = apply_step(dependency, match, null_factory)
        for atom in added:
            table = working.get((atom.relation, atom.arity))
            if table is None:
                table = rt.create_table(atom.arity)
                working[(atom.relation, atom.arity)] = table
            rt.insert_rows(
                table,
                atom.arity,
                [
                    tuple(encode_term(arg, intern) for arg in atom.args)
                    or (0,)
                ],
            )
        fired_total += 1
        engine_stats().bump("sql_chase_firings")
        if trace:
            steps.append(record_step(dependency, match, added))
        if fired_total > max_steps:
            raise _step_overflow(max_steps)
    return fired_total


def _fetch_matches_from_parts(
    rt: _SqlRuntime, compiled: CompiledPremise, parts, variables
) -> Tuple[Dict[Term, Term], ...]:
    from_sql, preds, slot_expr = parts
    intern = intern_table()
    var_slots = [compiled.slots[variable] for variable in variables]
    if not var_slots:
        row = rt.execute(_select_sql(["1"], from_sql, preds)).fetchone()
        return ({},) if row is not None else ()
    columns = [slot_expr[slot] for slot in var_slots]
    rows = rt.execute(_select_sql(columns, from_sql, preds)).fetchall()
    cache: Dict[int, Term] = {}

    def term_of(tagged: int) -> Term:
        term = cache.get(tagged)
        if term is None:
            term = decode_id(tagged, intern)
            cache[tagged] = term
        return term

    matches = [
        {variable: term_of(row[i]) for i, variable in enumerate(variables)}
        for row in rows
    ]
    matches.sort(
        key=lambda match: tuple(match[v].sort_key() for v in variables)
    )
    return tuple(matches)


def _conclusion_exists(
    rt: _SqlRuntime,
    disjunct: Tuple[Atom, ...],
    match: Dict[Term, Term],
    working: Dict[Tuple[str, int], str],
    intern: InternTable,
) -> bool:
    """Is the conclusion satisfied under some extension of *match*?

    The SQL form of ``find_homomorphism(disjunct, working, fixed=match)``:
    frontier variables become literals, existential variables join
    columns.  Working tables exist for every conclusion atom by
    construction."""
    from_parts: List[str] = []
    preds: List[str] = []
    free_expr: Dict[Term, str] = {}
    for index, atom in enumerate(disjunct):
        table = working[(atom.relation, atom.arity)]
        alias = f"e{index}"
        from_parts.append(f"{table} AS {alias}")
        for position, arg in enumerate(atom.args):
            column = f"{alias}.c{position}"
            if isinstance(arg, Constant):
                preds.append(f"{column} = {2 * intern.intern(arg)}")
                continue
            image = match.get(arg)
            if image is not None:
                preds.append(f"{column} = {encode_term(image, intern)}")
            else:
                expr = free_expr.get(arg)
                if expr is None:
                    free_expr[arg] = column
                else:
                    preds.append(f"{expr} = {column}")
    sql = _select_sql(["1"], ", ".join(from_parts), preds) + " LIMIT 1"
    return rt.execute(sql).fetchone() is not None


__all__ = [
    "SqlInstance",
    "decode_id",
    "default_sql_db",
    "encode_term",
    "sql_all_homomorphisms",
    "sql_has_homomorphism",
    "sql_instance",
    "sql_instance_for_facts",
    "sql_min_facts",
    "sql_sorted_premise_matches",
    "sql_stratified_chase",
]
