"""Disk-persistent, content-addressed verdict/chase store.

The in-memory :class:`~repro.engine.cache.MemoCache`s make a *single*
run cheap: thousands of near-identical chase and homomorphism calls
collapse onto one computation each.  But every run — every CI job,
every re-sweep of the catalog — rebuilds those caches from nothing.
This module adds a second level below them: a SQLite-backed
:class:`VerdictStore` keyed by exactly the canonical content keys the
memo caches already use (canonical instance forms plus
:func:`~repro.engine.cache.mapping_key`), shared across runs, shards,
and CI jobs.

Layering contract:

* the memo caches stay the first level — a store probe happens only on
  a memory miss, and a store hit is immediately promoted back into the
  memory cache, so hot loops never touch the disk twice for one key;
* writes are *write-through but buffered*: ``put`` into a persistent
  cache enqueues the entry, and batches land in one SQLite transaction
  every ``flush_interval`` entries (and at sweep/process end), so the
  store can keep up with verdict-rate traffic;
* the store is a **cache, never an authority**: any SQLite error
  (locked database, read-only filesystem, disk full) is swallowed and
  counted per direction (``store_write_errors`` / ``store_read_errors``
  in ``--engine-stats``), and the sweep proceeds on computation alone;
* every row carries a SHA-256 **integrity checksum** (over cache name,
  key digest, payload, and engine stamp — see :func:`entry_checksum`);
  a row that fails verification or decoding is moved to a
  ``quarantine`` table, counted (``store_integrity_errors`` /
  ``store_quarantined``), and served as a miss, so a flipped bit or a
  torn write degrades to recomputation, never to a wrong verdict.
  ``python -m repro.cli fsck --store PATH`` audits and repairs offline
  (:mod:`repro.engine.fsck`);
* multi-process safety comes from SQLite itself (WAL journal, busy
  timeout, ``INSERT OR REPLACE`` upserts in short transactions) plus a
  fork guard: a connection is never used across a ``fork`` — workers
  detect the pid change, drop the parent's pending buffer (the parent
  flushes its own), and reopen;
* every store carries an **engine version** (:data:`ENGINE_VERSION`).
  Opening a store written by a different engine version atomically
  drops its entries — canonical forms, key layouts, and value codecs
  may have changed, and a stale entry must never be served.

Only caches with a registered value codec persist: ``chase`` (values
are :class:`~repro.datamodel.instances.Instance`, serialized with
:mod:`repro.export.serialization`) and ``verdict`` (booleans).  The
kernel backend's interned-object caches are process-local by nature
and are deliberately not persisted.

The CLI wires this up through ``--store PATH`` / ``REPRO_STORE``;
checkers install the ambient store via :func:`default_store`, and
benchmarks use the :func:`use_store` context manager.  Programmatic
installs always win over the environment: inside ``use_store(path)``
(or after ``install_store``) the ambient ``REPRO_STORE`` is ignored,
and ``use_store(None)`` is guaranteed cold even when it is set.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.engine import faults
from repro.engine.cache import (
    active_store,
    install_store,
    store_installed,
    uninstall_store,
)

#: Bump whenever cache key derivation, canonical forms, or value
#: codecs change semantics: a store written by another engine version
#: is dropped on open, never reinterpreted.
ENGINE_VERSION = "2026.08-pr8"

_BUSY_TIMEOUT_SECONDS = 5.0


# -- stable content digests ------------------------------------------------


#: Memo of composite-part encodings, keyed by the part itself.  The
#: same canonical instance forms recur in thousands of distinct memo
#: keys per sweep, and re-walking them atom by atom dominated warm
#: store probes.  The memo is keyed by ``==``/``hash`` — exactly the
#: equality the in-memory :class:`~repro.engine.cache.MemoCache`
#: already uses for its keys — so the encoding must be (and is) a
#: function of the equality class: booleans encode as their integer
#: value because ``True == 1`` is one memo key either way.
_ENCODE_MEMO: Dict[Any, str] = {}
_ENCODE_MEMO_MAX = 1 << 20


def _encode(part: Any, out: list) -> None:
    """Append a canonical, process-independent encoding of *part*.

    Handles the shapes that occur in memo-cache keys: primitives,
    tuples, frozensets (encoded sorted, so iteration order cannot
    leak in), and datamodel objects exposing ``sort_key()`` (terms and
    atoms), which are encoded through that deterministic key."""
    if isinstance(part, str):
        out.append("s:" + part)
    elif isinstance(part, (bool, int)):
        out.append(f"i:{int(part)}")
    elif part is None:
        out.append("z")
    elif isinstance(part, (tuple, list, frozenset, set)) or hasattr(
        part, "sort_key"
    ):
        out.append(_encode_composite(part))
    else:
        # Last resort: repr.  Dependency canonical forms and similar
        # frozen dataclasses render deterministically.
        out.append("r:" + repr(part))


def _encode_composite(part: Any) -> str:
    """Encode one composite part, memoized when hashable."""
    hashable = True
    try:
        cached = _ENCODE_MEMO.get(part)
    except TypeError:
        hashable, cached = False, None
    if cached is not None:
        return cached
    out: list = []
    if isinstance(part, (tuple, list)):
        out.append("(")
        for item in part:
            _encode(item, out)
        out.append(")")
    elif isinstance(part, (frozenset, set)):
        encoded = []
        for item in part:
            nested: list = []
            _encode(item, nested)
            encoded.append("\x1d".join(nested))
        out.append("{")
        out.extend(sorted(encoded))
        out.append("}")
    else:
        out.append(f"k:{type(part).__name__}:")
        _encode(part.sort_key(), out)
    result = "\x1f".join(out)
    if hashable:
        if len(_ENCODE_MEMO) >= _ENCODE_MEMO_MAX:
            _ENCODE_MEMO.clear()
        _ENCODE_MEMO[part] = result
    return result


def stable_digest(key: Any) -> str:
    """A stable hex digest of a memo-cache key (or any nesting of
    tuples / frozensets / terms / atoms).  Equal keys digest equally
    in every process — no reliance on randomized ``hash()``."""
    out: list = []
    _encode(key, out)
    return hashlib.sha256("\x1f".join(out).encode()).hexdigest()


def entry_checksum(cache_name: str, digest: str, payload: str, engine: str) -> str:
    """The per-row integrity checksum stored beside every entry.

    Covers the cache name, the key digest, the encoded payload, *and*
    the engine-version stamp, so a bit flip anywhere in a row — or a
    row transplanted between caches or keys — fails verification."""
    material = "\x1f".join((cache_name, digest, payload, engine))
    return hashlib.sha256(material.encode()).hexdigest()


# -- value codecs ----------------------------------------------------------


def _instance_encode(value: Any) -> str:
    from repro.export.serialization import instance_to_json

    return json.dumps(
        instance_to_json(value), sort_keys=True, separators=(",", ":")
    )


def _instance_decode(payload: str) -> Any:
    from repro.export.serialization import instance_from_json

    return instance_from_json(json.loads(payload))


def _bool_encode(value: Any) -> str:
    return "1" if value else "0"


def _bool_decode(payload: str) -> bool:
    return payload == "1"


#: cache name -> (encode, decode).  Only these caches persist.
_CODECS: Dict[str, Tuple[Callable[[Any], str], Callable[[str], Any]]] = {
    "chase": (_instance_encode, _instance_decode),
    "verdict": (_bool_encode, _bool_decode),
}


# -- the store -------------------------------------------------------------


@dataclass
class StoreStats:
    """Point-in-time counters for one :class:`VerdictStore`."""

    path: str
    hits: int
    misses: int
    writes: int
    write_errors: int
    read_errors: int
    integrity_errors: int
    quarantined: int
    entries: int

    def counters(self) -> Dict[str, int]:
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_writes": self.writes,
            "store_write_errors": self.write_errors,
            "store_read_errors": self.read_errors,
            "store_integrity_errors": self.integrity_errors,
            "store_quarantined": self.quarantined,
            "store_entries": self.entries,
        }

    def render(self) -> str:
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (
            f"store {os.path.basename(self.path):<16} {self.hits:>8} hits  "
            f"{self.misses:>8} misses  ({rate:>6.1%})  "
            f"{self.writes} writes  {self.entries} entries"
            + (f"  {self.write_errors} write errors" if self.write_errors else "")
            + (f"  {self.read_errors} read errors" if self.read_errors else "")
            + (
                f"  {self.quarantined} quarantined"
                if self.quarantined
                else ""
            )
        )


class VerdictStore:
    """On-disk second level for the content-addressed memo caches.

    See the module docstring for the layering and safety contract.
    The object is cheap to construct; the SQLite file is created (and
    version-checked) on first use.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        engine_version: str = ENGINE_VERSION,
        flush_interval: int = 512,
    ) -> None:
        self.path = os.fspath(path)
        self.engine_version = engine_version
        self.flush_interval = max(1, int(flush_interval))
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_errors = 0
        self.read_errors = 0
        self.integrity_errors = 0
        self.quarantined = 0
        self._pending: Dict[Tuple[str, str], str] = {}
        self._connection: Optional[sqlite3.Connection] = None
        self._pid = os.getpid()

    # -- connection management ----------------------------------------

    def _fork_guard(self) -> None:
        """Drop state inherited across a ``fork``: the parent's
        connection must never be used by the child, and the parent's
        pending buffer belongs to the parent (which flushes it
        itself).  Runs at every store entry point — not only when a
        connection is first needed — so entries the *child* buffers
        before its first ``_connect`` are never discarded with the
        inherited ones."""
        if os.getpid() != self._pid:
            self._connection = None
            self._pending = {}
            self._pid = os.getpid()

    def _connect(self) -> Optional[sqlite3.Connection]:
        """The live connection, reopened after a fork, or ``None``
        when the store file is unusable (never raised; callers count
        the failure in the direction they were going)."""
        self._fork_guard()
        if self._connection is not None:
            return self._connection
        try:
            connection = sqlite3.connect(
                self.path, timeout=_BUSY_TIMEOUT_SECONDS
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            with connection:  # one transaction: schema + version gate
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " cache TEXT NOT NULL,"
                    " key TEXT NOT NULL,"
                    " value TEXT NOT NULL,"
                    " checksum TEXT NOT NULL DEFAULT '',"
                    " engine TEXT NOT NULL DEFAULT '',"
                    " PRIMARY KEY (cache, key))"
                )
                # Stores created before the integrity columns existed
                # only lack the columns, not the data contract: the
                # engine-version gate below drops their rows anyway.
                columns = {
                    row[1]
                    for row in connection.execute("PRAGMA table_info(entries)")
                }
                for column in ("checksum", "engine"):
                    if column not in columns:
                        connection.execute(
                            f"ALTER TABLE entries ADD COLUMN {column}"
                            " TEXT NOT NULL DEFAULT ''"
                        )
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS quarantine ("
                    " cache TEXT NOT NULL,"
                    " key TEXT NOT NULL,"
                    " value TEXT NOT NULL,"
                    " checksum TEXT NOT NULL,"
                    " engine TEXT NOT NULL,"
                    " reason TEXT NOT NULL,"
                    " PRIMARY KEY (cache, key))"
                )
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS meta ("
                    " k TEXT PRIMARY KEY, v TEXT NOT NULL)"
                )
                row = connection.execute(
                    "SELECT v FROM meta WHERE k = 'engine_version'"
                ).fetchone()
                if row is None or row[0] != self.engine_version:
                    # Another engine's canonical forms: drop, restamp.
                    connection.execute("DELETE FROM entries")
                    connection.execute(
                        "INSERT OR REPLACE INTO meta (k, v)"
                        " VALUES ('engine_version', ?)",
                        (self.engine_version,),
                    )
        except sqlite3.Error:
            return None
        self._connection = connection
        return connection

    # -- the MemoCache-facing protocol ---------------------------------

    def persists(self, cache_name: str) -> bool:
        """Does this store persist entries of the named cache?"""
        return cache_name in _CODECS

    def load(self, cache_name: str, key: Any) -> Tuple[bool, Any]:
        """Probe the store for a memo key: ``(hit, decoded value)``.

        Rows read from disk are verified against their per-entry
        checksum before decoding; any failure — torn value, flipped
        bit, transplanted row, undecodable payload — quarantines the
        row and is served as a miss, so the engine recomputes instead
        of trusting (or crashing on) corrupt state."""
        codec = _CODECS.get(cache_name)
        if codec is None:
            return False, None
        self._fork_guard()
        digest = stable_digest(key)
        payload = self._pending.get((cache_name, digest))
        from_disk = False
        checksum = engine = ""
        if payload is None:
            if faults.fire("store.read") is not None:
                self.read_errors += 1
                return False, None
            connection = self._connect()
            if connection is None:
                self.read_errors += 1
                return False, None
            try:
                row = connection.execute(
                    "SELECT value, checksum, engine FROM entries"
                    " WHERE cache = ? AND key = ?",
                    (cache_name, digest),
                ).fetchone()
            except sqlite3.Error:
                self.read_errors += 1
                return False, None
            if row is not None:
                payload, checksum, engine = row
                from_disk = True
        if payload is None:
            self.misses += 1
            return False, None
        if from_disk and checksum != entry_checksum(
            cache_name, digest, payload, engine
        ):
            self._degrade_corrupt(cache_name, digest, payload, "checksum mismatch")
            return False, None
        try:
            value = codec[1](payload)
        except Exception:
            # A corrupt entry is a miss, not a crash.
            if from_disk:
                self._degrade_corrupt(
                    cache_name, digest, payload, "undecodable payload"
                )
            else:
                self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def _degrade_corrupt(
        self, cache_name: str, digest: str, payload: str, reason: str
    ) -> None:
        """A corrupt on-disk row: count it, quarantine it, serve a miss.

        The row is moved into the ``quarantine`` table (best effort —
        a locked database just leaves it in place for the next probe or
        ``fsck``), so corruption is never silently destroyed and never
        served again."""
        self.misses += 1
        self.read_errors += 1
        self.integrity_errors += 1
        connection = self._connect()
        if connection is None:
            return
        try:
            with connection:
                connection.execute(
                    "INSERT OR REPLACE INTO quarantine"
                    " (cache, key, value, checksum, engine, reason)"
                    " SELECT cache, key, value, checksum, engine, ?"
                    " FROM entries WHERE cache = ? AND key = ?",
                    (reason, cache_name, digest),
                )
                connection.execute(
                    "DELETE FROM entries WHERE cache = ? AND key = ?",
                    (cache_name, digest),
                )
        except sqlite3.Error:
            return
        self.quarantined += 1

    def save(self, cache_name: str, key: Any, value: Any) -> None:
        """Enqueue a write-through entry; lands at the next flush."""
        codec = _CODECS.get(cache_name)
        if codec is None:
            return
        self._fork_guard()
        self._pending[(cache_name, stable_digest(key))] = codec[0](value)
        if len(self._pending) >= self.flush_interval:
            self.flush()

    def flush(self) -> None:
        """Write pending entries in one transaction (best effort)."""
        self._fork_guard()
        if not self._pending:
            return
        connection = None
        if faults.fire("store.write") is None:
            connection = self._connect()
        if connection is None:
            self.write_errors += 1
            # Keep the buffer bounded even when the disk is gone.
            if len(self._pending) >= 4 * self.flush_interval:
                self._pending.clear()
            return
        batch = [
            (
                cache_name,
                digest,
                payload,
                entry_checksum(cache_name, digest, payload, self.engine_version),
                self.engine_version,
            )
            for (cache_name, digest), payload in self._pending.items()
        ]
        try:
            with connection:
                connection.executemany(
                    "INSERT OR REPLACE INTO entries"
                    " (cache, key, value, checksum, engine)"
                    " VALUES (?, ?, ?, ?, ?)",
                    batch,
                )
        except sqlite3.Error:
            self.write_errors += 1
            return
        self.writes += len(batch)
        self._pending.clear()

    def close(self) -> None:
        self.flush()
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None

    # -- introspection -------------------------------------------------

    def entry_count(self) -> int:
        connection = self._connect()
        if connection is None:
            return 0
        try:
            row = connection.execute("SELECT COUNT(*) FROM entries").fetchone()
        except sqlite3.Error:
            return 0
        return int(row[0]) + len(self._pending)

    def quarantine_count(self) -> int:
        """Rows moved to the quarantine table (by loads or ``fsck``)."""
        connection = self._connect()
        if connection is None:
            return 0
        try:
            row = connection.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()
        except sqlite3.Error:
            return 0
        return int(row[0])

    def stats(self) -> StoreStats:
        return StoreStats(
            self.path,
            self.hits,
            self.misses,
            self.writes,
            self.write_errors,
            self.read_errors,
            self.integrity_errors,
            self.quarantined,
            self.entry_count(),
        )


# -- ambient store ---------------------------------------------------------

_DEFAULT: Optional[VerdictStore] = None
_DEFAULT_PATH: Optional[str] = None


def default_store() -> Optional[VerdictStore]:
    """Install (and return) the store named by ``REPRO_STORE``.

    Memoized per path; checkers call this on entry so the environment
    knob takes effect without explicit plumbing.  A store installed
    programmatically (:func:`use_store` / ``install_store``) always
    wins over the environment — including an explicit ``None``, whose
    guaranteed-cold contract an ambient ``REPRO_STORE`` must not
    silently override."""
    global _DEFAULT, _DEFAULT_PATH
    if store_installed() and (
        _DEFAULT is None or active_store() is not _DEFAULT
    ):
        return active_store()
    path = os.environ.get("REPRO_STORE")
    if not path:
        if _DEFAULT is not None and active_store() is _DEFAULT:
            uninstall_store()
        _DEFAULT, _DEFAULT_PATH = None, None
        return active_store()
    if _DEFAULT is None or _DEFAULT_PATH != path:
        _DEFAULT = VerdictStore(path)
        _DEFAULT_PATH = path
    if active_store() is not _DEFAULT:
        install_store(_DEFAULT)
    return _DEFAULT


@contextmanager
def use_store(
    store: Union[VerdictStore, str, os.PathLike, None]
) -> Iterator[Optional[VerdictStore]]:
    """Install *store* (a :class:`VerdictStore` or a path) as the
    memo caches' second level for the enclosed block; flushes and
    restores the previous store on exit.  ``None`` disables the store
    for the block — guaranteed cold even under an ambient
    ``REPRO_STORE``, which programmatic installs always override."""
    opened: Optional[VerdictStore]
    if store is None or isinstance(store, VerdictStore):
        opened = store
    else:
        opened = VerdictStore(store)
    previous, previous_set = active_store(), store_installed()
    install_store(opened)
    try:
        yield opened
    finally:
        if opened is not None:
            opened.flush()
        if previous_set:
            install_store(previous)
        else:
            uninstall_store()


__all__ = [
    "ENGINE_VERSION",
    "StoreStats",
    "VerdictStore",
    "default_store",
    "entry_checksum",
    "stable_digest",
    "use_store",
]
