"""Symmetry reduction: sweep instance *orbits* instead of instances.

Every bounded check in the library (subset property, unique solutions,
(∼1,∼2)-inverse, soundness/faithfulness) asks a question that is
invariant under permutations of the constant domain, provided the
mappings involved mention no literal constants: the chase, homomorphism
existence, and solution-space containment all commute with a bijective
renaming of constants.  A universe of all ≤k-fact instances over a
domain D is closed under such renamings, so it partitions into orbits
of the symmetric group S_D and a sweep only needs to visit one
*representative* per orbit — a reduction by a factor approaching |D|!.

The canonical form underlying the reduction is computed with the
standard individualization–refinement scheme from graph canonization
(iterative colour refinement on the constants' occurrence structure,
with backtracking over the first non-singleton colour class to break
ties) — no external solver.  Correctness does not depend on how good
the refinement is: the backtracking minimum over all individualization
choices is orbit-invariant by construction, refinement only prunes.

Soundness rules enforced by the callers (see
:func:`repro.core.framework.subset_property` & friends):

* only *ground* universes closed under domain permutations are
  reduced (:func:`orbit_reduce` verifies closure and returns ``None``
  otherwise, which makes the sweep fall back to the full universe);
* only mappings whose dependencies mention no literal constants
  qualify (:func:`mapping_permutation_invariant`); ``Constant(x)``
  guards and inequalities are fine — permutations map constants to
  constants bijectively — but a pinned constant in an atom is not;
* pairwise quantifiers canonicalize the *outer* instance only and
  range the inner one over the full universe, the sound reduction for
  simultaneous renaming of a pair.

The same canonical forms double as content-addressed cache keys
(:func:`repro.engine.cache.cached_chase_result` consults
:func:`ground_keys_active`), so isomorphic chases and pair verdicts
hit the memo caches once per orbit across *all* sweeps of a run.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import combinations, permutations
from math import comb, factorial
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant

SYMMETRY_FULL = "full"
SYMMETRY_ORBITS = "orbits"
SYMMETRY_MODES = (SYMMETRY_FULL, SYMMETRY_ORBITS)

#: Canonical placeholder constants are named ``__g0``, ``__g1``, ...
#: (mirroring the ``__c`` prefix the null/variable canonicalizer uses).
_ORBIT_PREFIX = "__g"

#: Exact Burnside orbit counting enumerates |D|! permutations; beyond
#: this domain size the count degrades to the ``total / |D|!`` bound.
_EXACT_BURNSIDE_MAX_DOMAIN = 6


# -- mode resolution ------------------------------------------------------


def default_symmetry() -> str:
    """The engine-wide symmetry mode (``REPRO_SYMMETRY``; the CLI's
    ``--symmetry`` flag sets it).  Defaults to ``"full"`` — orbit
    sweeps are opt-in.  Unknown values fall back to ``"full"``."""
    value = os.environ.get("REPRO_SYMMETRY", SYMMETRY_FULL).strip().lower()
    return value if value in SYMMETRY_MODES else SYMMETRY_FULL


def resolve_symmetry(symmetry: Optional[str]) -> str:
    """An explicit mode, else the environment-configured default."""
    if symmetry is None:
        return default_symmetry()
    if symmetry not in SYMMETRY_MODES:
        raise ValueError(
            f"symmetry must be one of {SYMMETRY_MODES}, got {symmetry!r}"
        )
    return symmetry


# -- invariance gate ------------------------------------------------------


def mapping_permutation_invariant(mapping: Any) -> bool:
    """Is *mapping* invariant under permutations of the constants?

    True exactly when no dependency atom (premise or conclusion)
    contains a literal constant.  ``Constant(x)`` conjuncts and
    inequalities are invariant — a domain permutation is a bijection
    of constants — so they do not disqualify a mapping.
    """
    if mapping is None:
        return True
    stages = getattr(mapping, "stages", None)
    if stages:
        # A staged pipeline is invariant exactly when every stage is.
        return all(mapping_permutation_invariant(stage) for stage in stages)
    for dependency in mapping.dependencies:
        atom_groups = [dependency.premise.atoms]
        atom_groups.extend(dependency.disjuncts)
        for atoms in atom_groups:
            for current in atoms:
                if any(isinstance(arg, Constant) for arg in current.args):
                    return False
    return True


# -- ground canonical forms (individualization–refinement) ----------------

# Internal fact representation: (label, args) where *label* is any
# hashable (a relation name, or a (side, relation) pair for joint pair
# canonicalization) and *args* is the tuple of argument terms.
_RawFact = Tuple[Any, Tuple[Any, ...]]


# Encoded fact representation: the label replaced by its sortable key
# and every constant argument replaced by its dense local id — its
# index in the sorted active-constant list, so id order IS sorted
# Constant order and every ordering the search produces is identical
# to the old object-level one.  All refinement, canonical-ordering,
# and automorphism arithmetic below runs on these small ints; Constant
# objects only appear at the entry/exit boundary.
_EncodedFact = Tuple[Any, Tuple[Any, ...]]


def _encode_facts(
    facts: Sequence[_RawFact], constants: Sequence[Constant]
) -> Tuple[_EncodedFact, ...]:
    """Re-express *facts* on dense local constant ids."""
    index = {constant: position for position, constant in enumerate(constants)}
    return tuple(
        (
            _label_key(label),
            tuple(
                index[arg] if isinstance(arg, Constant) else arg
                for arg in args
            ),
        )
        for label, args in facts
    )


def _occurrence_table(
    encoded: Sequence[_EncodedFact], size: int
) -> List[List[Tuple[Any, int, Tuple[Any, ...]]]]:
    """Per-id occurrence lists: (fact label key, position, codes)."""
    table: List[List[Tuple[Any, int, Tuple[Any, ...]]]] = [
        [] for _ in range(size)
    ]
    for label, codes in encoded:
        for position, code in enumerate(codes):
            if type(code) is int:
                table[code].append((label, position, codes))
    return table


def _refine(
    colors: List[int],
    occurrences: Sequence[Sequence[Tuple[Any, int, Tuple[Any, ...]]]],
) -> List[int]:
    """Iterative colour refinement to a stable partition.

    Each round recolours every constant id by its current colour plus
    the sorted multiset of its occurrence signatures (fact label key,
    position, colour pattern of the co-occurring arguments).
    Signatures are invariant data, so the refined partition is
    orbit-invariant.
    """
    while True:
        signatures = [
            (
                colors[cid],
                tuple(
                    sorted(
                        (
                            label,
                            position,
                            tuple(
                                colors[code] if type(code) is int else -1
                                for code in codes
                            ),
                        )
                        for label, position, codes in occurrences[cid]
                    )
                ),
            )
            for cid in range(len(colors))
        ]
        ranking = {
            signature: rank
            for rank, signature in enumerate(sorted(set(signatures)))
        }
        refined = [ranking[signature] for signature in signatures]
        if refined == colors:
            return refined
        colors = refined


def _label_key(label: Any) -> Any:
    """A sortable key for fact labels (strings or nested tuples)."""
    if isinstance(label, tuple):
        return tuple(_label_key(part) for part in label)
    return str(label)


def _cells(colors: Sequence[int]) -> List[List[int]]:
    """Colour classes ordered by colour, member ids ascending."""
    grouped: Dict[int, List[int]] = {}
    for cid, color in enumerate(colors):
        grouped.setdefault(color, []).append(cid)
    return [grouped[color] for color in sorted(grouped)]


def _relabeled_form(
    encoded: Sequence[_EncodedFact], ordering: Sequence[int]
) -> Tuple[Tuple[Any, Tuple[Any, ...]], ...]:
    """The fact structure with constant ids replaced by their canonical
    indices, as a sorted tuple — the comparable 'certificate' of a
    labelling."""
    relabeled = [
        (
            label,
            tuple(
                ordering[code] if type(code) is int else code.sort_key()
                for code in codes
            ),
        )
        for label, codes in encoded
    ]
    return tuple(sorted(relabeled))


def _canonical_ordering(
    facts: Sequence[_RawFact], constants: Sequence[Constant]
) -> Dict[Constant, int]:
    """The canonical labelling of *constants*: the ordering (constant →
    index) whose relabeled fact structure is minimal over the orbit.

    Individualization–refinement with full backtracking: refine, then
    branch over every member of the first non-singleton cell; the
    minimum over all branches is independent of the input labelling.
    """
    if not constants:
        return {}
    encoded = _encode_facts(facts, constants)
    ordering = _canonical_ordering_ids(encoded, len(constants))
    return {constants[cid]: rank for cid, rank in enumerate(ordering)}


def _canonical_ordering_ids(
    encoded: Sequence[_EncodedFact], size: int
) -> List[int]:
    """:func:`_canonical_ordering` on encoded facts: the result maps
    local id → canonical index, as a dense list."""
    occurrences = _occurrence_table(encoded, size)
    best: List[Optional[Tuple[Tuple, List[int]]]] = [None]

    def search(colors: List[int]) -> None:
        colors = _refine(colors, occurrences)
        cells = _cells(colors)
        target = next((cell for cell in cells if len(cell) > 1), None)
        if target is None:
            ordering = [0] * size
            for rank, (cid,) in enumerate(cells):
                ordering[cid] = rank
            form = _relabeled_form(encoded, ordering)
            if best[0] is None or form < best[0][0]:
                best[0] = (form, ordering)
            return
        fresh = max(colors) + 1
        for choice in target:
            branched = list(colors)
            branched[choice] = fresh
            search(branched)

    search([0] * size)
    assert best[0] is not None
    return best[0][1]


def _automorphism_count(
    facts: Sequence[_RawFact], constants: Sequence[Constant]
) -> int:
    """|Aut|: permutations of the active constants fixing the fact set.

    Brute force within the refined colour classes — automorphisms
    preserve refinement colours, so only colour-respecting bijections
    need testing.  Cells are tiny for the bounded universes the
    checkers sweep (|active| ≤ |domain| ≤ ~6).
    """
    if not constants:
        return 1
    return _automorphism_count_ids(
        _encode_facts(facts, constants), len(constants)
    )


def _automorphism_count_ids(
    encoded: Sequence[_EncodedFact], size: int
) -> int:
    """:func:`_automorphism_count` on encoded facts."""
    occurrences = _occurrence_table(encoded, size)
    colors = _refine([0] * size, occurrences)
    cells = _cells(colors)
    fact_set = frozenset(encoded)
    count = 0
    for cell_perms in _cell_permutations(cells):
        perm = list(range(size))
        for cell, images in zip(cells, cell_perms):
            for source, image in zip(cell, images):
                perm[source] = image
        permuted = frozenset(
            (
                label,
                tuple(
                    perm[code] if type(code) is int else code
                    for code in codes
                ),
            )
            for label, codes in encoded
        )
        if permuted == fact_set:
            count += 1
    return count


def _cell_permutations(
    cells: Sequence[Sequence[int]],
) -> Iterator[Tuple[Tuple[int, ...], ...]]:
    """The cartesian product of per-cell permutations."""
    if not cells:
        yield ()
        return
    head, tail = cells[0], cells[1:]
    for head_perm in permutations(head):
        for rest in _cell_permutations(tail):
            yield (head_perm,) + rest


@dataclass(frozen=True)
class GroundCanonicalForm:
    """The canonical form of a ground instance under domain permutation.

    ``canonical`` relabels the active constants to the placeholders
    ``__g0, __g1, ...`` in canonical order; two ground instances are
    related by a constant bijection exactly when their ``canonical``
    fields are equal.  ``forward`` is the applied renaming (original →
    placeholder), ``automorphisms`` the order of the instance's
    automorphism group on its active constants.
    """

    canonical: Instance
    forward: Dict[Constant, Constant]
    automorphisms: int

    @property
    def active(self) -> int:
        return len(self.forward)

    def key(self) -> FrozenSet[Atom]:
        """The hashable orbit identity (the canonical fact set)."""
        return self.canonical.facts

    def orbit_size(self, domain_size: int) -> int:
        """|orbit| under S_D for a domain of *domain_size* constants."""
        return factorial(domain_size) // self.stabilizer_order(domain_size)

    def stabilizer_order(self, domain_size: int) -> int:
        """|Stab| in S_D: active automorphisms × free moves of the
        constants the instance does not mention."""
        spare = domain_size - self.active
        if spare < 0:
            raise ValueError(
                f"instance uses {self.active} constants, domain has "
                f"only {domain_size}"
            )
        return self.automorphisms * factorial(spare)


# Canonicalization is called once per cache-key construction, i.e. on
# the hot path of every chase / verdict lookup in an orbit-mode sweep;
# the same few hundred universe instances (and their pairings) recur
# thousands of times, so both entry points memoize by exact fact sets.
_FORM_MEMO: Dict[FrozenSet[Atom], GroundCanonicalForm] = {}
_PAIR_MEMO: Dict[Tuple[FrozenSet[Atom], FrozenSet[Atom]], Tuple] = {}
_FORM_MEMO_DEFAULT = 65_536
_PAIR_MEMO_DEFAULT = 262_144
_FORM_MEMO_MAX = _FORM_MEMO_DEFAULT
_PAIR_MEMO_MAX = _PAIR_MEMO_DEFAULT


def set_symmetry_memo_limit(maxsize: Optional[int]) -> None:
    """Bound the canonical-form memo tables (pushed down from
    :func:`repro.engine.cache.resize_caches`, so the CLI's
    --cache-size knob governs these memos too).  ``None`` restores
    the construction defaults."""
    global _FORM_MEMO_MAX, _PAIR_MEMO_MAX
    if maxsize is None:
        _FORM_MEMO_MAX = _FORM_MEMO_DEFAULT
        _PAIR_MEMO_MAX = _PAIR_MEMO_DEFAULT
    else:
        _FORM_MEMO_MAX = max(1, int(maxsize))
        _PAIR_MEMO_MAX = max(1, int(maxsize))
    if len(_FORM_MEMO) > _FORM_MEMO_MAX:
        _FORM_MEMO.clear()
    if len(_PAIR_MEMO) > _PAIR_MEMO_MAX:
        _PAIR_MEMO.clear()


def clear_symmetry_memos() -> None:
    """Drop the canonical-form memo tables (joined into
    :func:`repro.engine.cache.reset_all_caches`)."""
    _FORM_MEMO.clear()
    _PAIR_MEMO.clear()


def ground_canonical_form(instance: Instance) -> GroundCanonicalForm:
    """Canonicalize a *ground* instance under constant permutation."""
    cached = _FORM_MEMO.get(instance.facts)
    if cached is not None:
        return cached
    if not instance.is_ground():
        raise ValueError(
            "ground_canonical_form requires a ground instance; "
            f"got nulls/variables in {instance}"
        )
    facts: List[_RawFact] = [
        (fact.relation, fact.args) for fact in instance.sorted_facts()
    ]
    constants = sorted(instance.constants())
    # Encode once, run both the canonical-ordering search and the
    # automorphism count on the same id-tuples.
    encoded = _encode_facts(facts, constants)
    if constants:
        ordering = _canonical_ordering_ids(encoded, len(constants))
        automorphisms = _automorphism_count_ids(encoded, len(constants))
    else:
        ordering = []
        automorphisms = 1
    forward = {
        constants[cid]: Constant(f"{_ORBIT_PREFIX}{index}")
        for cid, index in enumerate(ordering)
    }
    form = GroundCanonicalForm(
        canonical=instance.substitute(forward),
        forward=forward,
        automorphisms=automorphisms,
    )
    if len(_FORM_MEMO) >= _FORM_MEMO_MAX:
        _FORM_MEMO.clear()
    _FORM_MEMO[instance.facts] = form
    return form


def ground_pair_key(
    left: Instance, right: Instance
) -> Tuple[FrozenSet[Atom], FrozenSet[Atom]]:
    """A content key for the ordered pair (left, right) that is equal
    for two pairs exactly when one *simultaneous* constant renaming
    carries one pair onto the other.

    Homomorphisms fix constants, so pairwise verdicts (solution-space
    containment, ∼M) are invariant only under renaming both sides with
    the *same* permutation — the two instances must be canonicalized
    jointly, with facts tagged by side.
    """
    memo_key = (left.facts, right.facts)
    cached = _PAIR_MEMO.get(memo_key)
    if cached is not None:
        return cached
    facts: List[_RawFact] = [
        (("L", fact.relation), fact.args) for fact in left.sorted_facts()
    ]
    facts.extend(
        (("R", fact.relation), fact.args) for fact in right.sorted_facts()
    )
    constants = sorted(
        set(left.constants()) | set(right.constants())
    )
    ordering = _canonical_ordering(facts, constants)
    forward = {
        constant: Constant(f"{_ORBIT_PREFIX}{index}")
        for constant, index in ordering.items()
    }
    key = (left.substitute(forward).facts, right.substitute(forward).facts)
    if len(_PAIR_MEMO) >= _PAIR_MEMO_MAX:
        _PAIR_MEMO.clear()
    _PAIR_MEMO[memo_key] = key
    return key


# -- witness de-canonicalization ------------------------------------------


def decanonicalize(
    witness: Instance, forward: Mapping[Constant, Constant]
) -> Instance:
    """Rename canonical placeholders of *witness* back through the
    inverse of *forward*, yielding a concrete instance over the
    original constants (placeholder-free terms pass through)."""
    backward = {placeholder: original for original, placeholder in forward.items()}
    return witness.substitute(backward)


def orbit_transport(
    source: Instance, target: Instance
) -> Optional[Dict[Constant, Constant]]:
    """A constant renaming carrying *source* onto *target*, or ``None``
    when the two ground instances are not in the same orbit.

    This is the replay map for orbit-mode reports: a violation found
    on an orbit representative transports to any member the user cares
    about via ``source.substitute(orbit_transport(source, member))``.
    """
    source_form = ground_canonical_form(source)
    target_form = ground_canonical_form(target)
    if source_form.key() != target_form.key():
        return None
    backward = {
        placeholder: original
        for original, placeholder in target_form.forward.items()
    }
    return {
        original: backward[placeholder]
        for original, placeholder in source_form.forward.items()
    }


# -- orbit-aware enumeration ----------------------------------------------


@dataclass(frozen=True)
class OrbitRepresentative:
    """One orbit of the bounded universe: a concrete representative
    instance, the number of universe members in the orbit, and the
    order of the representative's stabilizer in S_D."""

    instance: Instance
    orbit_size: int
    stabilizer_order: int


def canonical_representative(
    instance: Instance, domain: Sequence[Constant]
) -> Instance:
    """The designated orbit member: the canonical form relabeled onto
    the lexicographically-first constants of *domain*.  Equal for
    every member of an orbit, and itself a member of the orbit."""
    form = ground_canonical_form(instance)
    ordered = sorted(domain)
    relabel = {
        Constant(f"{_ORBIT_PREFIX}{index}"): ordered[index]
        for index in range(form.active)
    }
    return form.canonical.substitute(relabel)


def _coerce_domain(
    domain: Sequence[Union[str, int, Constant]]
) -> Tuple[Constant, ...]:
    return tuple(
        value if isinstance(value, Constant) else Constant(value)
        for value in domain
    )


def canonical_instances(
    schema: Schema,
    domain: Sequence[Union[str, int, Constant]],
    *,
    max_facts: int,
    include_empty: bool = True,
) -> Iterator[OrbitRepresentative]:
    """One representative per orbit of the ≤*max_facts* universe.

    Yields, lazily and in the universe's deterministic order, the
    instances that are their own orbit's canonical representative,
    together with the orbit's size (so that
    ``sum(rep.orbit_size) == |universe|``) and the representative's
    stabilizer order in S_domain.
    """
    from repro.workloads.universes import all_possible_facts

    constants = _coerce_domain(domain)
    facts = all_possible_facts(schema, constants)
    sizes = range(0 if include_empty else 1, max_facts + 1)
    domain_size = len(set(constants))
    for size in sizes:
        for chosen in combinations(facts, size):
            instance = Instance.of(chosen)
            if canonical_representative(instance, constants) != instance:
                continue
            form = ground_canonical_form(instance)
            yield OrbitRepresentative(
                instance,
                form.orbit_size(domain_size),
                form.stabilizer_order(domain_size),
            )


def count_orbits(
    facts: Sequence[Atom],
    domain: Sequence[Union[str, int, Constant]],
    *,
    max_facts: int,
    include_empty: bool = True,
) -> Optional[int]:
    """The exact number of ≤*max_facts* fact-subset orbits under S_D.

    Burnside's lemma: average, over the |D|! domain permutations, the
    number of qualifying subsets each fixes — a subset is fixed by π
    exactly when it is a union of π's cycles on the fact set, counted
    with a subset-sum DP over the cycle lengths.  Returns ``None``
    when |D| is too large for the exact count to stay cheap
    (> ``_EXACT_BURNSIDE_MAX_DOMAIN``); callers fall back to the
    ``total / |D|!`` lower-bound estimate.
    """
    constants = sorted(set(_coerce_domain(domain)))
    if len(constants) > _EXACT_BURNSIDE_MAX_DOMAIN:
        return None
    sizes = range(0 if include_empty else 1, max_facts + 1)
    fixed_total = 0
    for image in permutations(constants):
        renaming = dict(zip(constants, image))
        fixed_total += _fixed_subsets(facts, renaming, sizes)
    return fixed_total // factorial(len(constants))


def orbit_count_estimate(
    facts: Sequence[Atom],
    domain: Sequence[Union[str, int, Constant]],
    *,
    max_facts: int,
    include_empty: bool = True,
) -> Tuple[int, bool]:
    """``(count, exact)``: the orbit count when cheap to compute
    exactly, else the ``ceil(total / |D|!)`` lower bound."""
    exact = count_orbits(
        facts, domain, max_facts=max_facts, include_empty=include_empty
    )
    if exact is not None:
        return exact, True
    sizes = range(0 if include_empty else 1, max_facts + 1)
    total = sum(comb(len(facts), size) for size in sizes)
    group = factorial(len(set(_coerce_domain(domain))))
    return -(-total // group), False


def _fixed_subsets(
    facts: Sequence[Atom],
    renaming: Dict[Constant, Constant],
    sizes: range,
) -> int:
    """Subsets of *facts* with size in *sizes* fixed by *renaming*."""
    cycle_lengths = _fact_cycle_lengths(facts, renaming)
    max_size = sizes.stop - 1
    ways = [0] * (max_size + 1)
    ways[0] = 1
    for length in cycle_lengths:
        if length > max_size:
            continue
        for total in range(max_size, length - 1, -1):
            ways[total] += ways[total - length]
    return sum(ways[size] for size in sizes)


def _fact_cycle_lengths(
    facts: Sequence[Atom], renaming: Dict[Constant, Constant]
) -> List[int]:
    """Cycle lengths of the renaming's action on the fact set."""
    index = {fact: position for position, fact in enumerate(facts)}
    seen = [False] * len(facts)
    lengths: List[int] = []
    for start, fact in enumerate(facts):
        if seen[start]:
            continue
        length = 0
        position = start
        while not seen[position]:
            seen[position] = True
            length += 1
            moved = facts[position].substitute(renaming)
            position = index[moved]
        lengths.append(length)
    return lengths


# -- orbit reduction of existing universes --------------------------------


@dataclass(frozen=True)
class OrbitClass:
    """One orbit of a swept universe.

    ``representative`` is the first universe member of the orbit in
    universe order (a concrete, replayable instance); ``weight`` the
    number of universe members it stands for; ``forward`` the
    canonical renaming of the representative, kept so violations can
    be transported onto any other member via
    :func:`decanonicalize` / :func:`orbit_transport`.
    """

    representative: Instance
    weight: int
    forward: Dict[Constant, Constant]


def orbit_reduce(
    universe: Sequence[Instance],
) -> Optional[List[OrbitClass]]:
    """Partition *universe* into domain-permutation orbits.

    Returns one :class:`OrbitClass` per orbit, ordered by the first
    occurrence of each orbit in the universe — or ``None`` when the
    reduction would be unsound for this universe:

    * an instance is not ground (permutations act on constants), or
    * the universe is not closed under permutations of its constant
      pool — detected exactly, by comparing each orbit's member count
      against the group-theoretic orbit size |D|!/|Stab|.
    """
    domain: set = set()
    for instance in universe:
        if not instance.is_ground():
            return None
        domain.update(instance.constants())
    domain_size = len(domain)
    classes: "Dict[FrozenSet[Atom], List[Any]]" = {}
    order: List[FrozenSet[Atom]] = []
    for instance in universe:
        form = ground_canonical_form(instance)
        key = form.key()
        entry = classes.get(key)
        if entry is None:
            classes[key] = [instance, 1, form]
            order.append(key)
        else:
            entry[1] += 1
    reduced: List[OrbitClass] = []
    for key in order:
        representative, weight, form = classes[key]
        if weight != form.orbit_size(domain_size):
            return None  # not closed under S_D: reduction unsound
        reduced.append(
            OrbitClass(representative, weight, dict(form.forward))
        )
    return reduced


# -- sweep planning --------------------------------------------------------


@dataclass(frozen=True)
class SweepPlan:
    """How one sweep iterates its universe.

    In ``orbits`` mode with every participant permutation-invariant
    and a closed universe, ``outer`` holds one representative per
    orbit and ``weights`` the orbit sizes; otherwise ``outer`` is the
    full universe and ``weights`` is ``None``.  ``mode`` records the
    *effective* mode (an unsound reduction falls back to ``"full"``),
    which is what checkpoint keys incorporate; ``ground_keys`` enables
    constant-canonical cache keys, sound whenever the mappings qualify
    even if the universe itself resisted reduction.
    """

    mode: str
    outer: List[Instance]
    weights: Optional[List[int]]
    ground_keys: bool

    @property
    def reduced(self) -> bool:
        return self.weights is not None

    def weight_of(self, position: int) -> int:
        return self.weights[position] if self.weights is not None else 1

    def covered_upto(self, position: int) -> int:
        """Universe instances represented by the first *position* items."""
        if self.weights is None:
            return position
        return sum(self.weights[:position])

    def shard(self, shards: int, shard_id: int) -> "SweepPlan":
        """The sub-plan of the outer items owned by *shard_id* (see
        :func:`shard_of_instance`).  Relative order — and therefore
        serial merge order within the shard — is preserved, and every
        outer item belongs to exactly one shard, so the shard reports
        merge back to the unsharded report exactly."""
        if not 0 <= shard_id < shards:
            raise ValueError(
                f"shard_id must be in [0, {shards}), got {shard_id}"
            )
        keep = [
            position
            for position, instance in enumerate(self.outer)
            if shard_of_instance(instance, shards) == shard_id
        ]
        return SweepPlan(
            self.mode,
            [self.outer[position] for position in keep],
            (
                [self.weights[position] for position in keep]
                if self.weights is not None
                else None
            ),
            self.ground_keys,
        )


def plan_sweep(
    symmetry: Optional[str],
    universe: Sequence[Instance],
    *,
    mappings: Sequence[Any] = (),
    extra_invariant: bool = True,
) -> SweepPlan:
    """Resolve the symmetry mode and reduce *universe* to orbit
    representatives when that is sound (see the module docstring for
    the soundness conditions).

    *mappings* are checked with :func:`mapping_permutation_invariant`;
    *extra_invariant* lets callers veto the reduction for other
    participants (e.g. a custom equivalence relation that is not known
    to be permutation-invariant).
    """
    mode = resolve_symmetry(symmetry)
    if mode != SYMMETRY_ORBITS:
        return SweepPlan(SYMMETRY_FULL, list(universe), None, False)
    invariant = extra_invariant and all(
        mapping_permutation_invariant(mapping) for mapping in mappings
    )
    if not invariant:
        return SweepPlan(SYMMETRY_FULL, list(universe), None, False)
    classes = orbit_reduce(universe)
    if classes is None:
        # Not ground or not permutation-closed: sweep in full, but the
        # constant-canonical cache keys remain sound for these mappings.
        return SweepPlan(SYMMETRY_FULL, list(universe), None, True)
    return SweepPlan(
        SYMMETRY_ORBITS,
        [cls.representative for cls in classes],
        [cls.weight for cls in classes],
        True,
    )


# -- sharded orbit enumeration ---------------------------------------------
#
# Independent workers — processes today, machines tomorrow — claim
# disjoint ranges of the canonical-form space by digest prefix: the
# shard of an instance is derived from its canonical form, so every
# member of a domain-permutation orbit lands in the same shard and a
# shard is a self-contained sub-sweep.  The partition depends only on
# instance *content*, never on enumeration order or process state, so
# every worker agrees on who owns what without coordination.


def shard_of_facts(facts: FrozenSet[Atom], shards: int) -> int:
    """The shard owning a (canonical) fact set: the leading 8 bytes of
    the fact set's content digest, reduced mod *shards*.  Stable
    across processes and runs."""
    encoded = "\x1e".join(
        sorted(repr(fact.sort_key()) for fact in facts)
    )
    digest = hashlib.sha1(encoded.encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def shard_of_instance(instance: Instance, shards: int) -> int:
    """The shard owning *instance*.

    Ground instances shard by their canonical form under domain
    permutation, so an orbit never straddles shards (and the shard of
    an orbit representative equals the shard of every member);
    non-ground instances shard by their exact fact set.
    """
    if shards <= 1:
        return 0
    if instance.is_ground():
        return shard_of_facts(ground_canonical_form(instance).key(), shards)
    return shard_of_facts(instance.facts, shards)


def default_shards() -> Tuple[int, Optional[int]]:
    """The environment-configured sharding: ``(REPRO_SHARDS,
    REPRO_SHARD_ID)``, defaulting to ``(1, None)`` — sharding is
    opt-in.  Unparsable values fall back to the default."""
    try:
        shards = max(1, int(os.environ.get("REPRO_SHARDS", "1")))
    except ValueError:
        shards = 1
    raw_id = os.environ.get("REPRO_SHARD_ID", "")
    shard_id: Optional[int]
    try:
        shard_id = int(raw_id) if raw_id != "" else None
    except ValueError:
        shard_id = None
    return shards, shard_id


def resolve_shards(
    shards: Optional[int], shard_id: Optional[int]
) -> Tuple[int, Optional[int]]:
    """Explicit sharding arguments, else the environment defaults.

    Returns ``(shards, shard_id)`` with ``shards >= 1``; ``shard_id``
    is ``None`` when this process should run (or claim) every shard
    itself, or a fixed shard index in ``[0, shards)``.
    """
    env_shards, env_shard_id = default_shards()
    if shards is None:
        shards = env_shards
        if shard_id is None:
            shard_id = env_shard_id
    shards = max(1, int(shards))
    if shard_id is not None and not 0 <= shard_id < shards:
        raise ValueError(
            f"shard_id must be in [0, {shards}), got {shard_id}"
        )
    return shards, shard_id


# -- ambient ground-cache-key context -------------------------------------

_GROUND_KEYS = False


def ground_keys_active() -> bool:
    """Should the memo caches key ground instances by their canonical
    form under constant permutation?  Enabled by orbit-mode sweeps
    (and inherited by forked workers, which fork after the context is
    installed)."""
    return _GROUND_KEYS


@contextmanager
def use_ground_keys(active: bool) -> Iterator[None]:
    """Enable (or explicitly disable) ground-canonical cache keys for
    the enclosed sweep.  Sound whenever every mapping involved passes
    :func:`mapping_permutation_invariant` — the caches re-check that
    per call, so enabling this around a sweep is always safe."""
    global _GROUND_KEYS
    previous = _GROUND_KEYS
    _GROUND_KEYS = bool(active)
    try:
        yield
    finally:
        _GROUND_KEYS = previous


__all__ = [
    "GroundCanonicalForm",
    "OrbitClass",
    "OrbitRepresentative",
    "SYMMETRY_FULL",
    "SYMMETRY_MODES",
    "SYMMETRY_ORBITS",
    "canonical_instances",
    "canonical_representative",
    "clear_symmetry_memos",
    "count_orbits",
    "decanonicalize",
    "default_shards",
    "default_symmetry",
    "ground_canonical_form",
    "ground_keys_active",
    "ground_pair_key",
    "mapping_permutation_invariant",
    "orbit_count_estimate",
    "orbit_reduce",
    "orbit_transport",
    "plan_sweep",
    "resolve_shards",
    "resolve_symmetry",
    "set_symmetry_memo_limit",
    "shard_of_facts",
    "shard_of_instance",
    "SweepPlan",
    "use_ground_keys",
]
