"""The unified error hierarchy of the library.

Historically every layer grew its own ad-hoc exception —
``ChaseError`` in the chase, ``UniverseTooLarge`` in the workloads,
``MinGenBudgetError`` / ``CompositionBudgetError`` in the core
algorithms, ``MappingError`` / ``ParseError`` in the front end — with
nothing in common but a message string.  This module re-homes all of
them under one :class:`ReproError` root so that

* callers can catch the whole library with one ``except ReproError``;
* every resource-limit failure is a :class:`BudgetExceeded` carrying
  *machine-readable* context (``kind``, ``limit``, ``consumed``), so
  the engine's fault-tolerance layer can convert it into a partial
  verdict (``coverage`` of ``"deadline"`` or ``"budget"``) instead of
  discarding completed work;
* exceptions survive a trip through a ``multiprocessing`` result
  queue with their context intact (:meth:`ReproError.__reduce__`).

Backwards compatibility: each class keeps the concrete builtin base
its predecessor had (``ValueError`` for mapping/parse/universe errors,
``RuntimeError`` for chase/budget errors), and the old defining
modules re-export the names, so pre-existing ``except`` sites keep
working unchanged.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


def _rebuild_error(cls: type, message: str, context: Dict[str, Any]) -> "ReproError":
    return cls(message, **context)


class ReproError(Exception):
    """Root of every exception the library raises on purpose.

    ``context`` holds machine-readable keyword details supplied at the
    raise site (e.g. ``kind="chase_steps", limit=10_000``); it is
    preserved across process boundaries.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = context

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.message, self.context))


class MappingError(ReproError, ValueError):
    """Raised for malformed schema mappings or unsupported operations."""


class ParseError(ReproError, ValueError):
    """Raised for malformed dependency / query text."""


class ChaseError(ReproError, RuntimeError):
    """Raised when the chase cannot proceed (disjunctions, step bound)."""


class BudgetExceeded(ReproError, RuntimeError):
    """A resource limit was hit before the computation finished.

    ``kind`` names the exhausted resource (``"deadline"``,
    ``"instances"``, ``"chase_steps"``, ``"rss"``, ``"mingen"``,
    ``"composition_nulls"``, ``"universe"``); ``limit`` is the
    configured cap and ``consumed`` how much was used when the limit
    tripped.  The checkers map this onto a partial verdict rather than
    letting it propagate (see :mod:`repro.engine.budget`).
    """

    @property
    def kind(self) -> Optional[str]:
        return self.context.get("kind")

    @property
    def limit(self) -> Any:
        return self.context.get("limit")

    @property
    def consumed(self) -> Any:
        return self.context.get("consumed")


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline of a :class:`~repro.engine.budget.Budget`
    passed mid-computation."""


class WorkerFault(ReproError, RuntimeError):
    """A parallel worker died (or timed out) and fault recovery was
    disabled (``on_fault="raise"``), so the sweep could not finish."""


class UniverseTooLarge(BudgetExceeded, ValueError):
    """Raised when a requested instance universe exceeds its cap."""


class MinGenBudgetError(BudgetExceeded):
    """Raised when a MinGen search exceeds its configured budget."""


class CompositionBudgetError(BudgetExceeded):
    """Raised when a composition-membership check would enumerate too
    many candidate intermediate instances."""


class FaultSpecError(ReproError, ValueError):
    """A fault-injection spec (``REPRO_FAULTS`` or a legacy
    ``REPRO_FAULT_*`` knob) is malformed.

    Raised eagerly — when the fault plane is first consulted — so a
    typo in a chaos schedule aborts the run at startup instead of
    silently injecting nothing.  ``context`` carries the offending
    ``spec`` and, when applicable, the ``clause`` and ``point``.
    """


class ServiceError(ReproError, RuntimeError):
    """Root of the checking-service taxonomy (daemon, queue, client)."""


class ServiceProtocolError(ServiceError, ValueError):
    """A malformed job payload or request (the daemon answers HTTP 400).

    Raised at *submit* time — unknown job kinds, unparsable inline
    mappings (wrapping the underlying :class:`ParseError`), missing
    catalog names, bad option types — so invalid work is rejected
    before it ever reaches the queue.
    """


class JobNotFound(ServiceError, KeyError):
    """No job with the requested id (the daemon answers HTTP 404)."""


class ServiceUnavailable(ServiceError, ConnectionError):
    """The daemon could not be reached (connection refused, timeout,
    or no endpoint file in the state directory)."""


#: Budget kinds raised by the governance layer (:mod:`repro.engine.budget`).
#: Only these are degraded into partial verdicts by the checkers;
#: algorithm-parameter budgets (``max_nulls``, MinGen candidate caps)
#: remain hard errors because the caller asked for that exact bound.
GOVERNED_KINDS = frozenset({"deadline", "instances", "chase_steps", "rss"})

#: Per-thread widening of :data:`GOVERNED_KINDS` (see
#: :func:`governed_kinds_scope`).
_GOVERNED_SCOPE = threading.local()


def _extra_governed_kinds() -> frozenset:
    return getattr(_GOVERNED_SCOPE, "kinds", frozenset())


@contextmanager
def governed_kinds_scope(*kinds: str) -> Iterator[None]:
    """Treat the named budget kinds as governed inside the scope.

    Algorithm-parameter budgets (``"composition_nulls"``, ``"mingen"``)
    are hard errors by default — the caller asked for that exact bound.
    A planner that *chose* a bounded algorithm on the caller's behalf
    (e.g. a membership-mode composition plan) owes the caller a partial
    verdict instead: wrapping the sweep in
    ``governed_kinds_scope("composition_nulls")`` makes
    :func:`governed_coverage` degrade those trips to ``"budget"``
    coverage, so exit codes 3/4 and coverage fields apply.  The scope
    is per-thread and restores the previous widening on exit.
    """
    previous = _extra_governed_kinds()
    _GOVERNED_SCOPE.kinds = previous | frozenset(kinds)
    try:
        yield
    finally:
        _GOVERNED_SCOPE.kinds = previous


def governed_coverage(error: BaseException) -> Optional[str]:
    """The partial-verdict ``coverage`` a checker should degrade to
    for *error*, or None when the error must propagate."""
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if isinstance(error, WorkerFault):
        return "faulted"
    if isinstance(error, BudgetExceeded) and (
        error.kind in GOVERNED_KINDS or error.kind in _extra_governed_kinds()
    ):
        return "budget"
    return None


def coverage_of(error: BaseException) -> Optional[str]:
    """The report ``coverage`` status a trapped *error* maps to.

    ``"deadline"`` for wall-clock expiry, ``"budget"`` for every other
    resource cap, ``"faulted"`` for an unrecovered worker fault, and
    ``None`` for exceptions the fault-tolerance layer should not
    swallow.
    """
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if isinstance(error, BudgetExceeded):
        return "budget"
    if isinstance(error, WorkerFault):
        return "faulted"
    return None


__all__ = [
    "BudgetExceeded",
    "ChaseError",
    "CompositionBudgetError",
    "DeadlineExceeded",
    "FaultSpecError",
    "GOVERNED_KINDS",
    "JobNotFound",
    "MappingError",
    "MinGenBudgetError",
    "ParseError",
    "ReproError",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceUnavailable",
    "UniverseTooLarge",
    "WorkerFault",
    "coverage_of",
    "governed_coverage",
    "governed_kinds_scope",
]
