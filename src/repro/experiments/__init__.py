"""The experiment suite: one module per reproduced paper artifact.

Each experiment E1–E14 runs the relevant algorithms/checkers, compares
against what the paper states, and returns a structured
:class:`~repro.experiments.base.ExperimentReport`.  The registry and
runner power both the CLI (``python -m repro.cli``) and the benchmark
harness (one benchmark per experiment).
"""

from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.experiments.registry import all_experiment_ids, get_experiment, run_all, run_experiment

__all__ = [
    "ExperimentReport",
    "ReportBuilder",
    "all_experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
]
