"""Experiment report structure shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class Check:
    """One named pass/fail comparison against the paper."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"  [{status}] {self.name}{suffix}"


@dataclass(frozen=True)
class ExperimentReport:
    """The structured outcome of one experiment."""

    experiment_id: str
    title: str
    paper_artifact: str
    checks: Tuple[Check, ...]
    lines: Tuple[str, ...]
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        header = (
            f"== {self.experiment_id}: {self.title} "
            f"(paper: {self.paper_artifact}) =="
        )
        body: List[str] = [header]
        body.extend(self.lines)
        body.extend(check.render() for check in self.checks)
        verdict = "ALL CHECKS PASS" if self.passed else "SOME CHECKS FAILED"
        body.append(f"  => {verdict} ({sum(c.passed for c in self.checks)}"
                    f"/{len(self.checks)})")
        return "\n".join(body)


class ReportBuilder:
    """Accumulates lines and checks while an experiment runs."""

    def __init__(self, experiment_id: str, title: str, paper_artifact: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.paper_artifact = paper_artifact
        self._checks: List[Check] = []
        self._lines: List[str] = []
        self._data: Dict[str, Any] = {}

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def lines(self, text: str) -> None:
        self._lines.extend(text.splitlines())

    def check(self, name: str, passed: bool, detail: str = "") -> bool:
        self._checks.append(Check(name, bool(passed), detail))
        return bool(passed)

    def record(self, key: str, value: Any) -> None:
        self._data[key] = value

    def build(self) -> ExperimentReport:
        return ExperimentReport(
            self.experiment_id,
            self.title,
            self.paper_artifact,
            tuple(self._checks),
            tuple(self._lines),
            dict(self._data),
        )
