"""E1 — the Introduction's motivating examples.

Reproduces, mechanically:

* Projection, Union and Decomposition are *not* invertible — each
  violates the unique-solutions property, witnessed by explicit
  instance pairs found over a bounded universe;
* each has a natural quasi-inverse, and the QuasiInverse algorithm's
  output matches the paper's formulas (Union exactly; Projection up to
  renaming; Decomposition up to the algorithm's most-general-disjunct
  pruning, validated by faithfulness instead);
* robustness: augmenting the source schema with a fresh relation
  leaves quasi-inverses quasi-inverses (bounded check), in contrast to
  inverses.
"""

from __future__ import annotations

from repro.catalog import (
    decomposition,
    projection,
    projection_quasi_inverse,
    union_mapping,
    union_quasi_inverse,
)
from repro.core import (
    SchemaMapping,
    is_quasi_inverse,
    quasi_inverse,
    unique_solutions_property,
)
from repro.dataexchange import faithful_on
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe, random_ground_instance


def _sample_instances(mapping: SchemaMapping, count: int = 4):
    return [
        random_ground_instance(mapping.source, seed=seed, n_facts=4, domain_size=3)
        for seed in range(count)
    ]


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E1", "Projection / Union / Decomposition", "Section 1 examples"
    )

    for mapping in (projection(), union_mapping(), decomposition()):
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
        unique, violations = unique_solutions_property(mapping, universe)
        report.check(
            f"{mapping.name}: unique-solutions property fails (not invertible)",
            not unique,
            f"witness: {violations[0][0]} vs {violations[0][1]}" if violations else "",
        )

    union_qi = quasi_inverse(union_mapping())
    expected_union = union_quasi_inverse().dependencies[0].canonical_form()
    report.check(
        "Union: QuasiInverse output is exactly S(x) -> P(x) ∨ Q(x)",
        len(union_qi.dependencies) == 1
        and union_qi.dependencies[0].canonical_form() == expected_union,
        str(union_qi.dependencies[0]),
    )

    projection_qi = quasi_inverse(projection())
    expected_projection = projection_quasi_inverse().dependencies[0].canonical_form()
    report.check(
        "Projection: QuasiInverse output is exactly Q(x) -> ∃y P(x, y)",
        len(projection_qi.dependencies) == 1
        and projection_qi.dependencies[0].canonical_form() == expected_projection,
        str(projection_qi.dependencies[0]),
    )

    decomposition_qi = quasi_inverse(decomposition())
    ok, _ = faithful_on(
        decomposition(), decomposition_qi, _sample_instances(decomposition())
    )
    report.check("Decomposition: QuasiInverse output is faithful", ok)

    # Robustness under source augmentation (Introduction's discussion).
    base = union_mapping()
    augmented = base.augment_source("Extra", 1)
    base_qi = quasi_inverse(base)
    lifted = SchemaMapping(
        base_qi.source,
        augmented.source,
        base_qi.dependencies,
        name="lifted-QI",
    )
    universe = instance_universe(augmented.source, ["a"], max_facts=1)
    verdict = is_quasi_inverse(augmented, lifted, universe)
    report.check(
        "Union: quasi-inverse survives adding a source relation (bounded)",
        verdict.holds,
        f"{verdict.checked} pairs checked",
    )
    return report.build()
