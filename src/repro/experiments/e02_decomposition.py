"""E2 — Example 3.10: the Decomposition mapping in detail.

* the paper's exact witness pair (P = {(0,0,0),(0,0,1),(1,0,0)} vs
  + (1,0,1)) has equal solution spaces, killing unique solutions;
* the (=, ∼M)-subset property holds over a bounded universe, with the
  paper's construction I2' = I1 ∪ I2 as the witness;
* both of the paper's quasi-inverses — the join M' and the split M''
  — pass the bounded quasi-inverse check and are faithful.
"""

from __future__ import annotations

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    example_3_10_witnesses,
)
from repro.core import (
    Equality,
    SolutionEquivalence,
    data_exchange_equivalent,
    is_quasi_inverse,
    subset_property,
)
from repro.dataexchange import faithful_on
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe, random_ground_instance


def run() -> ExperimentReport:
    report = ReportBuilder("E2", "Decomposition (Example 3.10)", "Example 3.10")
    mapping = decomposition()
    left, right = example_3_10_witnesses()

    report.check(
        "the paper's witness pair has equal solution spaces",
        data_exchange_equivalent(mapping, left, right),
        f"I1 = {left}, I2 = I1 + P(1,0,1)",
    )

    universe = instance_universe(mapping.source, [0, 1], max_facts=2)
    equivalence = SolutionEquivalence(mapping)
    stronger = subset_property(mapping, Equality(), equivalence, universe)
    report.check(
        f"(=, ∼M)-subset property holds over {len(universe)} instances",
        stronger.holds,
        f"{stronger.checked} containment pairs, witness pool closed under unions",
    )

    # The paper's construction: I2' = I1 ∪ I2 witnesses the property
    # on the Example 3.10 pair (with containment Sol(I2) ⊆ Sol(I1)
    # both ways since they are equivalent).
    union_witness = left.union(right)
    report.check(
        "the construction I2' = I1 ∪ I2 is ∼M-equivalent to I2",
        data_exchange_equivalent(mapping, right, union_witness)
        and left.issubset(union_witness),
    )

    samples = [
        random_ground_instance(mapping.source, seed=seed, n_facts=4, domain_size=3)
        for seed in range(4)
    ]
    for reverse in (
        decomposition_quasi_inverse_join(),
        decomposition_quasi_inverse_split(),
    ):
        small = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        verdict = is_quasi_inverse(mapping, reverse, small)
        report.check(
            f"{reverse.name} passes the bounded quasi-inverse check",
            verdict.holds,
            f"{verdict.checked} pairs",
        )
        ok, _ = faithful_on(mapping, reverse, samples)
        report.check(f"{reverse.name} is faithful on random instances", ok)
    return report.build()
