"""E3 — Proposition 3.11: every LAV mapping has a quasi-inverse.

Sweeps seeded random LAV mappings and, for each: verifies the
(∼M, ∼M)-subset property over a bounded universe — including the
proof's construction I2' = I1 ∪ I2 — and verifies that the
QuasiInverse algorithm's output is faithful (Theorem 6.8 applied to a
mapping guaranteed quasi-invertible by this proposition).
"""

from __future__ import annotations

from repro.core import (
    SolutionEquivalence,
    data_exchange_equivalent,
    quasi_inverse,
    solutions_contained,
    subset_property,
)
from repro.dataexchange import faithful_on
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe, random_ground_instance, random_lav_mapping

N_MAPPINGS = 8


def run() -> ExperimentReport:
    report = ReportBuilder("E3", "LAV mappings are quasi-invertible", "Proposition 3.11")
    construction_holds = True
    for seed in range(N_MAPPINGS):
        mapping = random_lav_mapping(seed, n_source=2, n_target=2, max_arity=2, n_tgds=3)
        assert mapping.is_lav()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        equivalence = SolutionEquivalence(mapping)
        verdict = subset_property(mapping, equivalence, equivalence, universe)
        report.check(
            f"seed {seed}: (∼M,∼M)-subset property over {len(universe)} instances",
            verdict.holds,
        )

        # The proof's construction: whenever Sol(I2) ⊆ Sol(I1),
        # I2' = I1 ∪ I2 satisfies I1 ⊆ I2' and I2 ∼M I2'.
        for left in universe:
            for right in universe:
                if not solutions_contained(mapping, right, left):
                    continue
                union = left.union(right)
                if not data_exchange_equivalent(mapping, right, union):
                    construction_holds = False

        reverse = quasi_inverse(mapping)
        samples = [
            random_ground_instance(mapping.source, seed=100 + s, n_facts=3, domain_size=2)
            for s in range(3)
        ]
        ok, _ = faithful_on(mapping, reverse, samples)
        report.check(f"seed {seed}: QuasiInverse output is faithful", ok)
    report.check(
        "the proof's witness construction I2' = I1 ∪ I2 always works",
        construction_holds,
        "checked for every containment pair of every universe",
    )
    return report.build()
