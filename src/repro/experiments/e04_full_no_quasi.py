"""E4 — Proposition 3.12: a full s-t tgd with no quasi-inverse.

For E(x,z) ∧ E(z,y) → F(x,y) ∧ M(z):

* the complete profile-based search (see
  :mod:`repro.experiments.prop312_search`) finds a subset-property
  violation pair, certified over *all* ground instances via the
  normalization lemma — by Theorem 3.5 the mapping has no
  quasi-inverse, a fortiori no inverse;
* the violation is re-validated through the library's generic
  primitives: Sol(I2) ⊆ Sol(I1) holds, the instances are not
  ∼M-equivalent, and the bounded generic checker agrees;
* domain size 2 admits no violation (the witness genuinely needs
  three constants).
"""

from __future__ import annotations

from repro.catalog import prop_3_12
from repro.core import (
    SolutionEquivalence,
    data_exchange_equivalent,
    solutions_contained,
    subset_property,
)
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.experiments.prop312_search import search_violation


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E4", "Full s-t tgd without a quasi-inverse", "Proposition 3.12"
    )
    mapping = prop_3_12()

    report.check(
        "no violation exists over a 2-constant domain",
        search_violation(domain_size=2) is None,
    )

    witness = search_violation(domain_size=3)
    if not report.check("a violation exists over a 3-constant domain", witness is not None):
        return report.build()

    report.line(f"  violating pair: I1 = {witness.left}")
    report.line(f"                  I2 = {witness.right}")
    report.check(
        "Sol(I2) ⊆ Sol(I1) holds on the witness pair",
        solutions_contained(mapping, witness.right, witness.left),
    )
    report.check(
        "the pair is not ∼M-equivalent",
        not data_exchange_equivalent(mapping, witness.left, witness.right),
    )

    equivalence = SolutionEquivalence(mapping)
    bounded = subset_property(
        mapping, equivalence, equivalence, [witness.left, witness.right]
    )
    report.check(
        "the generic bounded checker reports the same violation",
        not bounded.holds and bounded.violations[0] == (witness.left, witness.right),
    )
    report.line(
        "  by Theorem 3.5, the (∼M,∼M)-subset property failing means the "
        "mapping has no quasi-inverse."
    )
    return report.build()
