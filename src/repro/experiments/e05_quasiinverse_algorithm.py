"""E5 — Theorem 4.1 / Example 4.5: the QuasiInverse algorithm trace.

Replays the paper's walk-through mechanically:

* Sigma* contains sigma_1 and its quotient sigma_2 (x2 := x1);
* MinGen finds exactly one minimal generator for sigma_1's conclusion
  (P(x1,x2,x3)) and exactly the paper's four for sigma_2's conclusion
  (P(x1,x1,x3), U(x1), T(x1,x1) ∧ R(x1,x1,x4), T(x3,x1) ∧ R(x3,x3,x4));
* the assembled sigma'_1 and sigma'_2 match the paper
  conjunct-for-conjunct, including the remark that the third disjunct
  is pruned as implied by the fourth;
* the proof-based MinGen agrees with the paper's exhaustive Algorithm
  MinGen on both goals (oracle cross-validation);
* the output is faithful (Theorem 6.8).
"""

from __future__ import annotations

from repro.catalog import (
    example_4_5,
    example_4_5_expected_sigma1_prime,
    example_4_5_expected_sigma2_prime,
)
from repro.core import MinGenConfig, minimal_generators, quasi_inverse
from repro.core.generators import minimal_generators_exhaustive, _canonical_key
from repro.core.quasi_inverse import _disjunct_implies, prune_disjuncts
from repro.dataexchange import faithful_on
from repro.dependencies import parse_dependency, sigma_star
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import random_ground_instance


def _generator_keys(generators, frontier):
    return {_canonical_key(g.atoms, frontier) for g in generators}


def run() -> ExperimentReport:
    report = ReportBuilder("E5", "The QuasiInverse algorithm", "Thm 4.1 / Example 4.5")
    mapping = example_4_5()

    star = sigma_star(mapping.dependencies)
    sigma1 = mapping.dependencies[0]
    sigma2 = parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)")
    star_keys = {d.canonical_form() for d in star}
    report.check(
        "Sigma* contains sigma_1 and its quotient sigma_2",
        sigma1.canonical_form() in star_keys and sigma2.canonical_form() in star_keys,
        f"|Sigma*| = {len(star)}",
    )

    # MinGen on sigma_1's conclusion.  The paper's prose names one
    # generator, P(x1,x2,x3); Definition 4.3's subset-minimality also
    # admits its specializations (P(x1,x2,x1), P(x1,x2,x2)) — which the
    # implied-disjunct pruning then removes, so the *pruned* list is
    # exactly the paper's.
    generators1 = minimal_generators(mapping, sigma1.disjuncts[0], sigma1.frontier())
    expected1 = parse_dependency(
        "P(x1, x2, z1) -> S(x1, x2, y) & Q(y, y)"
    ).premise.atoms
    pruned1 = prune_disjuncts(
        [g.atoms for g in generators1], sigma1.frontier()
    )
    report.check(
        "sigma_1: after pruning, exactly the paper's generator P(x1,x2,·)",
        len(pruned1) == 1
        and _canonical_key(pruned1[0], sigma1.frontier())
        == _canonical_key(expected1, sigma1.frontier()),
        "; ".join(str(g) for g in generators1),
    )

    # MinGen on sigma_2's conclusion: the paper's four generators must
    # all be found, and every further one must be a specialization
    # (i.e. imply one of the four).
    frontier2 = sigma2.frontier()
    generators2 = minimal_generators(mapping, sigma2.disjuncts[0], frontier2)
    paper_four = [
        parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)").premise.atoms,
        parse_dependency("U(x1) -> S(x1, x1, y) & Q(y, y)").premise.atoms,
        parse_dependency(
            "T(x1, x1) & R(x1, x1, x4) -> S(x1, x1, y) & Q(y, y)"
        ).premise.atoms,
        parse_dependency(
            "T(x3, x1) & R(x3, x3, x4) -> S(x1, x1, y) & Q(y, y)"
        ).premise.atoms,
    ]
    found_keys = _generator_keys(generators2, frontier2)
    paper_keys = {_canonical_key(atoms, frontier2) for atoms in paper_four}
    report.check(
        "sigma_2: all four generators named by the paper are found",
        paper_keys <= found_keys,
        f"{len(generators2)} minimal generators in total",
    )
    report.check(
        "sigma_2: every further generator is a specialization of those four",
        all(
            any(
                _disjunct_implies(g.atoms, atoms, frontier2)
                for atoms in paper_four
            )
            for g in generators2
        ),
    )

    # Oracle cross-validation against the paper's exhaustive MinGen.
    for label, sigma in (("sigma_1", sigma1), ("sigma_2", sigma2)):
        frontier = sigma.frontier()
        fast = minimal_generators(mapping, sigma.disjuncts[0], frontier)
        slow = minimal_generators_exhaustive(
            mapping, sigma.disjuncts[0], frontier, MinGenConfig(method="exhaustive")
        )
        report.check(
            f"proof-based MinGen matches exhaustive Algorithm MinGen on {label}",
            _generator_keys(fast, frontier) == _generator_keys(slow, frontier),
            f"{len(fast)} generators",
        )

    reverse = quasi_inverse(mapping)
    keys = {d.canonical_form() for d in reverse.dependencies}
    report.check(
        "sigma'_1 matches the paper conjunct-for-conjunct",
        example_4_5_expected_sigma1_prime().canonical_form() in keys,
    )
    report.check(
        "sigma'_2 matches the paper, with the implied disjunct pruned",
        example_4_5_expected_sigma2_prime(pruned=True).canonical_form() in keys,
    )
    # Without pruning, sigma'_2 carries (at least) the paper's four
    # disjuncts, plus the specializations discussed above.
    unpruned = quasi_inverse(mapping, prune_implied=False)
    expected_unpruned = example_4_5_expected_sigma2_prime(pruned=False)
    premise_key = _canonical_key(expected_unpruned.premise.atoms, ())
    mine = next(
        d
        for d in unpruned.dependencies
        if _canonical_key(d.premise.atoms, ()) == premise_key
    )
    expected_disjuncts = {
        _canonical_key(disjunct, expected_unpruned.frontier())
        for disjunct in expected_unpruned.disjuncts
    }
    my_disjuncts = {
        _canonical_key(disjunct, mine.frontier()) for disjunct in mine.disjuncts
    }
    report.check(
        "without pruning, sigma'_2 carries all four paper disjuncts",
        expected_disjuncts <= my_disjuncts,
        f"{len(my_disjuncts)} disjuncts before pruning",
    )

    samples = [
        random_ground_instance(mapping.source, seed=seed, n_facts=4, domain_size=3)
        for seed in range(4)
    ]
    ok, _ = faithful_on(mapping, reverse, samples)
    report.check("the computed quasi-inverse is faithful (Theorem 6.8)", ok)
    return report.build()
