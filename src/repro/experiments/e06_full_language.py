"""E6 — Theorem 4.6: full mappings need no Constant().

For every full tgd mapping in the catalog and a sweep of random full
mappings, the QuasiInverse algorithm (in its full-input mode) emits
disjunctive tgds with inequalities but *without* Constant() conjuncts,
and the output remains faithful wherever a quasi-inverse exists.
"""

from __future__ import annotations

from repro.catalog import decomposition, thm_4_9, thm_4_10, thm_4_11, union_mapping
from repro.core import quasi_inverse
from repro.dataexchange import faithful_on
from repro.dependencies.dependency import language_audit
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import random_full_mapping, random_ground_instance


def run() -> ExperimentReport:
    report = ReportBuilder("E6", "Quasi-inverses of full mappings", "Theorem 4.6")
    catalog = [union_mapping(), decomposition(), thm_4_9(), thm_4_10(), thm_4_11()]
    random_mappings = [
        random_full_mapping(seed, n_source=2, n_target=2, n_tgds=3) for seed in range(5)
    ]
    for mapping in catalog + random_mappings:
        assert mapping.is_full()
        reverse = quasi_inverse(mapping)
        features = language_audit(reverse.dependencies)
        report.check(
            f"{mapping.name}: output uses no Constant()",
            not features.constants,
            f"features: {features.describe()}",
        )
    # Faithfulness for the known quasi-invertible full catalog mappings.
    for mapping in catalog:
        reverse = quasi_inverse(mapping)
        samples = [
            random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
            for seed in range(3)
        ]
        ok, _ = faithful_on(mapping, reverse, samples)
        report.check(f"{mapping.name}: output faithful", ok)
    return report.build()
