"""E7 — Theorem 4.7: LAV mappings need no disjunctions.

For every LAV mapping in the catalog and a sweep of random LAV
mappings, :func:`repro.core.lav_quasi_inverse` produces a
disjunction-free quasi-inverse (tgds with constants and inequalities)
that is faithful; the general QuasiInverse output on the same mapping
may contain disjunctions, but the disjunction-free one suffices.
"""

from __future__ import annotations

from repro.catalog import decomposition, projection, thm_4_11, union_mapping
from repro.core import lav_quasi_inverse
from repro.dataexchange import faithful_on
from repro.dependencies.dependency import language_audit
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import random_ground_instance, random_lav_mapping


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E7", "Disjunction-free quasi-inverses of LAV mappings", "Theorem 4.7"
    )
    catalog = [projection(), union_mapping(), decomposition(), thm_4_11()]
    random_mappings = [
        random_lav_mapping(seed, n_source=2, n_target=2, max_arity=2, n_tgds=3)
        for seed in range(5)
    ]
    for mapping in catalog + random_mappings:
        assert mapping.is_lav()
        reverse = lav_quasi_inverse(mapping)
        features = language_audit(reverse.dependencies)
        report.check(
            f"{mapping.name}: disjunction-free output",
            not features.disjunctions,
            f"features: {features.describe()}",
        )
        samples = [
            random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
            for seed in range(3)
        ]
        ok, _ = faithful_on(mapping, reverse, samples)
        report.check(f"{mapping.name}: disjunction-free output faithful", ok)
    return report.build()
