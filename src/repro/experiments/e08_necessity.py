"""E8 — Section 4.1: necessity of the language features.

Theorems 4.8–4.11 exhibit mappings for which *no* (quasi-)inverse
exists once constants, inequalities, disjunctions, or existential
quantifiers (respectively) are banned.  The universal "no candidate in
the restricted language works" halves are proved model-theoretically
in the paper's full version; what is mechanically reproducible — and
what this experiment does — is the witness level of each theorem:

* the feature-rich (quasi-)inverse the paper gives (or the algorithms
  compute) *works*, verified by the exact bounded inverse check or by
  exact soundness/faithfulness round trips; and
* the natural feature-stripped candidate *fails*, with an explicit,
  machine-checked counterexample (an Inst(Id)/Inst(M∘M') mismatch or
  a soundness violation — both decision procedures, not bounds).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.catalog import thm_4_8, thm_4_8_inverse, thm_4_9, thm_4_10, thm_4_11
from repro.core import SchemaMapping, inverse, is_inverse, quasi_inverse
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.dataexchange import is_sound, sound_on
from repro.dependencies.dependency import Dependency, Premise
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe, power_instances


def strip_constants(mapping: SchemaMapping) -> SchemaMapping:
    """Remove every Constant() conjunct from the premises."""
    dependencies = tuple(
        Dependency(
            Premise(dep.premise.atoms, frozenset(), dep.premise.inequalities),
            dep.disjuncts,
        )
        for dep in mapping.dependencies
    )
    return SchemaMapping(
        mapping.source, mapping.target, dependencies, name=f"{mapping.name}-noConst"
    )


def strip_inequalities(mapping: SchemaMapping) -> SchemaMapping:
    """Remove every inequality conjunct from the premises."""
    dependencies = tuple(
        Dependency(
            Premise(dep.premise.atoms, dep.premise.constant_vars, frozenset()),
            dep.disjuncts,
        )
        for dep in mapping.dependencies
    )
    return SchemaMapping(
        mapping.source, mapping.target, dependencies, name=f"{mapping.name}-noNeq"
    )


def strip_disjunctions(mapping: SchemaMapping) -> SchemaMapping:
    """Commit every disjunctive conclusion to its first disjunct."""
    dependencies = tuple(
        Dependency(dep.premise, (dep.disjuncts[0],))
        for dep in mapping.dependencies
    )
    return SchemaMapping(
        mapping.source, mapping.target, dependencies, name=f"{mapping.name}-noDisj"
    )


def strip_existentials(mapping: SchemaMapping) -> SchemaMapping:
    """Collapse every existential variable onto the first frontier var."""
    dependencies: List[Dependency] = []
    for dep in mapping.dependencies:
        frontier = dep.frontier()
        anchor = frontier[0] if frontier else dep.premise_variables()[0]
        disjuncts: List[Tuple[Atom, ...]] = []
        for index, disjunct in enumerate(dep.disjuncts):
            substitution = {v: anchor for v in dep.existential_variables(index)}
            disjuncts.append(
                tuple(atom.substitute(substitution) for atom in disjunct)
            )
        dependencies.append(Dependency(dep.premise, tuple(disjuncts)))
    return SchemaMapping(
        mapping.source,
        mapping.target,
        tuple(dependencies),
        name=f"{mapping.name}-noExists",
    )


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E8", "Necessity of constants / inequalities / disjunctions / ∃",
        "Theorems 4.8–4.11",
    )

    # --- Theorem 4.8: constants -----------------------------------------
    mapping = thm_4_8()
    universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
    good = thm_4_8_inverse()
    report.check(
        "4.8: the paper's inverse (with Constant) is an inverse",
        is_inverse(mapping, good, universe).holds,
        f"{len(universe)}² pairs",
    )
    stripped = strip_constants(good)
    verdict = is_inverse(mapping, stripped, universe)
    report.check(
        "4.8: dropping Constant() breaks it",
        not verdict.holds,
        f"mismatch on ({verdict.mismatches[0][0]}, {verdict.mismatches[0][1]})"
        if verdict.mismatches
        else "",
    )

    # --- Theorem 4.9: inequalities ---------------------------------------
    mapping = thm_4_9()
    universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
    good = inverse(mapping, drop_constants_when_full=False)
    report.check(
        "4.9: the algorithm's inverse (with inequalities) is an inverse",
        is_inverse(mapping, good, universe).holds,
        f"{len(universe)}² pairs",
    )
    stripped = strip_inequalities(good)
    verdict = is_inverse(mapping, stripped, universe)
    report.check(
        "4.9: dropping inequalities breaks it",
        not verdict.holds,
        f"mismatch on ({verdict.mismatches[0][0]}, {verdict.mismatches[0][1]})"
        if verdict.mismatches
        else "",
    )

    # --- Theorem 4.10: disjunctions ---------------------------------------
    mapping = thm_4_10()
    reverse = quasi_inverse(mapping)
    report.check(
        "4.10: the computed quasi-inverse genuinely uses disjunctions",
        any(len(dep.disjuncts) > 1 for dep in reverse.dependencies),
    )
    samples = list(
        power_instances(mapping.source, ["a"], max_facts=2, include_empty=False)
    )
    ok, _ = sound_on(mapping, reverse, samples)
    report.check("4.10: the disjunctive quasi-inverse is sound", ok)
    committed = strip_disjunctions(reverse)
    ok, violators = sound_on(mapping, committed, samples)
    report.check(
        "4.10: committing to single disjuncts loses soundness",
        not ok,
        f"violating instance: {violators[0]}" if violators else "",
    )

    # --- Theorem 4.11: existential quantifiers -----------------------------
    mapping = thm_4_11()
    reverse = quasi_inverse(mapping)
    report.check(
        "4.11: the computed quasi-inverse genuinely uses ∃",
        any(not dep.is_full() for dep in reverse.dependencies),
    )
    witness = Instance.build({"P": [("a", "b")]})
    report.check(
        "4.11: the quasi-inverse is sound on P(a,b)",
        is_sound(mapping, reverse, witness),
    )
    full_candidate = strip_existentials(reverse)
    report.check(
        "4.11: collapsing ∃ onto the frontier loses soundness on P(a,b)",
        not is_sound(mapping, full_candidate, witness),
        "recovering P(a,a) invents S(a) on re-exchange",
    )
    return report.build()
