"""E9 — Theorem 5.1 / Example 5.4: the Inverse algorithm trace.

* the algorithm emits exactly the paper's dependencies (1) and (2) on
  Example 5.4 (one per prime instance of the binary R);
* the output is an inverse, verified over a bounded universe with the
  exact composition-membership procedure;
* the weakest-inverse property: a strictly stronger hand-written
  inverse logically implies the algorithm's output but not vice versa.
"""

from __future__ import annotations

from repro.catalog import example_5_4, example_5_4_expected_inverse
from repro.core import (
    SchemaMapping,
    inverse,
    is_inverse,
    logically_implies,
)
from repro.datamodel.schemas import Schema
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe


def run() -> ExperimentReport:
    report = ReportBuilder("E9", "The Inverse algorithm", "Thm 5.1 / Example 5.4")
    mapping = example_5_4()
    computed = inverse(mapping)

    expected_equal, expected_distinct = example_5_4_expected_inverse()
    keys = {dep.canonical_form() for dep in computed.dependencies}
    report.check(
        "output is exactly the paper's ω(Σ, I_{R(x1,x1)}) — dependency (1)",
        expected_equal.canonical_form() in keys,
    )
    report.check(
        "output is exactly the paper's ω(Σ, I_{R(x1,x2)}) — dependency (2)",
        expected_distinct.canonical_form() in keys,
    )
    report.check(
        "one dependency per prime instance of R (two in total)",
        len(computed.dependencies) == 2,
    )

    universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
    verdict = is_inverse(mapping, computed, universe)
    report.check(
        f"the output is an inverse ({len(universe)}² exact membership checks)",
        verdict.holds,
    )

    # A strictly stronger inverse: fire on S alone, ignoring Q and U.
    stronger = SchemaMapping.from_text(
        mapping.target,
        mapping.source,
        "S(x1, x2, y) & Constant(x1) & Constant(x2) -> R(x1, x2)",
        name="StrongerInverse",
    )
    report.check(
        "the stronger hand-written mapping is also an inverse",
        is_inverse(mapping, stronger, universe).holds,
    )
    report.check(
        "weakest-inverse: the stronger inverse implies the algorithm's output",
        all(
            logically_implies(stronger.dependencies, dep)
            for dep in computed.dependencies
        ),
    )
    report.check(
        "…and the implication is strict (output does not imply it back)",
        not all(
            logically_implies(computed.dependencies, dep)
            for dep in stronger.dependencies
        ),
    )
    return report.build()
