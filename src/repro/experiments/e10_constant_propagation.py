"""E10 — Definition 5.2 / Proposition 5.3: constant propagation.

* every invertible mapping in the catalog satisfies the
  constant-propagation property (the Proposition's necessary
  condition);
* Projection fails it — the chase of P(x1, x2) loses x2 — so the
  Inverse algorithm halts without output, exactly as Step 1 says;
* the per-relation report matches the by-hand chase of Example 5.4
  ("the chase of R(x1,x2) is S(x1,x2,y), which contains both
  variables").
"""

from __future__ import annotations

from repro.catalog import (
    example_5_4,
    projection,
    prop_3_12,
    thm_4_8,
    thm_4_9,
    union_mapping,
)
from repro.core import (
    InverseError,
    constant_propagation_report,
    has_constant_propagation,
    inverse,
)
from repro.experiments.base import ExperimentReport, ReportBuilder


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E10", "The constant-propagation property", "Def 5.2 / Prop 5.3"
    )
    invertible = [thm_4_8(), thm_4_9(), example_5_4()]
    for mapping in invertible:
        report.check(
            f"{mapping.name} (invertible) propagates constants",
            has_constant_propagation(mapping),
            str(constant_propagation_report(mapping)),
        )
    # Prop 5.3 is one-directional: propagation does not imply
    # invertibility — the non-invertible Union mapping propagates.
    report.check(
        "Union propagates constants despite not being invertible",
        has_constant_propagation(union_mapping()),
    )
    # The Prop 3.12 mapping fails even this necessary condition: a
    # lone E-fact fires nothing, so the chase of E(x1,x2) is empty.
    report.check(
        "Prop3.12's mapping does not propagate (chase of E(x1,x2) is empty)",
        constant_propagation_report(prop_3_12()) == {"E": False},
    )
    failing = projection()
    report.check(
        "Projection does not propagate (the chase of P(x1,x2) loses x2)",
        constant_propagation_report(failing) == {"P": False},
    )
    halted = False
    try:
        inverse(failing)
    except InverseError:
        halted = True
    report.check("Inverse(Projection) halts without output (Step 1)", halted)
    return report.build()
