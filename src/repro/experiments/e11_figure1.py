"""E11 — **Figure 1** / Example 6.1: the bidirectional exchange tables.

Regenerates the figure cell by cell:

* I = {P(a,b,c), P(a',b,c')};
* U = chase_Σ(I) = {Q(a,b), Q(a',b), R(b,c), R(b,c')};
* with M' (the join quasi-inverse), V1 is the 2×2 product
  {P(a,b,c), P(a,b,c'), P(a',b,c), P(a',b,c')} and chase_Σ(V1) is
  *identical* to U — M' is faithful;
* with M'' (the split quasi-inverse), V2 has four facts with four
  nulls {P(a,b,Z), P(a',b,Z'), P(X,b,c), P(X',b,c')}, and chase_Σ(V2)
  = U2 strictly contains U but is homomorphically equivalent to it —
  M'' is faithful too.
"""

from __future__ import annotations

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    figure_1_instance,
)
from repro.chase.homomorphism import is_homomorphically_equivalent
from repro.datamodel.instances import Instance
from repro.dataexchange import analyze_round_trip
from repro.experiments.base import ExperimentReport, ReportBuilder


def run() -> ExperimentReport:
    report = ReportBuilder("E11", "Bidirectional exchange tables", "Figure 1 / Ex 6.1")
    mapping = decomposition()
    instance = figure_1_instance()

    expected_u = Instance.build(
        {"Q": [("a", "b"), ("a'", "b")], "R": [("b", "c"), ("b", "c'")]}
    )
    expected_v1 = Instance.build(
        {
            "P": [
                ("a", "b", "c"),
                ("a", "b", "c'"),
                ("a'", "b", "c"),
                ("a'", "b", "c'"),
            ]
        }
    )

    join = analyze_round_trip(mapping, decomposition_quasi_inverse_join(), instance)
    report.lines(join.trip.pretty())
    report.check("U matches the figure exactly", join.trip.exported == expected_u)
    report.check(
        "M': the reverse exchange is deterministic (single V1)",
        len(join.trip.recovered) == 1,
    )
    report.check(
        "M': V1 is the figure's 2×2 product instance",
        join.trip.recovered[0] == expected_v1,
    )
    report.check(
        "M': chase_Σ(V1) is identical to U",
        join.trip.re_exported[0] == expected_u,
    )
    report.check("M' is faithful with respect to M", join.faithful)

    split = analyze_round_trip(mapping, decomposition_quasi_inverse_split(), instance)
    report.check(
        "M'': single V2 with four facts over four nulls",
        len(split.trip.recovered) == 1
        and len(split.trip.recovered[0]) == 4
        and len(split.trip.recovered[0].nulls()) == 4,
    )
    u2 = split.trip.re_exported[0]
    report.check(
        "M'': U2 strictly extends U with null-carrying tuples",
        expected_u.issubset(u2) and len(u2) > len(expected_u),
    )
    report.check(
        "M'': U2 is homomorphically equivalent to U",
        is_homomorphically_equivalent(u2, expected_u),
    )
    report.check("M'' is faithful with respect to M", split.faithful)
    return report.build()
