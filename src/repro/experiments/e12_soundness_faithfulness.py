"""E12 — Theorems 6.7 and 6.8: soundness and faithfulness sweeps.

* Theorem 6.7: *every* quasi-inverse specified by disjunctive tgds
  with constants and inequalities among constants is sound — checked
  for all the hand-written quasi-inverses of the paper (including the
  deliberately lossy ``S(x) -> P(x)`` for Union) and every algorithm
  output, over catalog and random instances;
* Theorem 6.8: the QuasiInverse algorithm's outputs are additionally
  *faithful* — checked over the quasi-invertible catalog mappings and
  a sweep of random LAV mappings;
* the contrast: a sound quasi-inverse need not be faithful
  (``S(x) -> P(x)`` loses Q-facts of Union sources).
"""

from __future__ import annotations

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    example_4_5,
    projection,
    projection_quasi_inverse,
    thm_4_10,
    thm_4_11,
    union_mapping,
    union_quasi_inverse,
)
from repro.core import SchemaMapping, quasi_inverse
from repro.datamodel.instances import Instance
from repro.dataexchange import faithful_on, is_faithful, sound_on
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import random_ground_instance, random_lav_mapping


def _samples(mapping, count=4, n_facts=4):
    return [
        random_ground_instance(mapping.source, seed=seed, n_facts=n_facts, domain_size=3)
        for seed in range(count)
    ]


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E12", "Soundness and faithfulness in data exchange", "Theorems 6.7 / 6.8"
    )

    # Theorem 6.7 on the paper's hand-written quasi-inverses.
    lossy_union = SchemaMapping.from_text(
        union_mapping().target,
        union_mapping().source,
        "S(x) -> P(x)",
        name="Union-lossy",
    )
    hand_written = [
        (projection(), projection_quasi_inverse()),
        (union_mapping(), union_quasi_inverse()),
        (union_mapping(), lossy_union),
        (decomposition(), decomposition_quasi_inverse_join()),
        (decomposition(), decomposition_quasi_inverse_split()),
    ]
    for mapping, reverse in hand_written:
        ok, _ = sound_on(mapping, reverse, _samples(mapping))
        report.check(f"6.7: {reverse.name} sound w.r.t. {mapping.name}", ok)

    # The lossy union reverse is nevertheless faithful: ∼M does not
    # distinguish which relation a value came from.
    mixed = Instance.build({"P": [("a",)], "Q": [("b",)]})
    report.check(
        "S(x) -> P(x) is even faithful on P={a}, Q={b} (∼M hides origins)",
        is_faithful(union_mapping(), lossy_union, mixed),
    )

    # A sound reverse mapping need not be faithful: recovering from Q
    # only (dropping Decomposition's R rule) is sound but loses R-facts.
    partial = SchemaMapping.from_text(
        decomposition().target,
        decomposition().source,
        "Q(x, y) -> P(x, y, z)",
        name="Decomposition-partial",
    )
    one_fact = Instance.build({"P": [("a", "b", "c")]})
    report.check(
        "the partial reverse (Q rule only) is sound on P(a,b,c)",
        sound_on(decomposition(), partial, [one_fact])[0],
    )
    report.check(
        "…but NOT faithful: the recovered source cannot re-derive R(b,c)",
        not is_faithful(decomposition(), partial, one_fact),
    )

    # Theorem 6.8 on algorithm outputs: catalog…
    for mapping in (
        projection(),
        union_mapping(),
        decomposition(),
        example_4_5(),
        thm_4_10(),
        thm_4_11(),
    ):
        reverse = quasi_inverse(mapping)
        ok, _ = faithful_on(mapping, reverse, _samples(mapping))
        report.check(f"6.8: QuasiInverse({mapping.name}) faithful", ok)

    # …and random LAV mappings (quasi-invertible by Proposition 3.11).
    for seed in range(6):
        mapping = random_lav_mapping(seed, n_source=2, n_target=2, max_arity=2, n_tgds=3)
        reverse = quasi_inverse(mapping)
        ok, _ = faithful_on(mapping, reverse, _samples(mapping, count=3, n_facts=3))
        report.check(f"6.8: QuasiInverse(RandomLAV seed={seed}) faithful", ok)
    return report.build()
