"""E13 — Proposition 3.9 and the Section 5 remark: QuasiInverse vs
Inverse on invertible mappings.

* Proposition 3.9: on an invertible mapping, any quasi-inverse is an
  inverse — the QuasiInverse algorithm's output passes the exact
  bounded inverse check on every invertible catalog mapping;
* the Section 5 remark explains why both algorithms are still needed:
  QuasiInverse may emit disjunctions (and existential quantifiers)
  where Inverse emits full non-disjunctive tgds — the side-by-side
  language audit shows the difference.
"""

from __future__ import annotations

from repro.catalog import example_5_4, thm_4_8, thm_4_9
from repro.core import inverse, is_inverse, quasi_inverse
from repro.dependencies.dependency import language_audit
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E13", "QuasiInverse vs Inverse on invertible mappings",
        "Prop 3.9 / Section 5 remark",
    )
    for mapping in (thm_4_8(), thm_4_9(), example_5_4()):
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
        via_inverse = inverse(mapping)
        via_quasi = quasi_inverse(mapping)
        report.check(
            f"{mapping.name}: Inverse's output is an inverse",
            is_inverse(mapping, via_inverse, universe).holds,
        )
        report.check(
            f"{mapping.name}: QuasiInverse's output is an inverse too (Prop 3.9)",
            is_inverse(mapping, via_quasi, universe).holds,
        )
        inverse_features = language_audit(via_inverse.dependencies)
        quasi_features = language_audit(via_quasi.dependencies)
        report.check(
            f"{mapping.name}: Inverse emits full non-disjunctive tgds",
            not inverse_features.disjunctions and not inverse_features.existentials,
            f"Inverse: {len(via_inverse.dependencies)} deps "
            f"({inverse_features.describe()}); QuasiInverse: "
            f"{len(via_quasi.dependencies)} deps ({quasi_features.describe()})",
        )
        report.record(
            f"{mapping.name}",
            {
                "inverse_deps": len(via_inverse.dependencies),
                "quasi_deps": len(via_quasi.dependencies),
                "quasi_uses_existentials": quasi_features.existentials,
                "quasi_uses_disjunctions": quasi_features.disjunctions,
            },
        )
    # The remark's point in the concrete: on Example 5.4's mapping the
    # QuasiInverse output keeps existential quantifiers (reversing the
    # Q-rule needs ∃z (R(x1,z) ∧ R(z,x1))) that the Inverse output —
    # full tgds by construction — avoids.
    quasi_54 = quasi_inverse(example_5_4())
    report.check(
        "Example5.4: QuasiInverse's output uses ∃ where Inverse's does not",
        language_audit(quasi_54.dependencies).existentials
        and not language_audit(inverse(example_5_4()).dependencies).existentials,
    )
    return report.build()
