"""E14 — Section 3 remark: unique solutions do not imply invertibility.

The paper notes (with the proof deferred to the full version) that
the unique-solutions property of [3] — necessary for invertibility —
is *not* sufficient: there is a mapping with unique solutions that
lacks the (=,=)-subset property, hence has no inverse by
Corollary 3.6.  The catalog's witness, found by exhaustive search
over small full mappings, is

    A(x) -> C(x)
    B(x) -> C(x) ∧ D(x)
    A(x) ∧ B(x) -> E(x)

whose chase profile (C, D, E) = (A ∪ B, B, A ∩ B) is injective in
(A, B) — solutions are unique — while Sol({B(0)}) ⊆ Sol({A(0)}) and
{A(0)} ⊄ {B(0)}.  The (=,=)-subset violation involves no unbounded
quantifier, so the refutation is exact.

The experiment also confirms the implication chain around it: the
(=,=)-subset property implies unique solutions (checked on every
invertible catalog mapping), and the Inverse algorithm's output on
this mapping is indeed not an inverse.
"""

from __future__ import annotations

from repro.catalog import (
    example_5_4,
    thm_4_8,
    unique_solutions_separation,
    unique_solutions_separation_witnesses,
)
from repro.core import (
    Equality,
    inverse,
    is_inverse,
    solutions_contained,
    subset_property,
    unique_solutions_property,
)
from repro.experiments.base import ExperimentReport, ReportBuilder
from repro.workloads import instance_universe


def run() -> ExperimentReport:
    report = ReportBuilder(
        "E14", "Unique solutions without an inverse", "Section 3 remark"
    )
    mapping = unique_solutions_separation()
    left, right = unique_solutions_separation_witnesses()
    universe = instance_universe(mapping.source, [0, 1], max_facts=4)

    unique, _ = unique_solutions_property(mapping, universe)
    report.check(
        f"unique-solutions property holds over all {len(universe)} instances",
        unique,
        "profile (A∪B, B, A∩B) is injective in (A, B)",
    )
    report.check(
        "Sol(I2) ⊆ Sol(I1) on the witness pair",
        solutions_contained(mapping, right, left),
        f"I1 = {left}, I2 = {right}",
    )
    report.check(
        "…but I1 ⊄ I2: an exact (=,=)-subset violation",
        not left.issubset(right),
    )
    equality = Equality()
    verdict = subset_property(
        mapping, equality, equality, [left, right], witness_universe=[left, right]
    )
    report.check(
        "the generic checker confirms the violation",
        not verdict.holds and (left, right) in verdict.violations,
    )
    report.line(
        "  by Corollary 3.6, the mapping has no inverse although the "
        "necessary condition of [3] holds."
    )

    computed = inverse(mapping)  # constant propagation holds, so it runs…
    small = instance_universe(mapping.source, [0], max_facts=2)
    report.check(
        "…and indeed the Inverse algorithm's output is not an inverse",
        not is_inverse(mapping, computed, small).holds,
    )

    # Sanity of the implication direction: on invertible mappings the
    # (=,=)-subset property holds, and it entails unique solutions.
    for invertible in (thm_4_8(), example_5_4()):
        inv_universe = instance_universe(invertible.source, ["a", "b"], max_facts=2)
        holds = subset_property(
            invertible,
            equality,
            equality,
            inv_universe,
            witness_universe=inv_universe,
        ).holds
        unique_inv, _ = unique_solutions_property(invertible, inv_universe)
        report.check(
            f"{invertible.name}: (=,=)-subset property and unique solutions "
            "hold together",
            holds and unique_inv,
        )
    return report.build()
