"""A complete subset-property refuter for the Proposition 3.12 mapping.

The mapping is  E(x,z) ∧ E(z,y) → F(x,y) ∧ M(z).  For a ground
instance I (an edge set E), chase(I) is determined by the *profile*
(F, M) = (the 2-paths of E, the midpoints of E); two instances are
∼M-equivalent iff their profiles coincide, and Sol(I2) ⊆ Sol(I1) iff
profile(I1) ⊆ profile(I2) componentwise.

Normalization lemma (specific to this mapping): an edge that
participates in no 2-path contributes nothing to the profile, so
deleting it from both members of a witness pair (I1' ⊆ I2') preserves
profiles and containment.  Every surviving edge lies on a 2-path of
I2', hence its endpoints lie in adom(F2) ∪ M2 ⊆ adom(chase(I2)).
Therefore the subset property fails on (I1, I2) *over all ground
instances* iff it fails with witnesses drawn from edge sets over
adom(chase(I2)) — a finite, exhaustively searchable space.

The search below enumerates every edge set over a fixed domain as a
bitmask, computes all profiles, computes the profiles attainable as
sub-edge-sets of realizations of each profile, and reports pairs
(profile1 ⊆ profile2) where profile1 is not attainable inside any
realization of profile2.  Any such pair refutes the (∼M,∼M)-subset
property outright, which by Theorem 3.5 proves the mapping has no
quasi-inverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.datamodel.instances import Instance


@dataclass(frozen=True)
class ViolationWitness:
    """A certified subset-property violation for the 3.12 mapping."""

    left: Instance   # I1
    right: Instance  # I2
    domain_size: int  # witnesses searched exhaustively over this domain


def _profile(mask: int, pairs: List[Tuple[int, int]], index: Dict[Tuple[int, int], int]):
    """(F, M) of the edge set encoded by *mask*, as bitmasks."""
    outgoing: Dict[int, List[int]] = {}
    edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
    for source, target in edges:
        outgoing.setdefault(source, []).append(target)
    paths = 0
    midpoints = 0
    for source, middle in edges:
        for target in outgoing.get(middle, ()):
            paths |= 1 << index[(source, target)]
            midpoints |= 1 << middle
    return (paths, midpoints)


def search_violation(domain_size: int = 3) -> Optional[ViolationWitness]:
    """Exhaustive search for a subset-property violation.

    Enumerates every instance over a domain of *domain_size* constants
    (complete for witness pairs whose normalized form fits in that
    domain, per the module docstring).  Returns the lexicographically
    first violation, or None.
    """
    pairs = [(a, b) for a in range(domain_size) for b in range(domain_size)]
    index = {pair: i for i, pair in enumerate(pairs)}
    total = 1 << len(pairs)

    profiles = [_profile(mask, pairs, index) for mask in range(total)]
    realizations: Dict[Tuple[int, int], List[int]] = {}
    for mask in range(total):
        realizations.setdefault(profiles[mask], []).append(mask)

    attainable: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
    for profile, masks in realizations.items():
        inside: Set[Tuple[int, int]] = set()
        for mask in masks:
            submask = mask
            while True:
                inside.add(profiles[submask])
                if submask == 0:
                    break
                submask = (submask - 1) & mask
        attainable[profile] = inside

    ordered = sorted(realizations)
    for profile1 in ordered:
        paths1, mids1 = profile1
        for profile2 in ordered:
            paths2, mids2 = profile2
            if paths1 & ~paths2 or mids1 & ~mids2:
                continue  # need profile1 ⊆ profile2 componentwise
            if profile1 in attainable[profile2]:
                continue
            left_mask = min(realizations[profile1])
            right_mask = min(realizations[profile2])
            return ViolationWitness(
                _to_instance(left_mask, pairs),
                _to_instance(right_mask, pairs),
                domain_size,
            )
    return None


def _to_instance(mask: int, pairs: List[Tuple[int, int]]) -> Instance:
    return Instance.build(
        {"E": [pairs[i] for i in range(len(pairs)) if mask >> i & 1]}
    )
