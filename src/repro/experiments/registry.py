"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.experiments.base import ExperimentReport
from repro.experiments import (
    e01_intro_examples,
    e02_decomposition,
    e03_lav_quasi,
    e04_full_no_quasi,
    e05_quasiinverse_algorithm,
    e06_full_language,
    e07_lav_language,
    e08_necessity,
    e09_inverse_algorithm,
    e10_constant_propagation,
    e11_figure1,
    e12_soundness_faithfulness,
    e13_invertible_comparison,
    e14_unique_solutions_gap,
)

_REGISTRY: Dict[str, Callable[[], ExperimentReport]] = {
    "E1": e01_intro_examples.run,
    "E2": e02_decomposition.run,
    "E3": e03_lav_quasi.run,
    "E4": e04_full_no_quasi.run,
    "E5": e05_quasiinverse_algorithm.run,
    "E6": e06_full_language.run,
    "E7": e07_lav_language.run,
    "E8": e08_necessity.run,
    "E9": e09_inverse_algorithm.run,
    "E10": e10_constant_propagation.run,
    "E11": e11_figure1.run,
    "E12": e12_soundness_faithfulness.run,
    "E13": e13_invertible_comparison.run,
    "E14": e14_unique_solutions_gap.run,
}


def all_experiment_ids() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentReport]:
    normalized = experiment_id.upper()
    if normalized not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[normalized]


def run_experiment(experiment_id: str) -> ExperimentReport:
    return get_experiment(experiment_id)()


def run_all() -> List[ExperimentReport]:
    return [runner() for runner in _REGISTRY.values()]
