"""Exporters: SQL rendering and JSON serialization.

The paper's objects map naturally onto relational databases:
schemas to DDL, ground instances to DML, full GAV-style tgds to
INSERT…SELECT statements, and conjunctive queries to SELECT
statements.  The JSON serializers provide lossless round-trip
persistence for schemas, instances, dependencies, and mappings.
"""

from repro.export.sql import (
    SqlExportError,
    cq_to_select,
    instance_to_inserts,
    mapping_to_sql,
    schema_to_ddl,
    tgd_to_insert_select,
)
from repro.export.serialization import (
    SerializationError,
    dependency_from_json,
    dependency_to_json,
    instance_from_json,
    instance_to_json,
    mapping_from_json,
    mapping_to_json,
    schema_from_json,
    schema_to_json,
)

__all__ = [
    "SerializationError",
    "SqlExportError",
    "cq_to_select",
    "dependency_from_json",
    "dependency_to_json",
    "instance_from_json",
    "instance_to_json",
    "instance_to_inserts",
    "mapping_from_json",
    "mapping_to_json",
    "mapping_to_sql",
    "schema_from_json",
    "schema_to_json",
    "schema_to_ddl",
    "tgd_to_insert_select",
]
