"""Lossless JSON serialization for the library's core objects.

Terms carry an explicit kind tag so that constants, labeled nulls,
and variables survive the round trip; dependencies serialize their
premise constraints; mappings serialize both schemas and the
dependency list.  ``*_to_json`` functions return plain JSON-compatible
dictionaries (use :mod:`json` to produce text); ``*_from_json``
invert them exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.core.mapping import SchemaMapping


class SerializationError(ValueError):
    """Raised on malformed serialized input."""


# -- terms ----------------------------------------------------------------

def _term_to_json(term: Term) -> Dict[str, Any]:
    if isinstance(term, Constant):
        return {"kind": "constant", "value": term.value}
    if isinstance(term, Null):
        return {"kind": "null", "name": term.name}
    if isinstance(term, Variable):
        return {"kind": "variable", "name": term.name}
    raise SerializationError(f"unknown term {term!r}")


def _term_from_json(payload: Dict[str, Any]) -> Term:
    kind = payload.get("kind")
    if kind == "constant":
        value = payload["value"]
        if not isinstance(value, (str, int)):
            raise SerializationError(f"bad constant value {value!r}")
        return Constant(value)
    if kind == "null":
        return Null(str(payload["name"]))
    if kind == "variable":
        return Variable(str(payload["name"]))
    raise SerializationError(f"unknown term kind {kind!r}")


# -- atoms ----------------------------------------------------------------

def _atom_to_json(atom: Atom) -> Dict[str, Any]:
    return {
        "relation": atom.relation,
        "args": [_term_to_json(arg) for arg in atom.args],
    }


def _atom_from_json(payload: Dict[str, Any]) -> Atom:
    try:
        relation = payload["relation"]
        args = tuple(_term_from_json(arg) for arg in payload["args"])
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed atom: {payload!r}") from error
    return Atom(str(relation), args)


# -- schemas ----------------------------------------------------------------

def schema_to_json(schema: Schema) -> Dict[str, Any]:
    return {"relations": {name: arity for name, arity in schema.relations}}


def schema_from_json(payload: Dict[str, Any]) -> Schema:
    try:
        relations = payload["relations"]
        return Schema.of({str(k): int(v) for k, v in relations.items()})
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed schema: {payload!r}") from error


# -- instances ----------------------------------------------------------------

def instance_to_json(instance: Instance) -> Dict[str, Any]:
    return {"facts": [_atom_to_json(fact) for fact in instance.sorted_facts()]}


def instance_from_json(payload: Dict[str, Any]) -> Instance:
    try:
        facts = payload["facts"]
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed instance: {payload!r}") from error
    return Instance.of(_atom_from_json(fact) for fact in facts)


# -- dependencies ----------------------------------------------------------------

def dependency_to_json(dependency: Dependency) -> Dict[str, Any]:
    return {
        "premise": {
            "atoms": [_atom_to_json(a) for a in dependency.premise.atoms],
            "constant_vars": sorted(
                v.name for v in dependency.premise.constant_vars
            ),
            "inequalities": sorted(
                [left.name, right.name]
                for left, right in dependency.premise.inequalities
            ),
        },
        "disjuncts": [
            [_atom_to_json(a) for a in disjunct]
            for disjunct in dependency.disjuncts
        ],
    }


def dependency_from_json(payload: Dict[str, Any]) -> Dependency:
    try:
        premise_payload = payload["premise"]
        atoms = tuple(
            _atom_from_json(a) for a in premise_payload["atoms"]
        )
        constant_vars = frozenset(
            Variable(str(name)) for name in premise_payload.get("constant_vars", [])
        )
        inequalities = frozenset(
            (Variable(str(left)), Variable(str(right)))
            for left, right in premise_payload.get("inequalities", [])
        )
        disjuncts = tuple(
            tuple(_atom_from_json(a) for a in disjunct)
            for disjunct in payload["disjuncts"]
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed dependency: {payload!r}") from error
    return Dependency(Premise(atoms, constant_vars, inequalities), disjuncts)


# -- mappings ----------------------------------------------------------------

def mapping_to_json(mapping: SchemaMapping) -> Dict[str, Any]:
    return {
        "name": mapping.name,
        "source": schema_to_json(mapping.source),
        "target": schema_to_json(mapping.target),
        "dependencies": [
            dependency_to_json(dep) for dep in mapping.dependencies
        ],
    }


def mapping_from_json(payload: Dict[str, Any]) -> SchemaMapping:
    try:
        source = schema_from_json(payload["source"])
        target = schema_from_json(payload["target"])
        dependencies = tuple(
            dependency_from_json(dep) for dep in payload["dependencies"]
        )
        name = str(payload.get("name", ""))
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed mapping: {payload!r}") from error
    return SchemaMapping(source, target, dependencies, name=name)
