"""Rendering schemas, instances, mappings, and queries as SQL.

The translations follow the textbook correspondences:

* a schema relation R/k becomes ``CREATE TABLE r (c1, …, ck)``;
* a ground instance becomes INSERT statements (labeled nulls render
  as SQL NULL — lossy, flagged unless ``allow_nulls``);
* a *full* tgd whose conclusion atoms repeat no variable position
  within an atom beyond what equality predicates can express becomes
  one ``INSERT INTO … SELECT DISTINCT …`` per conclusion atom, with
  the premise compiled to a join (shared variables become equality
  predicates, ``Constant(x)`` is a no-op over SQL tables, and
  inequalities become ``<>`` predicates);
* a conjunctive query becomes a ``SELECT DISTINCT`` over the same
  join compilation.

Existential conclusions have no direct SQL equivalent (they need
labeled nulls / skolems), so :func:`tgd_to_insert_select` refuses
non-full dependencies rather than silently changing semantics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.dataexchange.queries import ConjunctiveQuery
from repro.core.mapping import SchemaMapping


class SqlExportError(ValueError):
    """Raised when an object has no faithful SQL rendering."""


def _identifier(name: str) -> str:
    """A conservative SQL identifier: lowercase, quoted if needed."""
    lowered = name.lower()
    if lowered.isidentifier():
        return lowered
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _column(index: int) -> str:
    return f"c{index + 1}"


def _literal(term: Term, *, allow_nulls: bool) -> str:
    if isinstance(term, Constant):
        if isinstance(term.value, int):
            return str(term.value)
        escaped = str(term.value).replace("'", "''")
        return f"'{escaped}'"
    if isinstance(term, Null):
        if not allow_nulls:
            raise SqlExportError(
                f"labeled null {term} has no faithful SQL literal; pass "
                "allow_nulls=True to render it as NULL (lossy)"
            )
        return "NULL"
    raise SqlExportError(f"variable {term} cannot appear in a SQL literal")


def schema_to_ddl(schema: Schema, *, text_type: str = "TEXT") -> str:
    """CREATE TABLE statements for every relation of *schema*."""
    statements: List[str] = []
    for relation, arity in schema.relations:
        columns = ", ".join(f"{_column(i)} {text_type}" for i in range(arity))
        statements.append(
            f"CREATE TABLE {_identifier(relation)} ({columns});"
        )
    return "\n".join(statements)


def instance_to_inserts(instance: Instance, *, allow_nulls: bool = False) -> str:
    """INSERT statements materializing *instance*, in sorted order."""
    statements: List[str] = []
    for fact in instance.sorted_facts():
        values = ", ".join(
            _literal(arg, allow_nulls=allow_nulls) for arg in fact.args
        )
        statements.append(
            f"INSERT INTO {_identifier(fact.relation)} VALUES ({values});"
        )
    return "\n".join(statements)


def _compile_premise(
    atoms: Sequence[Atom],
    inequalities,
) -> Tuple[List[str], Dict[Variable, str], List[str]]:
    """FROM aliases, a variable -> column binding, and WHERE predicates."""
    from_clauses: List[str] = []
    binding: Dict[Variable, str] = {}
    predicates: List[str] = []
    for index, atom in enumerate(atoms):
        alias = f"t{index}"
        from_clauses.append(f"{_identifier(atom.relation)} AS {alias}")
        for position, arg in enumerate(atom.args):
            column = f"{alias}.{_column(position)}"
            if isinstance(arg, Variable):
                if arg in binding:
                    predicates.append(f"{binding[arg]} = {column}")
                else:
                    binding[arg] = column
            elif isinstance(arg, Constant):
                predicates.append(
                    f"{column} = {_literal(arg, allow_nulls=False)}"
                )
            else:
                raise SqlExportError(
                    f"premise atom {atom} contains a labeled null"
                )
    for left, right in sorted(inequalities):
        if left not in binding or right not in binding:
            raise SqlExportError(
                f"inequality {left} != {right} over unbound variables"
            )
        predicates.append(f"{binding[left]} <> {binding[right]}")
    return from_clauses, binding, predicates


def tgd_to_insert_select(dependency: Dependency) -> str:
    """One INSERT…SELECT per conclusion atom of a full tgd.

    ``Constant(x)`` premises are dropped (every SQL value is a
    constant); inequalities compile to ``<>``.  Refuses disjunctive or
    existential conclusions, which SQL cannot express faithfully.
    """
    if not dependency.is_disjunction_free():
        raise SqlExportError("disjunctive conclusions have no SQL rendering")
    if not dependency.is_full():
        raise SqlExportError(
            "existential conclusions need labeled nulls; SQL INSERT…SELECT "
            "only renders full tgds"
        )
    from_clauses, binding, predicates = _compile_premise(
        dependency.premise.atoms, dependency.premise.inequalities
    )
    statements: List[str] = []
    for atom in dependency.disjuncts[0]:
        columns: List[str] = []
        for arg in atom.args:
            if isinstance(arg, Variable):
                columns.append(binding[arg])
            elif isinstance(arg, Constant):
                columns.append(_literal(arg, allow_nulls=False))
            else:
                raise SqlExportError(
                    f"conclusion atom {atom} contains a labeled null"
                )
        select = f"SELECT DISTINCT {', '.join(columns)} FROM " + ", ".join(
            from_clauses
        )
        if predicates:
            select += " WHERE " + " AND ".join(predicates)
        statements.append(
            f"INSERT INTO {_identifier(atom.relation)} {select};"
        )
    return "\n".join(statements)


def mapping_to_sql(mapping: SchemaMapping) -> str:
    """DDL for both schemas plus INSERT…SELECT per dependency.

    Only defined for full, disjunction-free mappings (GAV-style ETL);
    raises :class:`SqlExportError` otherwise.
    """
    parts = [
        "-- source schema",
        schema_to_ddl(mapping.source),
        "-- target schema",
        schema_to_ddl(mapping.target),
        "-- mapping",
    ]
    for dependency in mapping.dependencies:
        parts.append(tgd_to_insert_select(dependency))
    return "\n".join(parts)


def cq_to_select(query: ConjunctiveQuery) -> str:
    """A SELECT DISTINCT statement computing *query*."""
    from_clauses, binding, predicates = _compile_premise(query.atoms, ())
    if query.head:
        columns = ", ".join(binding[variable] for variable in query.head)
    else:
        columns = "1"
    select = f"SELECT DISTINCT {columns} FROM " + ", ".join(from_clauses)
    if predicates:
        select += " WHERE " + " AND ".join(predicates)
    return select + ";"
