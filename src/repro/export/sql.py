"""Rendering schemas, instances, mappings, and queries as SQL.

The translations follow the textbook correspondences:

* a schema relation R/k becomes ``CREATE TABLE r (c1, …, ck)``;
  names that would collide after identifier-folding (``R`` vs ``r``)
  raise :class:`SqlExportError` instead of silently sharing a table;
* a ground instance becomes INSERT statements (labeled nulls render
  as SQL NULL — lossy, flagged unless ``allow_nulls``).  Every
  constant renders as a *quoted string*, matching the textual column
  type the DDL declares: an unquoted integer literal would land in a
  TEXT-affinity column as its string twin, silently merging
  ``Constant(3)`` with ``Constant("3")`` and breaking equality
  predicates on engines with strict column types;
* a *full* tgd whose conclusion atoms repeat no variable position
  within an atom beyond what equality predicates can express becomes
  one ``INSERT INTO … SELECT DISTINCT …`` per conclusion atom, with
  the premise compiled to a join (shared variables become equality
  predicates, ``Constant(x)`` is a no-op over SQL tables, and
  inequalities become ``<>`` predicates);
* a conjunctive query becomes a ``SELECT DISTINCT`` over the same
  join compilation.

Existential conclusions have no direct SQL equivalent (they need
labeled nulls / skolems), so :func:`tgd_to_insert_select` refuses
non-full dependencies rather than silently changing semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Term, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.dataexchange.queries import ConjunctiveQuery
from repro.core.mapping import SchemaMapping


class SqlExportError(ValueError):
    """Raised when an object has no faithful SQL rendering."""


def _identifier(name: str) -> str:
    """A conservative SQL identifier: lowercase, quoted if needed."""
    lowered = name.lower()
    if lowered.isidentifier():
        return lowered
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _assert_distinct_tables(names: Iterable[str], context: str) -> None:
    """Reject relation names that fold to one SQL table.

    ``_identifier`` lowercases, so ``R`` and ``r`` would silently
    share ``CREATE TABLE r`` and every statement against either would
    read and write the other's rows.
    """
    seen: Dict[str, str] = {}
    for name in names:
        ident = _identifier(name)
        other = seen.setdefault(ident, name)
        if other != name:
            raise SqlExportError(
                f"relations {other!r} and {name!r} in {context} both "
                f"render as SQL table {ident}; rename one of them"
            )


def _column(index: int) -> str:
    return f"c{index + 1}"


def _literal(term: Term, *, allow_nulls: bool) -> str:
    if isinstance(term, Constant):
        # Always a quoted string: the DDL declares textual columns, so
        # an unquoted integer would store/compare as its string twin
        # under SQLite affinity and be a type error on strict engines.
        escaped = str(term.value).replace("'", "''")
        return f"'{escaped}'"
    if isinstance(term, Null):
        if not allow_nulls:
            raise SqlExportError(
                f"labeled null {term} has no faithful SQL literal; pass "
                "allow_nulls=True to render it as NULL (lossy)"
            )
        return "NULL"
    raise SqlExportError(f"variable {term} cannot appear in a SQL literal")


def schema_to_ddl(schema: Schema, *, text_type: str = "TEXT") -> str:
    """CREATE TABLE statements for every relation of *schema*."""
    _assert_distinct_tables(
        (relation for relation, _ in schema.relations), "schema"
    )
    statements: List[str] = []
    for relation, arity in schema.relations:
        columns = ", ".join(f"{_column(i)} {text_type}" for i in range(arity))
        statements.append(
            f"CREATE TABLE {_identifier(relation)} ({columns});"
        )
    return "\n".join(statements)


def instance_to_inserts(instance: Instance, *, allow_nulls: bool = False) -> str:
    """INSERT statements materializing *instance*, in sorted order."""
    _assert_distinct_tables(
        sorted({fact.relation for fact in instance.facts}), "instance"
    )
    statements: List[str] = []
    for fact in instance.sorted_facts():
        values = ", ".join(
            _literal(arg, allow_nulls=allow_nulls) for arg in fact.args
        )
        statements.append(
            f"INSERT INTO {_identifier(fact.relation)} VALUES ({values});"
        )
    return "\n".join(statements)


def _compile_premise(
    atoms: Sequence[Atom],
    inequalities,
) -> Tuple[List[str], Dict[Variable, str], List[str]]:
    """FROM aliases, a variable -> column binding, and WHERE predicates."""
    from_clauses: List[str] = []
    binding: Dict[Variable, str] = {}
    predicates: List[str] = []
    for index, atom in enumerate(atoms):
        alias = f"t{index}"
        from_clauses.append(f"{_identifier(atom.relation)} AS {alias}")
        for position, arg in enumerate(atom.args):
            column = f"{alias}.{_column(position)}"
            if isinstance(arg, Variable):
                if arg in binding:
                    predicates.append(f"{binding[arg]} = {column}")
                else:
                    binding[arg] = column
            elif isinstance(arg, Constant):
                predicates.append(
                    f"{column} = {_literal(arg, allow_nulls=False)}"
                )
            else:
                raise SqlExportError(
                    f"premise atom {atom} contains a labeled null"
                )
    for left, right in sorted(inequalities):
        if left not in binding or right not in binding:
            raise SqlExportError(
                f"inequality {left} != {right} over unbound variables"
            )
        predicates.append(f"{binding[left]} <> {binding[right]}")
    return from_clauses, binding, predicates


def tgd_to_insert_select(dependency: Dependency) -> str:
    """One INSERT…SELECT per conclusion atom of a full tgd.

    ``Constant(x)`` premises are dropped (every SQL value is a
    constant); inequalities compile to ``<>``.  Refuses disjunctive or
    existential conclusions, which SQL cannot express faithfully.
    """
    if not dependency.is_disjunction_free():
        raise SqlExportError("disjunctive conclusions have no SQL rendering")
    if not dependency.is_full():
        raise SqlExportError(
            "existential conclusions need labeled nulls; SQL INSERT…SELECT "
            "only renders full tgds"
        )
    _assert_distinct_tables(
        sorted(
            {atom.relation for atom in dependency.premise.atoms}
            | {atom.relation for atom in dependency.disjuncts[0]}
        ),
        "dependency",
    )
    from_clauses, binding, predicates = _compile_premise(
        dependency.premise.atoms, dependency.premise.inequalities
    )
    statements: List[str] = []
    for atom in dependency.disjuncts[0]:
        columns: List[str] = []
        for arg in atom.args:
            if isinstance(arg, Variable):
                columns.append(binding[arg])
            elif isinstance(arg, Constant):
                columns.append(_literal(arg, allow_nulls=False))
            else:
                raise SqlExportError(
                    f"conclusion atom {atom} contains a labeled null"
                )
        select = f"SELECT DISTINCT {', '.join(columns)} FROM " + ", ".join(
            from_clauses
        )
        if predicates:
            select += " WHERE " + " AND ".join(predicates)
        statements.append(
            f"INSERT INTO {_identifier(atom.relation)} {select};"
        )
    return "\n".join(statements)


def mapping_to_sql(mapping: SchemaMapping) -> str:
    """DDL for both schemas plus INSERT…SELECT per dependency.

    Only defined for full, disjunction-free mappings (GAV-style ETL);
    raises :class:`SqlExportError` otherwise — including when a source
    and a target relation fold to one SQL table, since both schemas
    share one database.
    """
    sides = [
        ("source", relation) for relation, _ in mapping.source.relations
    ] + [("target", relation) for relation, _ in mapping.target.relations]
    seen: Dict[str, Tuple[str, str]] = {}
    for side, relation in sides:
        ident = _identifier(relation)
        other = seen.setdefault(ident, (side, relation))
        if other != (side, relation):
            raise SqlExportError(
                f"{other[0]} relation {other[1]!r} and {side} relation "
                f"{relation!r} both render as SQL table {ident}; the "
                "exported script would read and write one table for both"
            )
    parts = [
        "-- source schema",
        schema_to_ddl(mapping.source),
        "-- target schema",
        schema_to_ddl(mapping.target),
        "-- mapping",
    ]
    for dependency in mapping.dependencies:
        parts.append(tgd_to_insert_select(dependency))
    return "\n".join(parts)


def cq_to_select(query: ConjunctiveQuery) -> str:
    """A SELECT DISTINCT statement computing *query*."""
    _assert_distinct_tables(
        sorted({atom.relation for atom in query.atoms}), "query"
    )
    from_clauses, binding, predicates = _compile_premise(query.atoms, ())
    if query.head:
        columns = ", ".join(binding[variable] for variable in query.head)
    else:
        columns = "1"
    select = f"SELECT DISTINCT {columns} FROM " + ", ".join(from_clauses)
    if predicates:
        select += " WHERE " + " AND ".join(predicates)
    return select + ";"
