"""Checking-as-a-service: a warm-state daemon for mapping checks.

Every CLI invocation pays cold-start for the whole engine — intern
table, compiled join plans, chase/verdict memo caches, the SQLite
verdict store.  This package keeps all of that warm in one long-lived
asyncio daemon (``python -m repro.service serve``) and accepts
mapping-checking jobs over HTTP/JSON:

* :mod:`repro.service.protocol` — the job wire format: kinds, the
  state machine, HTTP-status/exit-code tables, payload normalization
  and content-addressed job keys;
* :mod:`repro.service.jobs` — synchronous job execution shared with
  the CLI's ``check`` verb, so service responses embed byte-identical
  report renderings;
* :mod:`repro.service.queue` — the batching job queue: bounded worker
  threads, per-job budgets and checkpoint journals, deduplication of
  identical in-flight requests, graceful drain + restart resume;
* :mod:`repro.service.app` — the stdlib asyncio HTTP server (no
  third-party web framework: the container bans new dependencies);
* :mod:`repro.service.client` — the blocking thin client the CLI's
  ``--server`` mode and the ``submit`` / ``status`` verbs use.

Job terminal states map exactly onto the CLI's exit codes — 0 holds /
1 violated / 3 partial / 4 faulted — and onto HTTP statuses (200 /
422 / 206 / 424) so a curl probe and a CLI run always agree.
"""

from repro.service.client import ServiceClient, discover_endpoint
from repro.service.jobs import JobOutcome, execute_job
from repro.service.protocol import (
    JOB_KINDS,
    JOB_STATES,
    STATE_EXIT_CODES,
    STATE_HTTP_STATUS,
    TERMINAL_STATES,
    job_key,
    normalize_job,
)
from repro.service.queue import JobQueue, JobRecord

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "JobOutcome",
    "JobQueue",
    "JobRecord",
    "STATE_EXIT_CODES",
    "STATE_HTTP_STATUS",
    "TERMINAL_STATES",
    "ServiceClient",
    "discover_endpoint",
    "execute_job",
    "job_key",
    "normalize_job",
]
