"""Entry point: ``python -m repro.service {serve,submit,status,stats,shutdown}``.

``serve`` runs the warm-state daemon in the foreground; ``submit`` /
``status`` / ``stats`` / ``shutdown`` are thin-client verbs that
discover the daemon through ``--server``, ``REPRO_SERVICE_URL``, or
the state directory's endpoint file (see
:mod:`repro.service.client`).

Environment knobs (flags win): ``REPRO_SERVICE_HOST``,
``REPRO_SERVICE_PORT``, ``REPRO_SERVICE_MAX_JOBS``,
``REPRO_SERVICE_JOB_DEADLINE``, ``REPRO_SERVICE_JOB_RETRIES``,
``REPRO_SERVICE_STATE``.

Exit codes mirror the CLI wherever a job reaches a terminal state:
0 done / 1 violated / 3 partial / 4 faulted / 5 cancelled; 2 for
usage errors and an unreachable daemon.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, discover_endpoint, state_dir
from repro.service.queue import JobQueue


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str) -> Optional[float]:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return None


# -- serve -----------------------------------------------------------------


def _configure_daemon_engine(arguments: argparse.Namespace) -> None:
    """Install the daemon-wide engine defaults (jobs may override the
    per-sweep ones in their specs)."""
    from repro.engine import resize_caches, set_default_workers

    if arguments.workers:
        set_default_workers(arguments.workers)
    if arguments.cache_size:
        resize_caches(arguments.cache_size)
    for flag, knob in (
        ("store", "REPRO_STORE"),
        ("backend", "REPRO_BACKEND"),
        ("symmetry", "REPRO_SYMMETRY"),
    ):
        value = getattr(arguments, flag, None)
        if value is not None:
            os.environ[knob] = str(value)


async def _serve(arguments: argparse.Namespace) -> int:
    import faulthandler

    try:
        faulthandler.register(signal.SIGUSR1)  # live thread dump for ops
    except (AttributeError, ValueError):
        pass
    _configure_daemon_engine(arguments)
    state = state_dir(arguments.state_dir)
    queue = JobQueue(
        state,
        max_jobs=arguments.max_jobs,
        job_deadline=arguments.job_deadline,
        max_retries=arguments.job_retries,
    )
    requeued = queue.load()
    await queue.start()
    stop = asyncio.Event()
    app = ServiceApp(
        queue,
        host=arguments.host,
        port=arguments.port,
        on_shutdown=stop.set,
    )
    await app.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    print(
        f"repro service listening on http://{app.host}:{app.port} "
        f"(state: {state}, max_jobs: {queue.max_jobs})",
        flush=True,
    )
    if requeued:
        print(f"re-queued {requeued} unfinished job(s); sweeps will resume", flush=True)
    await stop.wait()
    print("draining in-flight jobs through the checkpoint journal...", flush=True)
    await app.stop()
    await queue.drain(timeout=arguments.drain_timeout)
    print("service stopped", flush=True)
    return 0


# -- thin-client verbs -----------------------------------------------------


def _client(arguments: argparse.Namespace) -> ServiceClient:
    return ServiceClient(
        discover_endpoint(arguments.server, arguments.state_dir),
        timeout=arguments.timeout,
    )


def _build_payload(arguments: argparse.Namespace) -> Dict[str, Any]:
    if arguments.payload:
        payload = json.loads(arguments.payload)
        if not isinstance(payload, dict):
            raise SystemExit("--payload must be a JSON object")
        return payload
    payload: Dict[str, Any] = {"kind": arguments.kind}
    if arguments.kind == "experiment":
        payload["experiment"] = arguments.target
        return payload
    payload["mapping"] = arguments.target
    if arguments.reverse:
        payload["reverse"] = arguments.reverse
    if arguments.domain:
        payload["domain"] = arguments.domain
    if arguments.max_facts is not None:
        payload["max_facts"] = arguments.max_facts
    for option in (
        "workers",
        "symmetry",
        "backend",
        "shards",
        "shard_id",
        "deadline",
        "max_instances",
        "max_chase_steps",
    ):
        value = getattr(arguments, option, None)
        if value is not None:
            payload[option] = value
    return payload


def _print_job(job: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(job, indent=2, ensure_ascii=False))
        return
    rendering = (job.get("outcome") or {}).get("rendering")
    if rendering:
        print(rendering)
    else:
        line = f"{job['id']}  {job['state']:<10} kind={job['kind']}"
        if job.get("resumed_prefix"):
            line += f" resumed_prefix={job['resumed_prefix']}"
        if job.get("deduplicated"):
            line += f" deduplicated={job['deduplicated']}"
        print(line)


def _job_exit(job: Dict[str, Any]) -> int:
    code = job.get("exit_code")
    return int(code) if code is not None else 0


def _submit(arguments: argparse.Namespace) -> int:
    client = _client(arguments)
    job = client.submit(_build_payload(arguments))
    if job.get("was_deduplicated"):
        print(
            f"note: identical job already in flight; joined {job['id']}",
            file=sys.stderr,
        )
    if arguments.wait:
        _status, job = client.result(job["id"], wait=arguments.wait)
        _print_job(job, arguments.json)
        return _job_exit(job)
    _print_job(job, arguments.json)
    return 0


def _status(arguments: argparse.Namespace) -> int:
    client = _client(arguments)
    if not arguments.job_id:
        jobs = client.jobs()["jobs"]
        if arguments.json:
            print(json.dumps(jobs, indent=2, ensure_ascii=False))
            return 0
        for job in jobs:
            code = job.get("exit_code")
            print(
                f"{job['id']}  {job['state']:<10} exit={code if code is not None else '-':<3} "
                f"kind={job['kind']} dedup={job.get('deduplicated', 0)}"
            )
        if not jobs:
            print("(no jobs)")
        return 0
    if arguments.events:
        for event in client.events(arguments.job_id, timeout=arguments.timeout):
            print(json.dumps(event))
        job = client.job(arguments.job_id)
        return _job_exit(job)
    if arguments.wait:
        _http, job = client.result(arguments.job_id, wait=arguments.wait)
    else:
        job = client.job(arguments.job_id)
    _print_job(job, arguments.json)
    return _job_exit(job)


def _stats(arguments: argparse.Namespace) -> int:
    print(json.dumps(_client(arguments).stats(), indent=2, ensure_ascii=False))
    return 0


def _shutdown(arguments: argparse.Namespace) -> int:
    _client(arguments).shutdown()
    print("shutdown requested")
    return 0


# -- argument plumbing -----------------------------------------------------


def _add_client_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="daemon base URL (default: REPRO_SERVICE_URL or the "
        "state directory's endpoint file)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="daemon state directory for endpoint discovery "
        "(default: REPRO_SERVICE_STATE or .repro-service)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (seconds)"
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Checking-as-a-service daemon for the repro engine",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser("serve", help="run the daemon in the foreground")
    serve.add_argument(
        "--host", default=os.environ.get("REPRO_SERVICE_HOST", "127.0.0.1")
    )
    serve.add_argument(
        "--port",
        type=int,
        default=_env_int("REPRO_SERVICE_PORT", 8642),
        help="listen port (0 picks an ephemeral port; default "
        "REPRO_SERVICE_PORT or 8642)",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=_env_int("REPRO_SERVICE_MAX_JOBS", 2),
        help="jobs checked concurrently (REPRO_SERVICE_MAX_JOBS)",
    )
    serve.add_argument(
        "--job-deadline",
        type=float,
        default=_env_float("REPRO_SERVICE_JOB_DEADLINE"),
        metavar="SECONDS",
        help="default wall-clock budget per job; jobs that outlive it "
        "finish partial (REPRO_SERVICE_JOB_DEADLINE)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="endpoint file, queue journal, and per-job checkpoint "
        "journals live here (REPRO_SERVICE_STATE, default .repro-service)",
    )
    serve.add_argument(
        "--job-retries",
        type=int,
        default=None,
        metavar="N",
        dest="job_retries",
        help="retries before a crashing job is quarantined as faulted "
        "(REPRO_SERVICE_JOB_RETRIES, default 2)",
    )
    serve.add_argument("--drain-timeout", type=float, default=60.0)
    serve.add_argument("--workers", type=int, default=None, metavar="N")
    serve.add_argument("--cache-size", type=int, default=None, metavar="N")
    serve.add_argument("--store", default=None, metavar="PATH")
    serve.add_argument("--backend", choices=("object", "kernel", "sql"), default=None)
    serve.add_argument("--symmetry", choices=("full", "orbits"), default=None)

    submit = subparsers.add_parser("submit", help="submit one checking job")
    submit.add_argument(
        "kind",
        choices=("experiment", "invertibility", "subset", "unique", "roundtrip"),
    )
    submit.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id (experiment) or catalog mapping name",
    )
    submit.add_argument("--reverse", default=None, help="reverse mapping (roundtrip)")
    submit.add_argument(
        "--domain", default=None, help="comma-separated constants (default a,b)"
    )
    submit.add_argument("--max-facts", type=int, default=None)
    submit.add_argument("--workers", type=int, default=None)
    submit.add_argument("--symmetry", choices=("full", "orbits"), default=None)
    submit.add_argument("--backend", choices=("object", "kernel", "sql"), default=None)
    submit.add_argument("--shards", type=int, default=None)
    submit.add_argument("--shard-id", type=int, default=None, dest="shard_id")
    submit.add_argument("--deadline", type=float, default=None)
    submit.add_argument("--max-instances", type=int, default=None, dest="max_instances")
    submit.add_argument(
        "--max-chase-steps", type=int, default=None, dest="max_chase_steps"
    )
    submit.add_argument(
        "--payload",
        default=None,
        help="raw JSON job payload (overrides the positional form; the "
        "way to submit inline, non-catalog mappings)",
    )
    submit.add_argument(
        "--wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wait for the terminal report and exit with the job's code",
    )
    _add_client_options(submit)

    status = subparsers.add_parser("status", help="job status / listing / events")
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument(
        "--events", action="store_true", help="stream NDJSON events until terminal"
    )
    status.add_argument("--wait", type=float, default=None, metavar="SECONDS")
    _add_client_options(status)

    stats = subparsers.add_parser("stats", help="queue + engine counters")
    _add_client_options(stats)

    shutdown = subparsers.add_parser("shutdown", help="gracefully drain the daemon")
    _add_client_options(shutdown)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "serve":
            return asyncio.run(_serve(arguments))
        if arguments.command == "submit":
            if not arguments.target and not arguments.payload:
                print("submit needs a target or --payload", file=sys.stderr)
                return 2
            return _submit(arguments)
        if arguments.command == "status":
            return _status(arguments)
        if arguments.command == "stats":
            return _stats(arguments)
        return _shutdown(arguments)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
