"""The daemon's HTTP face: a small hand-rolled asyncio HTTP/1.1 server.

Hand-rolled on ``asyncio.start_server`` because the container bans new
dependencies — no aiohttp, no frameworks.  The protocol surface is
deliberately tiny (JSON in, JSON out, ``Connection: close``):

========  ======================  =========================================
method    path                    behaviour
========  ======================  =========================================
GET       /healthz                liveness probe
GET       /stats                  queue + engine counters (--engine-stats)
POST      /jobs                   submit a job payload (202; dedup flagged)
GET       /jobs                   list job summaries (no renderings)
GET       /jobs/<id>              one job's status (always 200)
GET       /jobs/<id>/result       the report; ``?wait=SECONDS`` long-polls;
                                  HTTP status mirrors the job state
                                  (200/422/206/424/410, 202 while running)
GET       /jobs/<id>/events       NDJSON stream of lifecycle + checkpoint
                                  progress events until the job settles
POST      /jobs/<id>/cancel       cancel queued/running
POST      /shutdown               graceful drain (same path as SIGTERM)
========  ======================  =========================================

``GET /jobs/<id>`` is a pure status poll and always answers 200;
``/result`` is the exit-code-parity surface — its HTTP status is
:data:`~repro.service.protocol.STATE_HTTP_STATUS` of the terminal
state, matching the CLI exit code the same check would have returned.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import JobNotFound, ServiceProtocolError
from repro.service.protocol import STATE_HTTP_STATUS
from repro.service.queue import JobQueue, journal_progress

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_EVENT_POLL_SECONDS = 0.1

_REASONS = {
    200: "OK",
    202: "Accepted",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    424: "Failed Dependency",
    500: "Internal Server Error",
}


class ServiceApp:
    """Routes HTTP requests onto a :class:`JobQueue` (module docstring)."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        on_shutdown=None,
    ) -> None:
        self.queue = queue
        self.host = host
        self.port = port
        self.on_shutdown = on_shutdown
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None

    @property
    def endpoint_path(self) -> str:
        return os.path.join(self.queue.state_dir, "service.json")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        with open(self.endpoint_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "host": self.host,
                    "port": self.port,
                    "pid": os.getpid(),
                    "started_at": time.time(),
                },
                handle,
            )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing --------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            status, payload = await self._route(method, path, query, body, writer)
            if status is not None:
                await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 — the server must survive
            try:
                await self._respond(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, list], Any]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if value:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return None
        raw = await reader.readexactly(length) if length else b""
        body: Any = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise ServiceProtocolError(f"request body is not JSON: {error}")
        split = urlsplit(target)
        return method.upper(), split.path, parse_qs(split.query), body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, list],
        body: Any,
        writer: asyncio.StreamWriter,
    ) -> Tuple[Optional[int], Any]:
        try:
            if path == "/healthz" and method == "GET":
                # Always HTTP 200 — ``ready: false`` (drain in progress)
                # is a payload-level signal so dumb probes stay simple.
                payload = {
                    "ok": True,
                    "pid": os.getpid(),
                    "ready": not getattr(self.queue, "draining", False),
                    "jobs": len(self.queue.records()),
                }
                if self._started_at is not None:
                    payload["uptime"] = max(0.0, time.time() - self._started_at)
                return 200, payload
            if path == "/stats" and method == "GET":
                return 200, self.queue.stats()
            if path == "/jobs" and method == "POST":
                record, deduplicated = self.queue.submit(body)
                payload = record.to_json()
                payload["was_deduplicated"] = deduplicated
                return 202, payload
            if path == "/jobs" and method == "GET":
                return 200, {
                    "jobs": [
                        record.to_json(include_rendering=False)
                        for record in self.queue.records()
                    ]
                }
            if path == "/shutdown" and method == "POST":
                if self.on_shutdown is not None:
                    self.on_shutdown()
                return 200, {"ok": True, "draining": True}
            parts = [part for part in path.split("/") if part]
            if len(parts) >= 2 and parts[0] == "jobs":
                return await self._route_job(method, parts, query, writer)
            return 404, {"error": f"no route {method} {path}"}
        except ServiceProtocolError as error:
            return 400, {"error": str(error)}
        except JobNotFound as error:
            return 404, {"error": str(error.args[0] if error.args else error)}

    async def _route_job(
        self,
        method: str,
        parts: list,
        query: Dict[str, list],
        writer: asyncio.StreamWriter,
    ) -> Tuple[Optional[int], Any]:
        job_id = parts[1]
        action = parts[2] if len(parts) > 2 else None
        record = self.queue.get(job_id)
        if action is None and method == "GET":
            return 200, record.to_json()
        if action == "cancel" and method == "POST":
            changed = self.queue.cancel(job_id)
            return 200, {"id": job_id, "cancelled": changed, "state": record.state}
        if action == "result" and method == "GET":
            wait = _float_param(query, "wait", 0.0)
            if wait > 0 and not record.terminal:
                await self.queue.wait(job_id, timeout=wait)
            payload = record.to_json()
            payload["http_status"] = STATE_HTTP_STATUS[record.state]
            if not record.terminal:
                # Self-healing clients honour this instead of hot-polling.
                payload["retry_after"] = 0.5
            return STATE_HTTP_STATUS[record.state], payload
        if action == "events" and method == "GET":
            await self._stream_events(record, writer)
            return None, None
        return 405, {"error": f"no route {method} on job {job_id}"}

    # -- event streaming ---------------------------------------------

    async def _stream_events(self, record, writer: asyncio.StreamWriter) -> None:
        """NDJSON: replay recorded lifecycle events, then follow new
        ones plus checkpoint-journal progress until the job settles."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        sent = 0
        last_progress = -1
        while True:
            events = list(record.events)
            for event in events[sent:]:
                writer.write(json.dumps(event).encode("utf-8") + b"\n")
            sent = len(events)
            progress = journal_progress(self.queue.checkpoint_path(record.key))
            if progress != last_progress and progress > 0:
                last_progress = progress
                writer.write(
                    json.dumps(
                        {"event": "checkpoint", "verified_prefix": progress}
                    ).encode("utf-8")
                    + b"\n"
                )
            await writer.drain()
            if record.terminal:
                final = {"event": "terminal", "state": record.state}
                if record.outcome is not None:
                    final["exit_code"] = record.outcome.exit_code
                writer.write(json.dumps(final).encode("utf-8") + b"\n")
                await writer.drain()
                return
            try:
                await asyncio.wait_for(record.done.wait(), _EVENT_POLL_SECONDS)
            except asyncio.TimeoutError:
                pass


def _float_param(query: Dict[str, list], name: str, default: float) -> float:
    values = query.get(name)
    if not values:
        return default
    try:
        return float(values[-1])
    except ValueError:
        return default


__all__ = ["ServiceApp"]
