"""The blocking thin client (urllib; used by CLI verbs and tests).

Endpoint discovery, in priority order: an explicit ``--server`` URL,
the ``REPRO_SERVICE_URL`` environment knob, then the ``service.json``
endpoint file a running daemon writes into its state directory
(``--state-dir`` / ``REPRO_SERVICE_STATE``, default
``.repro-service``).  Connection failures raise
:class:`~repro.errors.ServiceUnavailable` so callers can distinguish
"daemon down" from job-level failures.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import JobNotFound, ServiceProtocolError, ServiceUnavailable

DEFAULT_STATE_DIR = ".repro-service"


def state_dir(explicit: Optional[str] = None) -> str:
    return explicit or os.environ.get("REPRO_SERVICE_STATE") or DEFAULT_STATE_DIR


def discover_endpoint(
    server: Optional[str] = None, state: Optional[str] = None
) -> str:
    """The daemon base URL per the discovery order above."""
    if server:
        return server.rstrip("/")
    env = os.environ.get("REPRO_SERVICE_URL")
    if env:
        return env.rstrip("/")
    endpoint_file = os.path.join(state_dir(state), "service.json")
    try:
        with open(endpoint_file, "r", encoding="utf-8") as handle:
            endpoint = json.load(handle)
        return f"http://{endpoint['host']}:{endpoint['port']}"
    except (OSError, ValueError, KeyError) as error:
        raise ServiceUnavailable(
            f"no --server / REPRO_SERVICE_URL and no readable endpoint "
            f"file at {endpoint_file!r} ({error}); is the daemon running?"
        ) from error


class ServiceClient:
    """Synchronous JSON-over-HTTP client for one daemon endpoint."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Any]:
        """One request; returns ``(http_status, decoded_json)``.
        Non-2xx statuses are returned, not raised — the service uses
        them to carry job states (422/206/424/410)."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return response.status, _decode(response.read())
        except urllib.error.HTTPError as error:
            return error.code, _decode(error.read())
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"cannot reach service at {self.base_url}: {error}"
            ) from error

    # -- the protocol surface ----------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/healthz"))

    def stats(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/stats"))

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        status, body = self.request("POST", "/jobs", payload)
        if status == 400:
            raise ServiceProtocolError(_error_of(body))
        return self._expect(202, status, body)

    def jobs(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/jobs"))

    def job(self, job_id: str) -> Dict[str, Any]:
        status, body = self.request("GET", f"/jobs/{job_id}")
        if status == 404:
            raise JobNotFound(_error_of(body))
        return self._expect(200, status, body)

    def result(
        self, job_id: str, *, wait: float = 0.0, poll: float = 0.5
    ) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, job_json)`` of ``/result``; with *wait* > 0
        polls (server-side long poll + client retry) until the job is
        terminal or the wait budget runs out."""
        deadline = time.monotonic() + wait
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            status, body = self.request(
                "GET",
                f"/jobs/{job_id}/result?wait={min(remaining, 30.0):.1f}",
                timeout=min(remaining, 30.0) + self.timeout,
            )
            if status == 404:
                raise JobNotFound(_error_of(body))
            if status != 202 or remaining <= 0:
                return status, body
            time.sleep(min(poll, max(remaining, 0.01)))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        status, body = self.request("POST", f"/jobs/{job_id}/cancel")
        if status == 404:
            raise JobNotFound(_error_of(body))
        return self._expect(200, status, body)

    def shutdown(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("POST", "/shutdown"))

    def events(self, job_id: str, *, timeout: float = 300.0) -> Iterator[dict]:
        """Stream a job's NDJSON events until the terminal marker."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"event stream from {self.base_url} failed: {error}"
            ) from error

    @staticmethod
    def _expect(expected: int, status: int, body: Any) -> Any:
        if status != expected:
            raise ServiceUnavailable(
                f"unexpected HTTP {status} (wanted {expected}): {_error_of(body)}"
            )
        return body


def _decode(raw: bytes) -> Any:
    if not raw:
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"error": raw.decode("utf-8", "replace")}


def _error_of(body: Any) -> str:
    if isinstance(body, dict) and "error" in body:
        return str(body["error"])
    return str(body)


__all__ = ["DEFAULT_STATE_DIR", "ServiceClient", "discover_endpoint", "state_dir"]
