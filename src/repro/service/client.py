"""The blocking thin client (urllib; used by CLI verbs and tests).

Endpoint discovery, in priority order: an explicit ``--server`` URL,
the ``REPRO_SERVICE_URL`` environment knob, then the ``service.json``
endpoint file a running daemon writes into its state directory
(``--state-dir`` / ``REPRO_SERVICE_STATE``, default
``.repro-service``).  Connection failures raise
:class:`~repro.errors.ServiceUnavailable` so callers can distinguish
"daemon down" from job-level failures.

Self-healing transport: every request is retried on transport failure
with exponential backoff and jitter (``REPRO_CLIENT_RETRIES`` /
``REPRO_CLIENT_BACKOFF`` / ``REPRO_CLIENT_BACKOFF_MAX``), which is
safe because every verb is idempotent — submissions are deduplicated
by their content-addressed job key, so re-sending a submit whose
response was lost re-attaches to the same in-flight job.  A circuit
breaker (``REPRO_CLIENT_BREAKER_THRESHOLD`` consecutive failures
opens it for ``REPRO_CLIENT_BREAKER_COOLDOWN`` seconds, then one
half-open probe) keeps a dead daemon from soaking every caller in
full retry cycles.  Retries, breaker trips, and rejections are
counted on :func:`~repro.engine.instrumentation.engine_stats`
(``client_retries`` / ``client_breaker_trips`` / ...).

The ``client.drop`` / ``client.reset`` points of the unified fault
plane (:mod:`repro.engine.faults`) inject transport failures before
the request is sent and after the server has acted, respectively —
the latter exercises exactly the lost-response window the idempotency
guarantee exists for.
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.engine import faults
from repro.engine.instrumentation import engine_stats
from repro.errors import (
    JobNotFound,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailable,
)

DEFAULT_STATE_DIR = ".repro-service"

#: The result-poll loop never sleeps less than this, even when the
#: wait deadline is imminent — polling at 10ms turns "almost done"
#: into a hot loop against the daemon.
POLL_FLOOR_SECONDS = 0.05


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
        if value < 0:
            raise ValueError(raw)
    except ValueError:
        raise ServiceError(f"{name}={raw!r} is not a non-negative integer")
    return value


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
        if value < 0:
            raise ValueError(raw)
    except ValueError:
        raise ServiceError(f"{name}={raw!r} is not a non-negative number")
    return value


def state_dir(explicit: Optional[str] = None) -> str:
    return explicit or os.environ.get("REPRO_SERVICE_STATE") or DEFAULT_STATE_DIR


def discover_endpoint(
    server: Optional[str] = None, state: Optional[str] = None
) -> str:
    """The daemon base URL per the discovery order above."""
    if server:
        return server.rstrip("/")
    env = os.environ.get("REPRO_SERVICE_URL")
    if env:
        return env.rstrip("/")
    endpoint_file = os.path.join(state_dir(state), "service.json")
    try:
        with open(endpoint_file, "r", encoding="utf-8") as handle:
            endpoint = json.load(handle)
        return f"http://{endpoint['host']}:{endpoint['port']}"
    except (OSError, ValueError, KeyError) as error:
        raise ServiceUnavailable(
            f"no --server / REPRO_SERVICE_URL and no readable endpoint "
            f"file at {endpoint_file!r} ({error}); is the daemon running?"
        ) from error


class ServiceClient:
    """Synchronous JSON-over-HTTP client for one daemon endpoint.

    See the module docstring for the retry / circuit-breaker contract.
    Pass ``retries=0`` to restore single-shot behaviour, and
    ``jitter_seed`` for a deterministic backoff schedule in tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        backoff_max: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: Optional[float] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = (
            _env_int("REPRO_CLIENT_RETRIES", 3) if retries is None else retries
        )
        self.backoff = (
            _env_float("REPRO_CLIENT_BACKOFF", 0.1) if backoff is None else backoff
        )
        self.backoff_max = (
            _env_float("REPRO_CLIENT_BACKOFF_MAX", 2.0)
            if backoff_max is None
            else backoff_max
        )
        self.breaker_threshold = (
            _env_int("REPRO_CLIENT_BREAKER_THRESHOLD", 5)
            if breaker_threshold is None
            else breaker_threshold
        )
        self.breaker_cooldown = (
            _env_float("REPRO_CLIENT_BREAKER_COOLDOWN", 5.0)
            if breaker_cooldown is None
            else breaker_cooldown
        )
        self._rng = random.Random(jitter_seed)
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0

    # -- transport ---------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Any]:
        """One logical request; returns ``(http_status, decoded_json)``.
        Non-2xx statuses are returned, not raised — the service uses
        them to carry job states (422/206/424/410).  Transport
        failures are retried with backoff; when the breaker is open or
        every attempt fails, :class:`ServiceUnavailable` propagates."""
        attempts = max(0, int(self.retries)) + 1
        for attempt in range(1, attempts + 1):
            self._check_breaker()
            try:
                result = self._request_once(method, path, payload, timeout)
            except ServiceUnavailable:
                self._record_failure()
                if attempt >= attempts:
                    raise
                self._sleep_backoff(attempt)
                continue
            self._record_success()
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Any,
        timeout: Optional[float],
    ) -> Tuple[int, Any]:
        if faults.fire("client.drop") is not None:
            raise ServiceUnavailable(
                f"injected connection drop to {self.base_url}"
            )
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                status, decoded = response.status, _decode(response.read())
        except urllib.error.HTTPError as error:
            status, decoded = error.code, _decode(error.read())
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"cannot reach service at {self.base_url}: {error}"
            ) from error
        if faults.fire("client.reset") is not None:
            # The server processed the request; the response was lost
            # on the wire.  Retrying is safe only because every verb
            # is idempotent — which is exactly what this point tests.
            raise ServiceUnavailable(
                f"injected connection reset from {self.base_url}"
            )
        return status, decoded

    # -- retry / circuit-breaker machinery ---------------------------

    def _check_breaker(self) -> None:
        remaining = self._breaker_open_until - time.monotonic()
        if remaining > 0:
            engine_stats().bump("client_breaker_rejections")
            raise ServiceUnavailable(
                f"circuit breaker open for {self.base_url} "
                f"({remaining:.1f}s of cooldown remaining)"
            )

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        engine_stats().bump("client_request_failures")
        if (
            self.breaker_threshold > 0
            and self._consecutive_failures >= self.breaker_threshold
        ):
            # Open (or re-open after a failed half-open probe): the
            # cooldown expiring readmits exactly one probe request.
            self._breaker_open_until = time.monotonic() + self.breaker_cooldown
            engine_stats().bump("client_breaker_trips")

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0

    def _sleep_backoff(self, attempt: int) -> None:
        base = min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)
        engine_stats().bump("client_retries")
        # Equal jitter: at least half the exponential delay, never more
        # than all of it, so synchronized clients fan out.
        time.sleep(base * (0.5 + 0.5 * self._rng.random()))

    # -- the protocol surface ----------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/healthz"))

    def wait_ready(
        self, timeout: float = 10.0, *, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Block until ``/healthz`` reports readiness (or *timeout*).

        Used after (re)starting a daemon: a booting or draining daemon
        answers ``ready: false`` while it cannot accept work."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                health = self.health()
                if health.get("ready", True):
                    return health
            except ServiceUnavailable:
                pass
            if time.monotonic() >= deadline:
                raise ServiceUnavailable(
                    f"service at {self.base_url} not ready after {timeout}s"
                )
            time.sleep(max(POLL_FLOOR_SECONDS, poll))

    def stats(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/stats"))

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        status, body = self.request("POST", "/jobs", payload)
        if status == 400:
            raise ServiceProtocolError(_error_of(body))
        return self._expect(202, status, body)

    def jobs(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("GET", "/jobs"))

    def job(self, job_id: str) -> Dict[str, Any]:
        status, body = self.request("GET", f"/jobs/{job_id}")
        if status == 404:
            raise JobNotFound(_error_of(body))
        return self._expect(200, status, body)

    def result(
        self, job_id: str, *, wait: float = 0.0, poll: float = 0.5
    ) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, job_json)`` of ``/result``; with *wait* > 0
        polls (server-side long poll + client retry) until the job is
        terminal or the wait budget runs out.

        Between polls the client honours the server's ``retry_after``
        hint when one comes back with the 202, and never sleeps below
        :data:`POLL_FLOOR_SECONDS` — a nearly-expired wait budget must
        not degenerate into a hot poll loop against the daemon."""
        deadline = time.monotonic() + wait
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            status, body = self.request(
                "GET",
                f"/jobs/{job_id}/result?wait={min(remaining, 30.0):.1f}",
                timeout=min(remaining, 30.0) + self.timeout,
            )
            if status == 404:
                raise JobNotFound(_error_of(body))
            if status != 202 or remaining <= 0:
                return status, body
            delay = poll
            hint = body.get("retry_after") if isinstance(body, dict) else None
            if isinstance(hint, (int, float)) and hint > 0:
                delay = float(hint)
            time.sleep(max(POLL_FLOOR_SECONDS, min(delay, remaining)))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        status, body = self.request("POST", f"/jobs/{job_id}/cancel")
        if status == 404:
            raise JobNotFound(_error_of(body))
        return self._expect(200, status, body)

    def shutdown(self) -> Dict[str, Any]:
        return self._expect(200, *self.request("POST", "/shutdown"))

    def events(self, job_id: str, *, timeout: float = 300.0) -> Iterator[dict]:
        """Stream a job's NDJSON events until the terminal marker."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"event stream from {self.base_url} failed: {error}"
            ) from error

    @staticmethod
    def _expect(expected: int, status: int, body: Any) -> Any:
        if status != expected:
            raise ServiceUnavailable(
                f"unexpected HTTP {status} (wanted {expected}): {_error_of(body)}"
            )
        return body


def _decode(raw: bytes) -> Any:
    if not raw:
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"error": raw.decode("utf-8", "replace")}


def _error_of(body: Any) -> str:
    if isinstance(body, dict) and "error" in body:
        return str(body["error"])
    return str(body)


__all__ = [
    "DEFAULT_STATE_DIR",
    "POLL_FLOOR_SECONDS",
    "ServiceClient",
    "discover_endpoint",
    "state_dir",
]
