"""Synchronous job execution, shared by the daemon and the CLI.

The service's byte-identity guarantee — a job response embeds exactly
the report body ``python -m repro.cli check`` prints — is not enforced
by comparing strings but by construction: both entry points call
:func:`execute_job` on the same canonical spec, and the rendering is
produced here, once.

:func:`execute_job` runs inside a :func:`~repro.engine.budget.coverage_scope`
so concurrent jobs on daemon worker threads keep their partial-verdict
events (and hence their terminal states) separate, and maps the result
onto the job state machine with the CLI's exact semantics: a violation
beats degraded coverage (a violation found under a budget is still a
violation), otherwise ``faulted`` > ``deadline``/``budget`` >
``exhaustive`` selects faulted / partial / done.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.budget import (
    COVERAGE_EXHAUSTIVE,
    Budget,
    coverage_scope,
    use_budget,
    worst_coverage,
)
from repro.engine.checkpoint import CheckpointJournal
from repro.errors import ReproError, ServiceProtocolError
from repro.service.protocol import (
    STATE_DONE,
    STATE_FAULTED,
    STATE_PARTIAL,
    STATE_VIOLATED,
    exit_code_for,
    resolve_mapping,
)


@dataclass
class JobOutcome:
    """What one executed job produced (terminal state + report body)."""

    state: str
    exit_code: int
    rendering: str
    coverage: str = COVERAGE_EXHAUSTIVE
    coverage_events: List[Dict[str, Any]] = field(default_factory=list)
    seconds: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "exit_code": self.exit_code,
            "rendering": self.rendering,
            "coverage": self.coverage,
            "coverage_events": self.coverage_events,
            "seconds": round(self.seconds, 3),
        }


def budget_for(
    spec: Dict[str, Any], default_deadline: Optional[float] = None
) -> Optional[Budget]:
    """The per-job budget a canonical spec asks for, or None when the
    spec carries no limit (callers then inherit ambient/env budgets)."""
    deadline = spec.get("deadline", default_deadline)
    max_instances = spec.get("max_instances")
    max_chase_steps = spec.get("max_chase_steps")
    if deadline is None and max_instances is None and max_chase_steps is None:
        return None
    return Budget(
        deadline=deadline,
        max_instances=max_instances,
        max_chase_steps=max_chase_steps,
    )


# -- rendering helpers -----------------------------------------------------


def _facts(instance: Any) -> str:
    return "{" + ", ".join(str(fact) for fact in instance.sorted_facts()) + "}"


def _header(name: str, what: str, spec: Dict[str, Any]) -> str:
    domain = ",".join(spec["domain"])
    return (
        f"== check {name}: {what} over domain {{{domain}}}, "
        f"max_facts={spec['max_facts']} =="
    )


def _coverage_line(coverage: str, instances: int, orbits: int) -> str:
    return (
        f"coverage: {coverage} "
        f"(instances_checked={instances}, orbits_checked={orbits})"
    )


def _violation_lines(pairs, joiner: str, limit: int = 5) -> List[str]:
    lines = [
        f"  violation: {_facts(left)} {joiner} {_facts(right)}"
        for left, right in pairs[:limit]
    ]
    if len(pairs) > limit:
        lines.append(f"  ... and {len(pairs) - limit} more")
    return lines


def _universe(mapping, spec: Dict[str, Any]) -> list:
    from repro.workloads import power_instances

    return list(
        power_instances(
            mapping.source, tuple(spec["domain"]), max_facts=spec["max_facts"]
        )
    )


def _sweep_options(spec: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "workers": spec.get("workers"),
        "symmetry": spec.get("symmetry"),
        "backend": spec.get("backend"),
        "shards": spec.get("shards"),
        "shard_id": spec.get("shard_id"),
    }


def _mapping_label(mapping) -> str:
    return mapping.name or "inline"


# -- per-kind executors ----------------------------------------------------


def _run_experiment_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.experiments import run_experiment

    report = run_experiment(spec["experiment"])
    return report.render(), report.passed


def _run_invertibility_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.analysis.classify import classify_mapping
    from repro.analysis.invertibility import invertibility_report

    mapping = resolve_mapping(spec["mapping"])
    classification = classify_mapping(mapping)
    universe = _universe(mapping, spec)
    report = invertibility_report(
        mapping, universe, checkpoint=checkpoint, **_sweep_options(spec)
    )
    subset = report.quasi_subset_property
    lines = [
        _header(_mapping_label(mapping), "invertibility", spec),
        f"class: {classification.describe()} "
        f"({classification.n_dependencies} dependencies)",
        f"universe: {len(universe)} instances",
        f"constant propagation: {'yes' if report.constant_propagation else 'no'}",
        f"unique solutions: {'yes' if report.unique_solutions else 'VIOLATED'}",
    ]
    if report.unique_solutions_witness is not None:
        left, right = report.unique_solutions_witness
        lines.append(f"  witness: {_facts(left)} ~ {_facts(right)}")
    lines.append(
        f"subset property (~M,~M): {'holds' if subset.holds else 'VIOLATED'} "
        f"(pairs checked: {subset.checked})"
    )
    lines.extend(_violation_lines(subset.violations, "|"))
    lines.append(f"verdict: {report.verdict()}")
    lines.append(
        _coverage_line(report.coverage, report.instances_checked, report.orbits_checked)
    )
    return "\n".join(lines), report.unique_solutions and subset.holds


def _run_subset_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.core.framework import SolutionEquivalence, subset_property

    mapping = resolve_mapping(spec["mapping"])
    equivalence = SolutionEquivalence(mapping)
    universe = _universe(mapping, spec)
    report = subset_property(
        mapping,
        equivalence,
        equivalence,
        universe,
        stop_at_first_violation=False,
        checkpoint=checkpoint,
        **_sweep_options(spec),
    )
    lines = [
        _header(_mapping_label(mapping), "subset property (~M,~M)", spec),
        f"universe: {len(universe)} instances",
        f"holds: {'yes' if report.holds else 'VIOLATED'} "
        f"(pairs checked: {report.checked})",
    ]
    lines.extend(_violation_lines(report.violations, "|"))
    lines.append(
        _coverage_line(report.coverage, report.instances_checked, report.orbits_checked)
    )
    return "\n".join(lines), report.holds


def _run_unique_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.core.framework import unique_solutions_property

    mapping = resolve_mapping(spec["mapping"])
    universe = _universe(mapping, spec)
    # No checkpoint: the unique-solutions sweep carries no journal
    # support (it is the cheap phase; see invertibility_report).
    verdict = unique_solutions_property(mapping, universe, **_sweep_options(spec))
    ok, violations = verdict
    lines = [
        _header(_mapping_label(mapping), "unique solutions", spec),
        f"universe: {len(universe)} instances",
        f"holds: {'yes' if ok else 'VIOLATED'}",
    ]
    lines.extend(_violation_lines(violations, "~"))
    lines.append(
        _coverage_line(
            verdict.coverage, verdict.instances_checked, verdict.orbits_checked
        )
    )
    return "\n".join(lines), ok


def _run_roundtrip_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.dataexchange.recovery import faithful_on, sound_on

    mapping = resolve_mapping(spec["mapping"])
    reverse = resolve_mapping(spec["reverse"])
    universe = _universe(mapping, spec)
    options = _sweep_options(spec)
    options.pop("shards", None)  # round-trip sweeps are unsharded
    options.pop("shard_id", None)
    sound = sound_on(mapping, reverse, universe, checkpoint=checkpoint, **options)
    faithful = faithful_on(mapping, reverse, universe, checkpoint=checkpoint, **options)
    lines = [
        _header(
            _mapping_label(mapping),
            f"round trip via {_mapping_label(reverse)}",
            spec,
        ),
        f"universe: {len(universe)} instances",
        f"sound: {'yes' if sound.ok else 'VIOLATED'}",
    ]
    for violator in sound.violators[:5]:
        lines.append(f"  violator: {_facts(violator)}")
    lines.append(f"faithful: {'yes' if faithful.ok else 'VIOLATED'}")
    for violator in faithful.violators[:5]:
        lines.append(f"  violator: {_facts(violator)}")
    coverage = worst_coverage(sound.coverage, faithful.coverage)
    lines.append(
        _coverage_line(
            coverage,
            sound.instances_checked + faithful.instances_checked,
            sound.orbits_checked + faithful.orbits_checked,
        )
    )
    return "\n".join(lines), sound.ok and faithful.ok


def _run_algebra_job(
    spec: Dict[str, Any], checkpoint: Optional[CheckpointJournal]
) -> Tuple[str, bool]:
    from repro.algebra.sweeps import check_expression

    report = check_expression(
        spec["expression"],
        spec["check"],
        reverse=spec.get("reverse"),
        domain=tuple(spec["domain"]),
        max_facts=spec["max_facts"],
        plan=spec.get("plan"),
        checkpoint=checkpoint,
        **_sweep_options(spec),
    )
    rendering = report.render()
    if spec.get("explain_plan"):
        rendering = rendering + "\n" + report.explain()
    return rendering, report.holds


_EXECUTORS: Dict[str, Callable[..., Tuple[str, bool]]] = {
    "experiment": _run_experiment_job,
    "invertibility": _run_invertibility_job,
    "subset": _run_subset_job,
    "unique": _run_unique_job,
    "roundtrip": _run_roundtrip_job,
    "algebra": _run_algebra_job,
}


def execute_job(
    spec: Dict[str, Any],
    *,
    budget: Optional[Budget] = None,
    checkpoint: Optional[CheckpointJournal] = None,
) -> JobOutcome:
    """Run one canonical job spec to a terminal outcome.

    Never raises for engine-level failures: an unhandled
    :class:`ReproError` (universe too large, chase error, ...) becomes
    a ``faulted`` outcome whose rendering carries the error, so the
    daemon's queue can never wedge on a poisonous job.
    """
    executor = _EXECUTORS.get(spec.get("kind"))
    if executor is None:
        raise ServiceProtocolError(f"unknown job kind {spec.get('kind')!r}")
    started = time.perf_counter()
    error: Optional[ReproError] = None
    rendering, passed = "", False
    with coverage_scope() as events:
        with use_budget(budget):
            try:
                rendering, passed = executor(spec, checkpoint)
            except ReproError as trapped:
                error = trapped
    seconds = time.perf_counter() - started
    event_payload = [
        {
            "phase": event.phase,
            "coverage": event.coverage,
            "detail": event.detail,
            "instances_checked": event.instances_checked,
        }
        for event in events
    ]
    coverage = (
        worst_coverage(*(event.coverage for event in events))
        if events
        else COVERAGE_EXHAUSTIVE
    )
    if error is not None:
        state = STATE_FAULTED
        rendering = f"error: {type(error).__name__}: {error}"
        coverage = "faulted"
    elif not passed:
        state = STATE_VIOLATED
    elif coverage == "faulted":
        state = STATE_FAULTED
    elif coverage in ("deadline", "budget"):
        state = STATE_PARTIAL
    else:
        state = STATE_DONE
    return JobOutcome(
        state=state,
        exit_code=exit_code_for(state),
        rendering=rendering,
        coverage=coverage,
        coverage_events=event_payload,
        seconds=seconds,
    )


__all__ = ["JobOutcome", "budget_for", "execute_job"]
