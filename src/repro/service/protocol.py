"""The service wire format: job kinds, states, and normalization.

A *job* is one mapping-checking request.  Clients submit a JSON
payload; :func:`normalize_job` validates it and rewrites it into a
canonical spec — defaults filled in, options type-checked, mappings
resolved far enough to reject nonsense at submit time — and
:func:`job_key` digests that canonical spec through the engine's
content-addressed :func:`~repro.engine.store.stable_digest`.  Two
clients asking the same question therefore submit byte-equal specs
with equal keys, which is what lets the queue charge N identical
requests one chase.

The job state machine::

    queued ──▶ running ──▶ done | violated | partial | faulted
       │           │
       └───────────┴─────▶ cancelled

plus one non-terminal edge the drain path uses: ``running → queued``
when a SIGTERM interrupts a sweep mid-flight (the checkpoint journal
holds the verified prefix; a restarted daemon re-queues and resumes).

Terminal states map exactly onto the CLI's exit codes
(:data:`STATE_EXIT_CODES`) and onto HTTP statuses
(:data:`STATE_HTTP_STATUS`) so scripts can read either channel.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ParseError, ServiceProtocolError

#: Checking request kinds the daemon accepts.
JOB_KINDS: Tuple[str, ...] = (
    "experiment",     # run one registered experiment (E1..E14)
    "invertibility",  # parse -> classify -> invertibility report
    "subset",         # (~M,~M)-subset property sweep
    "unique",         # unique-solutions property sweep
    "roundtrip",      # sound_on + faithful_on against a reverse mapping
    "algebra",        # plan-directed check of a mapping expression
)

#: Bounded checks an algebra job can run over its expression.
ALGEBRA_CHECKS: Tuple[str, ...] = (
    "unique",
    "subset",
    "invertibility",
    "inverse",
)

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_VIOLATED = "violated"
STATE_PARTIAL = "partial"
STATE_FAULTED = "faulted"
STATE_CANCELLED = "cancelled"

JOB_STATES: Tuple[str, ...] = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_VIOLATED,
    STATE_PARTIAL,
    STATE_FAULTED,
    STATE_CANCELLED,
)

TERMINAL_STATES = frozenset(
    {STATE_DONE, STATE_VIOLATED, STATE_PARTIAL, STATE_FAULTED, STATE_CANCELLED}
)

#: Terminal state -> the exit code ``repro.cli`` would have returned.
#: ``cancelled`` has no CLI analogue; 5 keeps it distinct from every
#: CLI code (0 pass / 1 violated / 2 usage / 3 partial / 4 faulted).
STATE_EXIT_CODES: Dict[str, int] = {
    STATE_DONE: 0,
    STATE_VIOLATED: 1,
    STATE_PARTIAL: 3,
    STATE_FAULTED: 4,
    STATE_CANCELLED: 5,
}

#: Job state -> the HTTP status of ``GET /jobs/<id>/result``.
STATE_HTTP_STATUS: Dict[str, int] = {
    STATE_QUEUED: 202,
    STATE_RUNNING: 202,
    STATE_DONE: 200,
    STATE_VIOLATED: 422,
    STATE_PARTIAL: 206,
    STATE_FAULTED: 424,
    STATE_CANCELLED: 410,
}

#: Engine options a job may carry, with their expected types.
_OPTION_TYPES: Dict[str, type] = {
    "workers": int,
    "shards": int,
    "shard_id": int,
    "max_instances": int,
    "max_chase_steps": int,
    "deadline": float,
    "symmetry": str,
    "backend": str,
    "plan": str,
}

_DEFAULT_DOMAIN = ("a", "b")
_DEFAULT_MAX_FACTS = 1


def _catalog_names() -> Dict[str, Any]:
    from repro.catalog import all_catalog_mappings

    return {mapping.name: mapping for mapping in all_catalog_mappings()}


def resolve_mapping(spec: Any):
    """The :class:`~repro.core.mapping.SchemaMapping` a job's mapping
    spec denotes: a catalog name, or an inline ``{source, target,
    dependencies}`` description parsed through the text front end."""
    from repro.core.mapping import SchemaMapping
    from repro.datamodel.schemas import Schema

    if isinstance(spec, str):
        catalog = _catalog_names()
        if spec not in catalog:
            raise ServiceProtocolError(
                f"unknown catalog mapping {spec!r}; "
                f"known: {', '.join(sorted(catalog))}"
            )
        return catalog[spec]
    try:
        return SchemaMapping.from_text(
            Schema.of({name: int(arity) for name, arity in spec["source"].items()}),
            Schema.of({name: int(arity) for name, arity in spec["target"].items()}),
            spec["dependencies"],
            name=spec.get("name", "inline"),
        )
    except ParseError as error:
        raise ServiceProtocolError(f"inline mapping does not parse: {error}") from error
    except (ValueError, TypeError) as error:
        raise ServiceProtocolError(f"bad inline mapping spec: {error}") from error


def _normalize_mapping_spec(raw: Any, field: str) -> Any:
    if isinstance(raw, str):
        resolve_mapping(raw)  # reject unknown catalog names at submit
        return raw
    if isinstance(raw, dict):
        for key in ("source", "target", "dependencies"):
            if key not in raw:
                raise ServiceProtocolError(f"inline {field} spec needs {key!r}")
        if not isinstance(raw["source"], dict) or not isinstance(raw["target"], dict):
            raise ServiceProtocolError(
                f"inline {field} schemas must be {{relation: arity}} objects"
            )
        canonical = {
            "source": {str(k): int(v) for k, v in sorted(raw["source"].items())},
            "target": {str(k): int(v) for k, v in sorted(raw["target"].items())},
            "dependencies": str(raw["dependencies"]),
        }
        if raw.get("name"):
            canonical["name"] = str(raw["name"])
        resolve_mapping(canonical)  # reject parse errors at submit
        return canonical
    raise ServiceProtocolError(
        f"{field} must be a catalog name or an inline spec, got {type(raw).__name__}"
    )


def _normalize_expression(raw: Any, field: str) -> str:
    """Validate an algebra expression at submit time.

    The canonical form is the parser's own re-rendered label, so
    differently-spaced submissions of the same expression normalize
    to equal specs (and hence equal job keys).
    """
    if not isinstance(raw, str) or not raw.strip():
        raise ServiceProtocolError(
            f"algebra jobs need a non-empty {field!r} string"
        )
    from repro.algebra.expr import parse_expression
    from repro.core.mapping import MappingError

    try:
        return parse_expression(raw).label()
    except (ParseError, MappingError) as error:
        raise ServiceProtocolError(
            f"{field} does not parse: {error}"
        ) from error


def normalize_job(payload: Any) -> Dict[str, Any]:
    """Validate a submitted payload into its canonical job spec.

    Raises :class:`ServiceProtocolError` (HTTP 400) for anything
    malformed.  The canonical spec is a plain JSON-serializable dict
    with sorted, fully-defaulted fields, so equal questions produce
    equal specs (and, via :func:`job_key`, equal content keys).
    """
    if not isinstance(payload, dict):
        raise ServiceProtocolError("job payload must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceProtocolError(
            f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}"
        )
    spec: Dict[str, Any] = {"kind": kind}

    if kind == "experiment":
        from repro.experiments import all_experiment_ids

        experiment = payload.get("experiment")
        if experiment not in all_experiment_ids():
            raise ServiceProtocolError(
                f"unknown experiment {experiment!r}; "
                f"known: {', '.join(all_experiment_ids())}"
            )
        spec["experiment"] = experiment
        return spec

    if kind == "algebra":
        spec["expression"] = _normalize_expression(
            payload.get("expression"), "expression"
        )
        check = payload.get("check", "invertibility")
        if check not in ALGEBRA_CHECKS:
            raise ServiceProtocolError(
                f"unknown algebra check {check!r}; "
                f"known: {', '.join(ALGEBRA_CHECKS)}"
            )
        spec["check"] = check
        if check == "inverse":
            spec["reverse"] = _normalize_expression(
                payload.get("reverse"), "reverse"
            )
        if payload.get("explain_plan"):
            spec["explain_plan"] = True
    else:
        spec["mapping"] = _normalize_mapping_spec(payload.get("mapping"), "mapping")
        if kind == "roundtrip":
            spec["reverse"] = _normalize_mapping_spec(payload.get("reverse"), "reverse")

    domain = payload.get("domain", list(_DEFAULT_DOMAIN))
    if isinstance(domain, str):
        domain = [part for part in domain.split(",") if part]
    if (
        not isinstance(domain, (list, tuple))
        or not domain
        or not all(isinstance(c, str) and c for c in domain)
    ):
        raise ServiceProtocolError("domain must be a non-empty list of constant names")
    spec["domain"] = sorted(set(domain))

    max_facts = payload.get("max_facts", _DEFAULT_MAX_FACTS)
    if not isinstance(max_facts, int) or isinstance(max_facts, bool) or max_facts < 0:
        raise ServiceProtocolError("max_facts must be a non-negative integer")
    spec["max_facts"] = max_facts

    for option, expected in sorted(_OPTION_TYPES.items()):
        value = payload.get(option)
        if value is None:
            continue
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ServiceProtocolError(
                f"option {option!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        if option == "symmetry" and value not in ("full", "orbits"):
            raise ServiceProtocolError("symmetry must be 'full' or 'orbits'")
        if option == "backend" and value not in ("object", "kernel", "sql"):
            raise ServiceProtocolError(
                "backend must be 'object', 'kernel', or 'sql'"
            )
        if option == "plan" and value not in ("auto", "materialize", "membership"):
            raise ServiceProtocolError(
                "plan must be 'auto', 'materialize', or 'membership'"
            )
        spec[option] = value
    return spec


def _canonical_items(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple((k, _canonical_items(value[k])) for k in sorted(value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_items(item) for item in value)
    return value


def job_key(spec: Dict[str, Any]) -> str:
    """The content-addressed identity of a canonical job spec."""
    from repro.engine.store import stable_digest

    return stable_digest(_canonical_items(spec))


def exit_code_for(state: str) -> int:
    if state not in STATE_EXIT_CODES:
        raise ServiceProtocolError(f"state {state!r} is not terminal")
    return STATE_EXIT_CODES[state]


__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "STATE_CANCELLED",
    "STATE_DONE",
    "STATE_EXIT_CODES",
    "STATE_FAULTED",
    "STATE_HTTP_STATUS",
    "STATE_PARTIAL",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "STATE_VIOLATED",
    "TERMINAL_STATES",
    "exit_code_for",
    "job_key",
    "normalize_job",
    "resolve_mapping",
]
