"""The daemon's batching job queue.

One :class:`JobQueue` owns every job the daemon has seen.  Jobs are
keyed two ways: by *id* (what clients poll) and by *content key*
(:func:`~repro.service.protocol.job_key` over the canonical spec) —
the second index is what deduplicates identical requests: while a job
for key K is queued or running, submitting K again returns the same
record and bumps the engine's ``service_dedup_hits`` counter instead
of queueing a second chase.

Execution: ``max_jobs`` asyncio worker loops each pull one job at a
time and run it with :func:`asyncio.to_thread`, so sweeps (which fan
out through the supervised fork pool themselves) never block the
event loop.  Every job runs under its own :class:`Budget` — the
spec's limits plus the daemon-wide ``--job-deadline`` — and its own
per-key checkpoint journal in the state directory.

Lifecycle around restarts:

* the queue journal (``jobs.json``) persists every record — terminal
  jobs with their full outcome, non-terminal jobs as ``queued``;
* SIGTERM drains by calling :meth:`Budget.expire_now` on every
  running job: the sweep trips its deadline at the next probe,
  flushes its checkpoint journal, and the partial result is *not*
  finalized — the record goes back to ``queued``;
* a restarted daemon re-enqueues those records; their sweeps resume
  from the journal's verified prefix (reported as ``resumed_prefix``
  on the job).

Crash hardening (the self-healing loop):

* ``jobs.json`` carries a ``clean`` marker written only by a graceful
  drain; a daemon that loads an *unclean* journal knows its requeued
  jobs already crashed mid-run and charges each one an attempt;
* a job whose execution raises (or that keeps crashing the daemon)
  is retried up to ``max_retries`` times (``REPRO_SERVICE_JOB_RETRIES``,
  default 2); past that it is a *poison job* — finalized ``faulted``
  with ``quarantined: true`` so it can never crash-loop the daemon;
* the ``daemon.kill`` fault point (see :mod:`repro.engine.faults`)
  SIGKILLs the daemon at the two nastiest moments — just before a job
  executes and just before its outcome is finalized — which is what
  the chaos tests use to prove the above actually converges.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import faults
from repro.engine.budget import Budget
from repro.engine.cache import flush_active_store
from repro.engine.checkpoint import JOURNAL_META_KEY, CheckpointJournal
from repro.engine.instrumentation import engine_stats
from repro.errors import JobNotFound, ServiceError
from repro.service.jobs import JobOutcome, budget_for, execute_job
from repro.service.protocol import (
    STATE_CANCELLED,
    STATE_FAULTED,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    exit_code_for,
    job_key,
    normalize_job,
)


def _now() -> float:
    return time.time()


def _default_job_retries() -> int:
    raw = os.environ.get("REPRO_SERVICE_JOB_RETRIES", "").strip()
    if not raw:
        return 2
    try:
        value = int(raw)
        if value < 0:
            raise ValueError
    except ValueError:
        raise ServiceError(
            f"REPRO_SERVICE_JOB_RETRIES={raw!r} is not a non-negative integer"
        )
    return value


@dataclass
class JobRecord:
    """One submitted job, from queue to terminal state."""

    job_id: str
    key: str
    spec: Dict[str, Any]
    state: str = STATE_QUEUED
    submitted_at: float = field(default_factory=_now)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    outcome: Optional[JobOutcome] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    dedup_count: int = 0
    resumed_prefix: int = 0
    attempts: int = 0
    quarantined: bool = False
    cancel_requested: bool = False
    interrupted: bool = False
    budget: Optional[Budget] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def add_event(self, name: str, **detail: Any) -> None:
        event = {"event": name, "ts": round(_now(), 3)}
        event.update(detail)
        self.events.append(event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def exit_code(self) -> Optional[int]:
        return exit_code_for(self.state) if self.terminal else None

    def to_json(self, *, include_rendering: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.job_id,
            "key": self.key,
            "kind": self.spec.get("kind"),
            "spec": self.spec,
            "state": self.state,
            "exit_code": self.exit_code(),
            "deduplicated": self.dedup_count,
            "resumed_prefix": self.resumed_prefix,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": list(self.events),
        }
        if self.outcome is not None and self.terminal:
            outcome = self.outcome.to_json()
            if not include_rendering:
                outcome.pop("rendering", None)
            payload["outcome"] = outcome
        return payload


def journal_progress(path: str) -> int:
    """Verified-but-incomplete prefix recorded in a checkpoint journal
    file (summed over its incomplete sweep entries); 0 when absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return 0
    if not isinstance(data, dict):
        return 0
    progress = 0
    for key, entry in data.items():
        if key == JOURNAL_META_KEY:
            continue
        if isinstance(entry, dict) and not entry.get("complete"):
            try:
                progress += int(entry.get("verified_upto", 0) or 0)
            except (TypeError, ValueError):
                continue
    return progress


class JobQueue:
    """Bounded-concurrency job execution with dedup and drain/resume
    (see module docstring).  All public methods must be called from
    the owning event loop; the heavy lifting happens in threads."""

    def __init__(
        self,
        state_dir: str,
        *,
        max_jobs: int = 2,
        job_deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> None:
        self.state_dir = state_dir
        self.max_jobs = max(1, int(max_jobs))
        self.job_deadline = job_deadline
        self.max_retries = (
            _default_job_retries() if max_retries is None else max(0, int(max_retries))
        )
        self.started_at = _now()
        self._jobs: Dict[str, JobRecord] = {}
        self._active_by_key: Dict[str, JobRecord] = {}
        self._pending: asyncio.Queue = asyncio.Queue()
        self._workers: List[asyncio.Task] = []
        self._counter = 0
        self._draining = False
        os.makedirs(state_dir, exist_ok=True)

    @property
    def draining(self) -> bool:
        """True once a graceful drain has begun (``/healthz`` readiness)."""
        return self._draining

    # -- persistence -------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.state_dir, "jobs.json")

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.state_dir, f"job-{key[:32]}.ckpt.json")

    def _persist(self, *, clean: bool = False) -> None:
        entries = []
        for record in self._jobs.values():
            entry: Dict[str, Any] = {
                "id": record.job_id,
                "key": record.key,
                "spec": record.spec,
                "state": record.state if record.terminal else STATE_QUEUED,
                "submitted_at": record.submitted_at,
                "dedup_count": record.dedup_count,
                "attempts": record.attempts,
                "quarantined": record.quarantined,
            }
            if record.outcome is not None and record.terminal:
                entry["outcome"] = record.outcome.to_json()
            entries.append(entry)
        temp = self.journal_path + ".tmp"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                # ``clean`` is True only for the drain-path write; a
                # journal found without it was left by a crash, and
                # every requeued job is charged an attempt on load.
                json.dump({"jobs": entries, "clean": clean}, handle)
            os.replace(temp, self.journal_path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass

    def load(self) -> int:
        """Restore records from a previous daemon's queue journal.
        Non-terminal jobs come back as ``queued`` (their checkpoint
        journals make the re-run a resume).  After an *unclean*
        shutdown each requeued job is charged an attempt; one over its
        retry budget is quarantined as ``faulted`` instead of being
        allowed to crash-loop the daemon.  Returns how many were
        re-queued."""
        try:
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return 0
        was_clean = bool(data.get("clean", True))
        requeued = 0
        for entry in data.get("jobs", []):
            try:
                record = JobRecord(
                    job_id=str(entry["id"]),
                    key=str(entry["key"]),
                    spec=dict(entry["spec"]),
                    state=str(entry["state"]),
                    submitted_at=float(entry.get("submitted_at", _now())),
                    dedup_count=int(entry.get("dedup_count", 0)),
                    attempts=int(entry.get("attempts", 0)),
                    quarantined=bool(entry.get("quarantined", False)),
                )
            except (KeyError, TypeError, ValueError):
                continue
            if record.terminal:
                outcome = entry.get("outcome")
                if isinstance(outcome, dict):
                    record.outcome = JobOutcome(
                        state=outcome.get("state", record.state),
                        exit_code=outcome.get(
                            "exit_code", exit_code_for(record.state)
                        ),
                        rendering=outcome.get("rendering", ""),
                        coverage=outcome.get("coverage", "exhaustive"),
                        coverage_events=list(outcome.get("coverage_events", [])),
                        seconds=float(outcome.get("seconds", 0.0)),
                    )
                record.done.set()
                record.add_event("restored", state=record.state)
            else:
                if not was_clean:
                    record.attempts += 1
                if record.attempts > self.max_retries:
                    self._quarantine(
                        record, f"crashed the daemon {record.attempts} time(s)"
                    )
                else:
                    record.state = STATE_QUEUED
                    record.add_event("requeued", attempts=record.attempts)
                    self._active_by_key[record.key] = record
                    requeued += 1
            self._jobs[record.job_id] = record
            self._counter = max(self._counter, _id_counter(record.job_id))
        if self._jobs:
            # Land the charged attempts (and any load-time quarantines)
            # back on disk *now*: if the requeued job kills the daemon
            # again before anything else persists, the next restart
            # must see the higher count or the crash loop never ends.
            self._persist()
        return requeued

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        for record in self._jobs.values():
            if record.state == STATE_QUEUED:
                self._pending.put_nowait(record.job_id)
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"job-worker-{i}")
            for i in range(self.max_jobs)
        ]

    async def drain(self, timeout: float = 60.0) -> None:
        """Graceful shutdown: interrupt running sweeps through their
        budgets, let them checkpoint, persist the queue journal."""
        self._draining = True
        for record in self._jobs.values():
            if record.state == STATE_RUNNING:
                record.interrupted = True
                if record.budget is not None:
                    record.budget.expire_now()
        deadline = time.monotonic() + timeout
        while any(r.state == STATE_RUNNING for r in self._jobs.values()):
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.05)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._persist(clean=True)
        flush_active_store()

    # -- submission and queries --------------------------------------

    def submit(self, payload: Any) -> Tuple[JobRecord, bool]:
        """Normalize, dedup, and enqueue.  Returns ``(record, was_dedup)``;
        raises :class:`ServiceProtocolError` for malformed payloads."""
        spec = normalize_job(payload)
        key = job_key(spec)
        existing = self._active_by_key.get(key)
        if existing is not None and not existing.terminal:
            existing.dedup_count += 1
            existing.add_event("deduplicated")
            engine_stats().bump("service_dedup_hits")
            return existing, True
        self._counter += 1
        record = JobRecord(
            job_id=f"j{self._counter:06d}-{key[:8]}", key=key, spec=spec
        )
        record.add_event("submitted")
        self._jobs[record.job_id] = record
        self._active_by_key[key] = record
        self._pending.put_nowait(record.job_id)
        engine_stats().bump("service_jobs_submitted")
        self._persist()
        return record, False

    def get(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobNotFound(f"no job {job_id!r}")
        return record

    def records(self) -> List[JobRecord]:
        return list(self._jobs.values())

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state (or timeout)."""
        record = self.get(job_id)
        if not record.terminal:
            try:
                await asyncio.wait_for(record.done.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        return record

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs cancel immediately; running jobs
        have their budget force-expired and finalize as ``cancelled``
        once the sweep unwinds.  Returns False when already terminal."""
        record = self.get(job_id)
        if record.terminal:
            return False
        if record.state == STATE_QUEUED:
            record.add_event("cancelled")
            self._finalize(record, STATE_CANCELLED)
            return True
        record.cancel_requested = True
        record.add_event("cancel_requested")
        if record.budget is not None:
            record.budget.expire_now()
        return True

    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for record in self._jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        stats = engine_stats()
        return {
            "uptime_seconds": round(_now() - self.started_at, 3),
            "max_jobs": self.max_jobs,
            "job_deadline": self.job_deadline,
            "jobs": states,
            "pending": self._pending.qsize(),
            "dedup_hits": stats.counter("service_dedup_hits"),
            "jobs_submitted": stats.counter("service_jobs_submitted"),
            "jobs_executed": stats.counter("service_jobs_executed"),
            "job_retries": stats.counter("service_job_retries"),
            "jobs_quarantined": stats.counter("service_jobs_quarantined"),
            "max_retries": self.max_retries,
            "engine": stats.counters(),
        }

    # -- execution ---------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            job_id = await self._pending.get()
            record = self._jobs.get(job_id)
            if record is None or record.state != STATE_QUEUED:
                continue
            if self._draining:
                continue
            try:
                await self._run_job(record)
            except asyncio.CancelledError:
                raise
            except BaseException as error:
                # Belt and braces: a job must never wedge its worker.
                # Transient wreckage gets retried on its per-job budget;
                # a job still failing past that is poison — quarantine
                # it so it cannot crash-loop the daemon.
                record.attempts += 1
                record.budget = None
                if record.attempts <= self.max_retries:
                    record.state = STATE_QUEUED
                    record.add_event(
                        "retried",
                        attempts=record.attempts,
                        error=f"{type(error).__name__}: {error}",
                    )
                    engine_stats().bump("service_job_retries")
                    self._pending.put_nowait(record.job_id)
                    self._persist()
                else:
                    record.outcome = JobOutcome(
                        state=STATE_FAULTED,
                        exit_code=exit_code_for(STATE_FAULTED),
                        rendering=f"error: {type(error).__name__}: {error}",
                        coverage="faulted",
                    )
                    self._quarantine(
                        record, f"failed {record.attempts} time(s): {error}"
                    )

    async def _run_job(self, record: JobRecord) -> None:
        record.state = STATE_RUNNING
        record.started_at = _now()
        record.add_event("started")
        budget = budget_for(record.spec, self.job_deadline) or Budget()
        record.budget = budget
        ckpt_path = self.checkpoint_path(record.key)
        resumed = journal_progress(ckpt_path)
        if resumed:
            record.resumed_prefix = resumed
            record.add_event("resumed", prefix=resumed)
        journal = CheckpointJournal(ckpt_path, resume=True)
        engine_stats().bump("service_jobs_executed")
        if faults.fire("daemon.kill") is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        outcome = await asyncio.to_thread(
            execute_job, record.spec, budget=budget, checkpoint=journal
        )
        if faults.fire("daemon.kill") is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        record.budget = None
        if record.cancel_requested:
            record.outcome = outcome
            record.add_event("cancelled")
            self._finalize(record, STATE_CANCELLED)
        elif record.interrupted and outcome.state == STATE_PARTIAL:
            # Drained mid-flight: the checkpoint journal holds the
            # verified prefix; hand the record back to the queue so a
            # restarted daemon resumes instead of reporting partial.
            record.interrupted = False
            record.state = STATE_QUEUED
            record.add_event("drained")
        else:
            record.outcome = outcome
            self._finalize(record, outcome.state)

    def _quarantine(self, record: JobRecord, reason: str) -> None:
        """Poison-job exit: finalize ``faulted`` with the quarantine
        flag set so restarts and operators can tell it apart from an
        ordinary fault."""
        record.quarantined = True
        record.add_event("quarantined", reason=reason)
        if record.outcome is None:
            record.outcome = JobOutcome(
                state=STATE_FAULTED,
                exit_code=exit_code_for(STATE_FAULTED),
                rendering=f"quarantined: {reason}",
                coverage="faulted",
            )
        engine_stats().bump("service_jobs_quarantined")
        self._finalize(record, STATE_FAULTED)

    def _finalize(self, record: JobRecord, state: str) -> None:
        record.state = state
        record.finished_at = _now()
        record.add_event("finished", state=state)
        if self._active_by_key.get(record.key) is record:
            del self._active_by_key[record.key]
        record.done.set()
        # The checkpoint journal exists to resume *interrupted* jobs;
        # once the outcome is terminal it must go, or a later
        # resubmission of the same question would replay the stored
        # verdict ("pairs checked: 0") instead of re-executing.
        try:
            os.unlink(self.checkpoint_path(record.key))
        except OSError:
            pass
        flush_active_store()
        self._persist()


def _id_counter(job_id: str) -> int:
    try:
        return int(job_id.split("-", 1)[0].lstrip("j"))
    except ValueError:
        return 0


__all__ = ["JobQueue", "JobRecord", "journal_progress"]
