"""Seeded synthetic workloads: random mappings, random ground
instances, and bounded instance universes for the framework checkers."""

from repro.workloads.random_workloads import (
    random_full_mapping,
    random_ground_instance,
    random_invertible_mapping,
    random_lav_mapping,
)
from repro.workloads.universes import (
    UniverseTooLarge,
    instance_universe,
    power_instances,
)

__all__ = [
    "UniverseTooLarge",
    "instance_universe",
    "power_instances",
    "random_full_mapping",
    "random_ground_instance",
    "random_invertible_mapping",
    "random_lav_mapping",
]
