"""Seeded random schema mappings and ground instances.

Used by the property-based tests and the sweep experiments (E3, E6,
E7, E12): Proposition 3.11 and Theorems 4.6/4.7/6.7/6.8 are universal
statements over classes of mappings, so we sample those classes
deterministically and verify the statements instance by instance.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Variable
from repro.dependencies.dependency import Dependency, Premise
from repro.core.mapping import SchemaMapping


def _schema(prefix: str, count: int, max_arity: int, rng: random.Random) -> Schema:
    return Schema.of(
        {f"{prefix}{i + 1}": rng.randint(1, max_arity) for i in range(count)}
    )


def random_lav_mapping(
    seed: int,
    *,
    n_source: int = 3,
    n_target: int = 3,
    max_arity: int = 3,
    n_tgds: int = 4,
    max_conclusion_atoms: int = 2,
) -> SchemaMapping:
    """A random LAV mapping: every premise is a single source atom.

    Conclusions mix frontier variables (from the premise) and fresh
    existential variables; every source relation is used by at least
    one tgd when ``n_tgds >= n_source``.
    """
    rng = random.Random(seed)
    source = _schema("A", n_source, max_arity, rng)
    target = _schema("B", n_target, max_arity, rng)
    dependencies: List[Dependency] = []
    source_names = list(source.names())
    for index in range(n_tgds):
        relation = (
            source_names[index]
            if index < len(source_names)
            else rng.choice(source_names)
        )
        arity = source.arity(relation)
        premise_vars = [Variable(f"x{i + 1}") for i in range(arity)]
        premise_atom = Atom(relation, tuple(premise_vars))
        conclusion: List[Atom] = []
        pool = list(premise_vars)
        existential_counter = 0
        for _ in range(rng.randint(1, max_conclusion_atoms)):
            target_relation = rng.choice(list(target.names()))
            target_arity = target.arity(target_relation)
            args = []
            for _ in range(target_arity):
                if pool and rng.random() < 0.7:
                    args.append(rng.choice(pool))
                else:
                    existential_counter += 1
                    args.append(Variable(f"y{existential_counter}"))
            conclusion.append(Atom(target_relation, tuple(args)))
        dependencies.append(Dependency(Premise((premise_atom,)), (tuple(conclusion),)))
    return SchemaMapping(
        source, target, tuple(dependencies), name=f"RandomLAV(seed={seed})"
    )


def random_full_mapping(
    seed: int,
    *,
    n_source: int = 3,
    n_target: int = 3,
    max_arity: int = 2,
    n_tgds: int = 4,
    max_premise_atoms: int = 2,
    max_conclusion_atoms: int = 2,
) -> SchemaMapping:
    """A random full mapping (no existential quantifiers).

    Every conclusion variable is drawn from the premise variables, so
    the tgds are full; premises may join several source atoms.
    """
    rng = random.Random(seed)
    source = _schema("A", n_source, max_arity, rng)
    target = _schema("B", n_target, max_arity, rng)
    dependencies: List[Dependency] = []
    source_names = list(source.names())
    for index in range(n_tgds):
        n_premise = rng.randint(1, max_premise_atoms)
        var_counter = 0
        pool: List[Variable] = []
        premise_atoms: List[Atom] = []
        for atom_index in range(n_premise):
            relation = (
                source_names[index % len(source_names)]
                if atom_index == 0
                else rng.choice(source_names)
            )
            arity = source.arity(relation)
            args = []
            for _ in range(arity):
                if pool and rng.random() < 0.5:
                    args.append(rng.choice(pool))
                else:
                    var_counter += 1
                    fresh = Variable(f"x{var_counter}")
                    pool.append(fresh)
                    args.append(fresh)
            premise_atoms.append(Atom(relation, tuple(args)))
        conclusion: List[Atom] = []
        for _ in range(rng.randint(1, max_conclusion_atoms)):
            target_relation = rng.choice(list(target.names()))
            target_arity = target.arity(target_relation)
            conclusion.append(
                Atom(
                    target_relation,
                    tuple(rng.choice(pool) for _ in range(target_arity)),
                )
            )
        dependencies.append(
            Dependency(Premise(tuple(premise_atoms)), (tuple(conclusion),))
        )
    return SchemaMapping(
        source, target, tuple(dependencies), name=f"RandomFull(seed={seed})"
    )


def random_invertible_mapping(
    seed: int,
    *,
    n_source: int = 2,
    max_arity: int = 2,
    n_extra_tgds: int = 2,
    max_conclusion_atoms: int = 2,
) -> SchemaMapping:
    """A random mapping that is invertible *by construction*.

    Every source relation R gets a copy tgd R(x) -> R_copy(x) into a
    private target relation, which alone makes the mapping invertible
    (the copy-back mapping is an inverse); on top, random LAV "noise"
    tgds export further — possibly lossy — views into shared target
    relations.  Used by the property tests for the inverse laws
    (Theorem 5.1, Proposition 3.9).
    """
    rng = random.Random(seed)
    source = _schema("A", n_source, max_arity, rng)
    target_relations = {
        f"{name}_copy": arity for name, arity in source.relations
    }
    n_views = max(1, n_source)
    for index in range(n_views):
        target_relations[f"V{index + 1}"] = rng.randint(1, max_arity)
    target = Schema.of(target_relations)

    dependencies: List[Dependency] = []
    for name, arity in source.relations:
        variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
        dependencies.append(
            Dependency(
                Premise((Atom(name, variables),)),
                ((Atom(f"{name}_copy", variables),),),
            )
        )
    source_names = list(source.names())
    view_names = [name for name in target.names() if name.startswith("V")]
    for _ in range(n_extra_tgds):
        relation = rng.choice(source_names)
        arity = source.arity(relation)
        premise_vars = [Variable(f"x{i + 1}") for i in range(arity)]
        conclusion = []
        existential_counter = 0
        for _ in range(rng.randint(1, max_conclusion_atoms)):
            view = rng.choice(view_names)
            args = []
            for _ in range(target.arity(view)):
                if rng.random() < 0.7:
                    args.append(rng.choice(premise_vars))
                else:
                    existential_counter += 1
                    args.append(Variable(f"y{existential_counter}"))
            conclusion.append(Atom(view, tuple(args)))
        dependencies.append(
            Dependency(
                Premise((Atom(relation, tuple(premise_vars)),)),
                (tuple(conclusion),),
            )
        )
    return SchemaMapping(
        source, target, tuple(dependencies), name=f"RandomInvertible(seed={seed})"
    )


def random_ground_instance(
    schema: Schema,
    seed: int,
    *,
    n_facts: int = 6,
    domain_size: int = 4,
    domain_prefix: str = "c",
) -> Instance:
    """A random ground instance over *schema* with the given fact budget."""
    rng = random.Random(seed)
    domain = [Constant(f"{domain_prefix}{i + 1}") for i in range(domain_size)]
    atoms = set()
    names = list(schema.names())
    attempts = 0
    while len(atoms) < n_facts and attempts < n_facts * 20:
        attempts += 1
        relation = rng.choice(names)
        arity = schema.arity(relation)
        atoms.add(
            Atom(relation, tuple(rng.choice(domain) for _ in range(arity)))
        )
    return Instance.of(atoms)
