"""Bounded universes of ground instances.

The framework checkers (subset property, unique solutions,
(∼1,∼2)-inverse definitions) quantify over all ground instances; the
bounded substitutes quantify over the universes generated here — all
ground instances over a given schema, constant domain, and fact
budget.  Sizes explode quickly (the number of possible facts is
sum_R |domain|^arity(R) and universes are subsets thereof), so the
helpers enforce explicit caps.
"""

from __future__ import annotations

from itertools import combinations, product
from math import comb
from typing import Iterator, List, Sequence, Tuple, Union

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant
from repro.errors import UniverseTooLarge


def all_possible_facts(
    schema: Schema, domain: Sequence[Union[str, int, Constant]]
) -> Tuple[Atom, ...]:
    """Every ground fact over *schema* with values from *domain*."""
    constants = tuple(
        value if isinstance(value, Constant) else Constant(value)
        for value in domain
    )
    facts: List[Atom] = []
    for relation, arity in schema.relations:
        for args in product(constants, repeat=arity):
            facts.append(Atom(relation, args))
    return tuple(sorted(facts))


def power_instances(
    schema: Schema,
    domain: Sequence[Union[str, int, Constant]],
    *,
    max_facts: int,
    include_empty: bool = True,
    cap: int = 200_000,
) -> Iterator[Instance]:
    """All ground instances with at most *max_facts* facts, lazily.

    Instances are yielded in a deterministic order: by fact count,
    then lexicographically.  Raises :class:`UniverseTooLarge` when the
    enumeration would exceed *cap* instances — *eagerly*, before the
    first instance is yielded: the universe size is sum C(n, k) over
    the requested sizes, which is computed up front so callers fail
    fast instead of mid-iteration after wasted work.
    """
    facts = all_possible_facts(schema, domain)
    sizes = range(0 if include_empty else 1, max_facts + 1)
    total = sum(comb(len(facts), size) for size in sizes)
    if total > cap:
        from repro.engine.symmetry import orbit_count_estimate

        orbits, exact = orbit_count_estimate(
            facts, domain, max_facts=max_facts, include_empty=include_empty
        )
        qualifier = "" if exact else "at least "
        hint = (
            f"; an orbit-reduced sweep (symmetry=\"orbits\") would visit "
            f"{qualifier}{orbits} representatives"
        )
        raise UniverseTooLarge(
            f"universe over {schema} with |domain|={len(domain)} and "
            f"max_facts={max_facts} has {total} instances, exceeding "
            f"cap={cap}{hint}",
            kind="universe",
            limit=cap,
            consumed=total,
        )

    def generate() -> Iterator[Instance]:
        for size in sizes:
            for chosen in combinations(facts, size):
                yield Instance.of(chosen)

    return generate()


def instance_universe(
    schema: Schema,
    domain: Sequence[Union[str, int, Constant]],
    *,
    max_facts: int,
    include_empty: bool = True,
    cap: int = 200_000,
) -> Tuple[Instance, ...]:
    """The materialized universe (see :func:`power_instances`)."""
    return tuple(
        power_instances(
            schema,
            domain,
            max_facts=max_facts,
            include_empty=include_empty,
            cap=cap,
        )
    )
