"""Expression trees: construction, parsing, and mapping surgery."""

import pytest

from repro.algebra.expr import (
    Compose,
    MappingAtom,
    Rename,
    Restrict,
    UnionOf,
    materializable,
    parse_expression,
    producible_relations,
    rename_mapping,
    restrict_mapping,
)
from repro.catalog.mappings import (
    decomposition,
    decomposition_quasi_inverse_join,
    projection,
    union_mapping,
    union_quasi_inverse,
)
from repro.core.mapping import MappingError, universal_solution
from repro.datamodel.instances import Instance
from repro.errors import ParseError


class TestConstruction:
    def test_atom_schemas(self):
        atom = MappingAtom(mapping=projection())
        assert atom.source == projection().source
        assert atom.target == projection().target

    def test_compose_checks_middle_schema(self):
        with pytest.raises(MappingError, match="middle schemas"):
            Compose(
                first=MappingAtom(mapping=projection()),
                second=MappingAtom(mapping=decomposition()),
            )

    def test_compose_spans_schemas(self):
        composed = Compose(
            first=MappingAtom(mapping=decomposition()),
            second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
        )
        assert composed.source == decomposition().source
        assert composed.target == decomposition_quasi_inverse_join().target

    def test_union_checks_schemas(self):
        with pytest.raises(MappingError, match="source schemas"):
            UnionOf(
                left=MappingAtom(mapping=projection()),
                right=MappingAtom(mapping=union_mapping()),
            )

    def test_restrict_validates_relations(self):
        atom = MappingAtom(mapping=decomposition())
        restricted = Restrict(child=atom, relations=("Q",))
        assert restricted.target.names() == ("Q",)
        with pytest.raises(MappingError, match="not in target"):
            Restrict(child=atom, relations=("Nope",))

    def test_rename_validates_and_derives_target(self):
        atom = MappingAtom(mapping=projection())
        renamed = Rename(child=atom, renaming=(("Q", "Q2"),))
        assert renamed.target.names() == ("Q2",)
        with pytest.raises(MappingError, match="not in target"):
            Rename(child=atom, renaming=(("Nope", "X"),))
        with pytest.raises(MappingError, match="collides"):
            Rename(
                child=MappingAtom(mapping=decomposition()),
                renaming=(("Q", "R"),),
            )

    def test_keys_are_content_addressed(self):
        one = Compose(
            first=MappingAtom(mapping=decomposition()),
            second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
        )
        two = Compose(
            first=MappingAtom(mapping=decomposition()),
            second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
        )
        assert one.key() == two.key()


class TestParser:
    def test_atom(self):
        expr = parse_expression("Projection")
        assert isinstance(expr, MappingAtom)
        assert expr.mapping.name == "Projection"

    def test_quasi_inverses_resolve(self):
        assert parse_expression("Projection'").mapping.name == "Projection'"
        assert parse_expression("Union'").mapping.name == "Union'"

    def test_compose_folds_right(self):
        expr = parse_expression(
            "compose(Decomposition, Decomposition', Decomposition)"
        )
        assert isinstance(expr, Compose)
        assert isinstance(expr.second, Compose)

    def test_round_trip_through_label(self):
        text = "rename(restrict(compose(Decomposition, Decomposition'), P), P=P2)"
        expr = parse_expression(text)
        assert parse_expression(expr.label()).key() == expr.key()

    def test_whitespace_insensitive(self):
        one = parse_expression("compose(Decomposition,Decomposition')")
        two = parse_expression("  compose( Decomposition ,  Decomposition' ) ")
        assert one.key() == two.key()

    def test_syntax_errors(self):
        with pytest.raises(ParseError):
            parse_expression("")
        with pytest.raises(ParseError):
            parse_expression("compose(Projection")
        with pytest.raises(ParseError):
            parse_expression("Projection extra")
        with pytest.raises(ParseError):
            parse_expression("compose(Projection)")

    def test_unknown_name(self):
        with pytest.raises(MappingError, match="unknown mapping"):
            parse_expression("Nonexistent")

    def test_explicit_resolver(self):
        table = {"M": projection()}
        assert parse_expression("M", table).mapping.name == "Projection"


class TestSurgery:
    def test_rename_mapping_is_isomorphic(self):
        renamed = rename_mapping(projection(), {"Q": "Q2"})
        assert renamed.target.names() == ("Q2",)
        source = Instance.build({"P": [("a", "b")]})
        solution = universal_solution(renamed, source)
        facts = {str(fact) for fact in solution.sorted_facts()}
        assert facts == {"Q2(a)"}

    def test_restrict_mapping_prunes_conclusions(self):
        restricted = restrict_mapping(decomposition(), ("Q",))
        assert restricted.target.names() == ("Q",)
        source = Instance.build({"P": [("a", "b", "c")]})
        solution = universal_solution(restricted, source)
        assert {str(f) for f in solution.sorted_facts()} == {"Q(a, b)"}

    def test_restrict_agrees_with_projected_chase(self):
        full = decomposition()
        restricted = restrict_mapping(full, ("Q",))
        source = Instance.build({"P": [("a", "b", "c"), ("b", "c", "a")]})
        projected = universal_solution(full, source).restrict_to(
            restricted.target
        )
        assert universal_solution(restricted, source).facts == projected.facts

    def test_restrict_drops_vacuous_dependency(self):
        restricted = restrict_mapping(decomposition(), ("R",))
        # the Q atom is pruned; the R atom survives in the one rule
        assert len(restricted.dependencies) == 1

    def test_restrict_refuses_disjunctive_cascade_risk(self):
        from repro.core.mapping import SchemaMapping
        from repro.datamodel.schemas import Schema

        # target relation A is also a source relation: dropping it is
        # inexact because its facts could cascade
        cyclic = SchemaMapping.from_text(
            Schema.of({"A": 1}),
            Schema.of({"A": 1, "B": 1}),
            "A(x) -> A(x) & B(x)",
        )
        with pytest.raises(MappingError, match="source-named"):
            restrict_mapping(cyclic, ("B",))


class TestClassification:
    def test_producible_atom(self):
        assert producible_relations(MappingAtom(mapping=decomposition())) == {
            "Q",
            "R",
        }

    def test_producible_filters_dead_rules(self):
        from repro.algebra.scenarios import dead_branch_expression

        expr = dead_branch_expression(3)
        assert "W2" not in producible_relations(expr)
        assert "W" in producible_relations(expr)

    def test_materializable_rejects_disjunctive_second(self):
        expr = Compose(
            first=MappingAtom(mapping=union_mapping()),
            second=MappingAtom(mapping=union_quasi_inverse()),
        )
        assert not materializable(expr)

    def test_materializable_accepts_full_tgd_chain(self):
        expr = Compose(
            first=MappingAtom(mapping=decomposition()),
            second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
        )
        assert materializable(expr)
