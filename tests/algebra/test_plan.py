"""Plan selection: mode preferences, fallbacks, and explanations."""

import os

import pytest

from repro.algebra.cost import CostModel
from repro.algebra.expr import Compose, MappingAtom, parse_expression
from repro.algebra.plan import (
    PLAN_MODES,
    default_plan_mode,
    plan_expression,
    resolve_plan_mode,
)
from repro.algebra.rewrite import normalize
from repro.algebra.scenarios import fan_in_chain_expression
from repro.catalog.mappings import union_mapping, union_quasi_inverse
from repro.core.mapping import MappingError
from repro.engine.instrumentation import engine_stats


class TestModes:
    def test_default_mode_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN", raising=False)
        assert default_plan_mode() == "auto"
        monkeypatch.setenv("REPRO_PLAN", "materialize")
        assert default_plan_mode() == "materialize"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(MappingError, match="unknown plan mode"):
            resolve_plan_mode("bogus")
        for mode in PLAN_MODES:
            assert resolve_plan_mode(mode) == mode


class TestSweepKinds:
    def test_auto_picks_staged_for_blowup(self):
        expr, _ = normalize(fan_in_chain_expression(3))
        plan = plan_expression(expr, "unique", mode="auto", universe_size=25)
        assert plan.strategy == "staged"

    def test_materialize_mode_is_respected(self):
        expr, _ = normalize(fan_in_chain_expression(3))
        plan = plan_expression(
            expr, "unique", mode="materialize", universe_size=25
        )
        assert plan.strategy == "materialize"

    def test_membership_mode_means_staged_for_sweeps(self):
        expr, _ = normalize(fan_in_chain_expression(3))
        plan = plan_expression(
            expr, "subset", mode="membership", universe_size=25
        )
        assert plan.strategy == "staged"

    def test_plain_atom_materializes_under_auto(self):
        expr = parse_expression("Decomposition")
        plan = plan_expression(expr, "unique", mode="auto", universe_size=9)
        assert plan.strategy == "materialize"


class TestPairKinds:
    def test_auto_on_inverse_pair(self):
        expr = parse_expression("compose(Decomposition, Decomposition')")
        plan = plan_expression(
            expr, "inverse", mode="auto", universe_size=9, pair_checks=81
        )
        assert plan.strategy in ("materialize", "membership")

    def test_disjunctive_reverse_falls_back(self):
        expr = Compose(
            first=MappingAtom(mapping=union_mapping()),
            second=MappingAtom(mapping=union_quasi_inverse()),
        )
        plan = plan_expression(
            expr,
            "inverse",
            mode="materialize",
            universe_size=3,
            pair_checks=9,
        )
        assert plan.strategy == "membership"
        assert any("infeasible" in note for note in plan.notes)


class TestInstrumentationAndExplain:
    def test_chosen_strategy_bumps_counter(self):
        stats = engine_stats()
        expr, _ = normalize(fan_in_chain_expression(3))
        before = stats.counter("algebra_plan_staged")
        plan_expression(expr, "unique", mode="auto", universe_size=25)
        assert stats.counter("algebra_plan_staged") == before + 1

    def test_explain_mentions_choice_and_estimates(self):
        expr, trace = normalize(fan_in_chain_expression(3))
        plan = plan_expression(
            expr,
            "unique",
            mode="auto",
            universe_size=25,
            rewrite_trace=trace,
        )
        text = plan.explain({"measured_seconds": 0.25})
        assert "strategy=staged" in text
        assert "materialize:" in text
        assert "* staged:" in text
        assert "actuals:" in text

    def test_unknown_kind_rejected(self):
        expr = parse_expression("Decomposition")
        with pytest.raises(MappingError, match="unknown check kind"):
            plan_expression(expr, "bogus")


class TestCostModel:
    def test_calibration_labels(self):
        model = CostModel.calibrated()
        assert set(model.calibrations) == {
            "chase",
            "homomorphism",
            "mingen",
            "membership",
        }

    def test_blowup_proxy_orders_widths(self):
        model = CostModel()
        three = model.estimate_materialize(
            normalize(fan_in_chain_expression(3))[0], 25, 0
        )
        four = model.estimate_materialize(
            normalize(fan_in_chain_expression(4))[0], 25, 0
        )
        assert four.total > three.total

    def test_env_isolated(self):
        # plan mode lookups never mutate the environment
        before = dict(os.environ)
        resolve_plan_mode(None)
        assert dict(os.environ) == before
