"""Rewrite rules: structural effect and trace bookkeeping."""

from repro.algebra.evaluate import materialize, staged_mapping
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    Rename,
    Restrict,
    UnionOf,
    parse_expression,
)
from repro.algebra.rewrite import distribute_compose_over_union, normalize
from repro.algebra.scenarios import (
    dead_branch_expression,
    fan_in_chain_expression,
    union_of_chains_expression,
)
from repro.catalog.mappings import (
    decomposition,
    decomposition_quasi_inverse_join,
    projection,
)
from repro.core.mapping import universal_solution
from repro.datamodel.instances import Instance


def _compose_chain():
    return parse_expression(
        "compose(Decomposition, Decomposition', Decomposition)"
    )


class TestAssociativity:
    def test_left_nesting_rotates_right(self):
        left_nested = Compose(
            first=Compose(
                first=MappingAtom(mapping=decomposition()),
                second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
            ),
            second=MappingAtom(mapping=decomposition()),
        )
        normalized, trace = normalize(left_nested)
        assert isinstance(normalized, Compose)
        assert isinstance(normalized.first, MappingAtom)
        assert any(step.rule == "assoc-right" for step in trace)

    def test_right_nested_is_fixpoint(self):
        normalized, trace = normalize(_compose_chain())
        assert normalized.key() == _compose_chain().key()
        assert trace == ()


class TestFactorCompose:
    def test_shared_head_factors(self):
        expr = union_of_chains_expression(3)
        normalized, trace = normalize(expr)
        assert isinstance(normalized, Compose)
        assert isinstance(normalized.second, UnionOf)
        assert any(
            step.rule == "factor-compose-over-union" for step in trace
        )

    def test_distribute_is_inverse_of_factor(self):
        expr = union_of_chains_expression(3)
        factored, _ = normalize(expr)
        distributed = distribute_compose_over_union(factored)
        assert isinstance(distributed, UnionOf)
        refactored, _ = normalize(distributed)
        assert refactored.key() == factored.key()

    def test_non_full_head_does_not_factor(self):
        # Projection' has an existential conclusion: not full, so the
        # factoring gate must refuse
        head = MappingAtom(mapping=parse_expression("Projection'").mapping)
        leg = MappingAtom(mapping=projection())
        expr = UnionOf(
            left=Compose(first=head, second=leg),
            right=Compose(first=head, second=leg),
        )
        normalized, _ = normalize(expr)
        assert isinstance(normalized, UnionOf)


class TestRenamePushdown:
    def test_rename_reaches_the_leaf(self):
        expr = Rename(
            child=Compose(
                first=MappingAtom(mapping=decomposition()),
                second=MappingAtom(mapping=decomposition_quasi_inverse_join()),
            ),
            renaming=(("P", "P2"),),
        )
        normalized, trace = normalize(expr)
        assert isinstance(normalized, Compose)
        assert isinstance(normalized.second, MappingAtom)
        assert normalized.target.names() == ("P2",)
        assert any(step.rule == "rename-pushdown" for step in trace)

    def test_nested_renames_fuse(self):
        atom = MappingAtom(mapping=projection())
        expr = Rename(
            child=Rename(child=atom, renaming=(("Q", "Q2"),)),
            renaming=(("Q2", "Q3"),),
        )
        normalized, trace = normalize(expr)
        assert normalized.target.names() == ("Q3",)
        assert any(step.rule.startswith("rename-") for step in trace)

    def test_identity_rename_collapses(self):
        atom = MappingAtom(mapping=projection())
        expr = Rename(
            child=Rename(child=atom, renaming=(("Q", "Q2"),)),
            renaming=(("Q2", "Q"),),
        )
        normalized, _ = normalize(expr)
        assert normalized.key() == atom.key()


class TestRestrictPushdown:
    def test_restrict_absorbs_into_leaf(self):
        expr = Restrict(
            child=MappingAtom(mapping=decomposition()), relations=("Q",)
        )
        normalized, trace = normalize(expr)
        assert isinstance(normalized, MappingAtom)
        assert normalized.target.names() == ("Q",)
        assert any(step.rule == "restrict-pushdown" for step in trace)

    def test_full_restrict_collapses(self):
        atom = MappingAtom(mapping=decomposition())
        expr = Restrict(child=atom, relations=("Q", "R"))
        normalized, _ = normalize(expr)
        assert normalized.key() == atom.key()


class TestDeadBranchPrune:
    def test_unreachable_rule_is_dropped(self):
        expr = dead_branch_expression(3)
        normalized, trace = normalize(expr)
        assert any(step.rule == "dead-branch-prune" for step in trace)
        assert isinstance(normalized, Compose)
        pruned = normalized.second.mapping
        assert len(pruned.dependencies) < len(expr.second.mapping.dependencies)

    def test_prune_preserves_materialization(self):
        expr = dead_branch_expression(3)
        normalized, _ = normalize(expr)
        original = materialize(expr)
        rewritten = materialize(normalized)
        source = Instance.build({"P1": [("a", "b")], "Q2": [("b", "a")]})
        assert (
            universal_solution(original, source).facts
            == universal_solution(rewritten, source).facts
        )


class TestNormalizeDrivesStaging:
    def test_normalized_blowup_stages(self):
        expr = fan_in_chain_expression(3)
        normalized, _ = normalize(expr)
        staged = staged_mapping(normalized)
        assert staged is not None
        assert len(getattr(staged, "stages", ())) == 2
